"""Ablations of the design choices called out in DESIGN.md §5.

A1  Bloom parameters: bits/entry x hash count -> false-positive rate,
    filter size and build time (the paper fixes 10 bits/entry, k=3, ~1%).
A2  Update modes: traffic per propagated change for full-only vs immediate
    (incremental) vs Bloom updates (why §3.3 says immediate mode "is
    almost always advantageous").
A3  Partitioning vs Bloom compression: wire bytes per update (why §3.5
    says partitioning "is rarely used in practice").
"""

from __future__ import annotations

import time

from benchmarks.common import record_series, scaled
from repro.core.bloom import BloomFilter, BloomParameters
from repro.core.lrc import LocalReplicaCatalog
from repro.core.updates import UpdateManager, UpdatePolicy
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection
from repro.workload.names import sequential_names


def bench_ablation_bloom_parameters(benchmark):
    """A1: sweep bits/entry and k; the paper's (10, 3) is the sweet spot."""
    n = scaled(200_000, minimum=5_000)
    names = sequential_names(n)
    absent = sequential_names(n, prefix="absent")
    rows = []
    results = {}
    for bits_per_entry in (5, 10, 20):
        for k in (1, 3, 5):
            params = BloomParameters.for_entries(n, bits_per_entry, k)
            start = time.perf_counter()
            bf = BloomFilter.from_names(names, params)
            build = time.perf_counter() - start
            fp = float(bf.contains_batch(absent).mean())
            results[(bits_per_entry, k)] = fp
            rows.append(
                [
                    bits_per_entry,
                    k,
                    f"{fp * 100:.2f}%",
                    f"{bf.size_bytes / 1024:.0f} KiB",
                    f"{build:.2f}s",
                ]
            )

    benchmark.pedantic(
        lambda: BloomFilter.from_names(
            names[: n // 4], BloomParameters.for_entries(n // 4)
        ),
        rounds=3,
        iterations=1,
    )

    record_series(
        "Ablation A1 — Bloom parameters (n=%d)" % n,
        ["bits/entry", "k", "measured FP", "size", "build time"],
        rows,
        notes=[
            "paper choice: 10 bits/entry, k=3 -> ~1% FP; fewer bits or "
            "k=1 inflate FP, more bits/hashes cost size/build time",
        ],
    )

    # The paper's configuration achieves ~1% FP.
    assert results[(10, 3)] < 0.04
    # Halving bits/entry must hurt; k=3 beats k=1 at 10 bits/entry.
    assert results[(5, 3)] > results[(10, 3)]
    assert results[(10, 1)] > results[(10, 3)]


class _CountingSink:
    """Sink measuring wire traffic per update flavour."""

    def __init__(self) -> None:
        self.full_names = 0
        self.incremental_names = 0
        self.bloom_bytes = 0
        self.updates = 0

    def full_update(self, lrc_name, lfns):
        self.full_names += len(lfns)
        self.updates += 1

    def incremental_update(self, lrc_name, added, removed):
        self.incremental_names += len(added) + len(removed)
        self.updates += 1

    def bloom_update(self, lrc_name, bitmap, *args):
        self.bloom_bytes += len(bitmap)
        self.updates += 1


def _catalog(name: str):
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    lrc = LocalReplicaCatalog(Connection(engine, name), name=name)
    lrc.init_schema()
    return lrc


NAME_BYTES = 80  # wire bytes per name, matching the LAN calibration


def bench_ablation_update_modes(benchmark):
    """A2: traffic to propagate 100 changes on a loaded catalog."""
    base = scaled(100_000, minimum=5_000)
    changes = 100

    def run_mode(mode: str) -> float:
        lrc = _catalog(f"ablation-{mode}")
        lrc.bulk_load(
            (lfn, f"pfn://{lfn}") for lfn in sequential_names(base)
        )
        sink = _CountingSink()
        policy = UpdatePolicy(bloom_expected_entries=base)
        manager = UpdateManager(lrc, lambda name: sink, policy=policy)
        lrc.add_rli("target", bloom=(mode == "bloom"))
        if mode == "bloom":
            manager.rebuild_bloom()
        # Baseline propagation, then 100 changes, then propagate them.
        manager.send_full_update()
        for i in range(changes):
            lrc.create_mapping(f"fresh{i}", f"pfn://fresh{i}")
        if mode == "full":
            manager.send_full_update()
        else:
            manager.send_incremental_update()
        if mode == "full":
            traffic = sink.full_names * NAME_BYTES
        elif mode == "immediate":
            traffic = (
                sink.full_names + sink.incremental_names
            ) * NAME_BYTES
        else:
            traffic = sink.bloom_bytes
        return traffic

    full = run_mode("full")
    immediate = run_mode("immediate")
    bloom = run_mode("bloom")

    benchmark.pedantic(lambda: run_mode("immediate"), rounds=1, iterations=1)

    record_series(
        "Ablation A2 — wire traffic to propagate 100 changes "
        f"(catalog of {base})",
        ["mode", "bytes (baseline + delta)"],
        [
            ["full-only (two full updates)", f"{full:,}"],
            ["immediate mode (full + delta)", f"{immediate:,}"],
            ["bloom (two filter snapshots)", f"{bloom:,}"],
        ],
        notes=[
            "immediate mode's delta is ~the changes only — why §3.3 says "
            "it is 'almost always advantageous'; bloom pays a fixed "
            "filter-size cost per refresh regardless of change count",
        ],
    )

    # Immediate mode must send far less than a second full update.
    assert immediate < full * 0.6
    # For a SMALL change set the bloom snapshot is bigger than the delta
    # but far smaller than a full name list at paper scale.
    assert bloom < full


def bench_ablation_partitioning_vs_bloom(benchmark):
    """A3: bytes per update for namespace partitioning vs Bloom filters."""
    base = scaled(100_000, minimum=5_000)
    lrc = _catalog("ablation-part")
    # Two runs, each half the namespace.
    lrc.bulk_load(
        (f"run{1 + (i % 2)}/{lfn}", f"pfn://{lfn}")
        for i, lfn in enumerate(sequential_names(base))
    )
    sinks = {
        "rli-run1": _CountingSink(),
        "rli-run2": _CountingSink(),
        "rli-bloom": _CountingSink(),
    }
    manager = UpdateManager(
        lrc,
        lambda name: sinks[name],
        policy=UpdatePolicy(bloom_expected_entries=base),
    )
    lrc.add_rli("rli-run1", patterns=["^run1/"])
    lrc.add_rli("rli-run2", patterns=["^run2/"])
    lrc.add_rli("rli-bloom", bloom=True)
    manager.rebuild_bloom()
    manager.send_full_update()

    benchmark.pedantic(manager.send_full_update, rounds=1, iterations=1)

    partitioned = (
        sinks["rli-run1"].full_names + sinks["rli-run2"].full_names
    ) * NAME_BYTES
    bloom = sinks["rli-bloom"].bloom_bytes
    record_series(
        "Ablation A3 — partitioned full updates vs one Bloom update",
        ["strategy", "bytes on the wire"],
        [
            ["partitioned (2 RLIs, half namespace each)", f"{partitioned:,}"],
            ["bloom filter (whole namespace, 1 RLI)", f"{bloom:,}"],
        ],
        notes=[
            "partitioning halves each update but total bytes stay ~full "
            "size; a 10-bit/entry bitmap is ~64x smaller than 80-byte "
            "names — why §3.5 says partitioning is rarely used",
        ],
    )
    assert bloom < partitioned / 10
