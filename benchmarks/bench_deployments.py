"""Deployment-shape sanity benchmarks (paper §6, informational).

Scaled-down versions of the three production deployments the paper
reports, verifying that each configuration sustains its workload:

* LIGO: few LRCs, many replicas per LFN, Bloom updates to one RLI;
* Earth System Grid: 4 fully-connected LRC+RLI servers;
* Pegasus: 6 LRCs updating 4 RLIs, bulk-heavy workflow traffic.
"""

from __future__ import annotations

from benchmarks.common import measure_rate, record_series, scaled
from repro.core.client import connect
from repro.core.config import ServerConfig, ServerRole
from repro.core.server import RLSServer
from repro.workload.driver import LoadDriver
from repro.workload.names import ligo_names, pegasus_names


def bench_deployment_ligo(benchmark):
    """LIGO shape: 3 sites x N frames x Bloom updates -> query throughput."""
    frames = ligo_names(scaled(100_000, minimum=2_000))
    rli = RLSServer(ServerConfig(name="dep-ligo-rli", role=ServerRole.RLI))
    sites = [
        RLSServer(ServerConfig(name=f"dep-ligo-{i}", role=ServerRole.LRC))
        for i in range(3)
    ]
    try:
        share = len(frames) // 3
        for i, site in enumerate(sites):
            mine = frames[i * share : (i + 1) * share]
            site.lrc.bulk_load(
                (f, f"gsiftp://site{i}/frames/{f}") for f in mine
            )
            client = connect(site.config.name)
            client.add_rli("dep-ligo-rli", bloom=True)
            client.rebuild_bloom()
            client.trigger_full_update()
            client.close()

        loaded = share * 3  # the tail remainder is never registered
        probe = frames[: min(loaded, 2000)]
        rate = measure_rate(
            "dep-ligo-rli",
            LoadDriver.rli_query_op(probe),
            clients=2,
            threads_per_client=3,
            total_operations=2000,
            trials=2,
        )
        benchmark.pedantic(
            lambda: measure_rate(
                "dep-ligo-rli", LoadDriver.rli_query_op(probe), 1, 3, 1000
            ),
            rounds=3,
            iterations=1,
        )
        record_series(
            "Deployment — LIGO shape (3 LRCs, Bloom updates, 1 RLI)",
            ["metric", "value"],
            [
                ["frames indexed", len(frames)],
                ["bloom filters at RLI", rli.rli.bloom_filter_count()],
                ["RLI query rate", f"{rate:.0f}/s"],
            ],
        )
        assert rli.rli.bloom_filter_count() == 3
        assert rate > 100
    finally:
        for site in sites:
            site.stop()
        rli.stop()


def bench_deployment_pegasus(benchmark):
    """Pegasus shape: 6 LRCs -> 4 RLIs, bulk register + bulk query."""
    outputs = pegasus_names(scaled(100_000, minimum=1_200))
    rlis = [
        RLSServer(ServerConfig(name=f"dep-peg-rli{i}", role=ServerRole.RLI))
        for i in range(4)
    ]
    lrcs = [
        RLSServer(ServerConfig(name=f"dep-peg-lrc{i}", role=ServerRole.LRC))
        for i in range(6)
    ]
    try:
        share = len(outputs) // 6
        for i, lrc in enumerate(lrcs):
            mine = outputs[i * share : (i + 1) * share]
            lrc.lrc.bulk_load((f, f"gsiftp://cs{i}/{f}") for f in mine)
            client = connect(lrc.config.name)
            for rli in rlis:
                client.add_rli(rli.config.name)
            client.trigger_full_update()
            client.close()

        def bulk_plan():
            client = connect("dep-peg-rli0")
            found = client.rli_bulk_query(outputs[:1000])
            client.close()
            return found

        found = bulk_plan()
        benchmark.pedantic(bulk_plan, rounds=3, iterations=1)
        coverage = len(found) / 1000
        record_series(
            "Deployment — Pegasus shape (6 LRCs, 4 RLIs)",
            ["metric", "value"],
            [
                ["outputs registered", share * 6],
                ["bulk-plan coverage (1000 probes)", f"{coverage * 100:.1f}%"],
                ["RLIs consistent", all(
                    len(r.rli.lrc_list()) == 6 for r in rlis
                )],
            ],
        )
        assert coverage > 0.95
        for rli in rlis:
            assert len(rli.rli.lrc_list()) == 6
    finally:
        for server in lrcs + rlis:
            server.stop()
