"""Figure 4: LRC add rates with database flush enabled vs disabled.

Paper setup: LRC with 1 M entries, MySQL back end, a single client with
1-10 threads.  Result: ~84 adds/s with flush enabled versus >700 adds/s
with it disabled — the flush policy dominates add throughput.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    delete_all,
    measure_rate,
    record_series,
    scaled,
    server_metrics_snapshot,
    snapshot_p95s,
    write_bench_artifact,
)
from repro.workload.driver import LoadDriver
from repro.workload.scenarios import loaded_lrc_server

PAPER_ENTRIES = 1_000_000
THREAD_COUNTS = [1, 2, 4, 6, 8, 10]
# Paper's approximate series (read from Figure 4).
PAPER_FLUSH_ON = {1: 84, 2: 84, 4: 85, 6: 85, 8: 85, 10: 85}
PAPER_FLUSH_OFF = {1: 700, 2: 720, 4: 730, 6: 720, 8: 710, 10: 700}


@pytest.fixture(scope="module")
def lrc_server():
    server, mappings = loaded_lrc_server(
        scaled(PAPER_ENTRIES), name="fig4-lrc", sync_latency=0.011
    )
    yield server, mappings
    server.stop()


def _add_rate(server, threads: int, ops: int, start: int):
    """One add trial; returns (rate, internal metrics delta for the trial)."""
    lfns = [f"fig4-add-{start + i}" for i in range(ops)]
    pfn_of = lambda lfn: f"pfn://{lfn}"
    before = server_metrics_snapshot(server.config.name)
    rate = measure_rate(
        server.config.name,
        LoadDriver.add_op(lfns, pfn_of),
        clients=1,
        threads_per_client=threads,
        total_operations=ops,
    )
    delta = server_metrics_snapshot(server.config.name).delta(before)
    delete_all(server.config.name, [(l, pfn_of(l)) for l in lfns])
    return rate, delta


def _p95_ms(delta, metric_key: str) -> str:
    """p95 of one internal histogram over a trial, in milliseconds."""
    hist = delta.histograms.get(metric_key)
    if hist is None or hist.count == 0:
        return "-"
    return f"{hist.percentile(95) * 1e3:.1f}"


def bench_fig04_add_rates(lrc_server, benchmark):
    server, _ = lrc_server
    rows = []
    start = 0
    # Flush enabled: each add pays the 11 ms modelled disk barrier.
    server.engine.set_flush_on_commit(True)
    on_rates, on_deltas = {}, {}
    for threads in THREAD_COUNTS:
        on_rates[threads], on_deltas[threads] = _add_rate(
            server, threads, ops=60, start=start
        )
        start += 60
    # Flush disabled (the paper's recommendation).
    server.engine.set_flush_on_commit(False)
    off_rates, off_deltas = {}, {}
    for threads in THREAD_COUNTS:
        off_rates[threads], off_deltas[threads] = _add_rate(
            server, threads, ops=1500, start=start
        )
        start += 1500

    def one_add_trial():
        nonlocal start
        rate, _delta = _add_rate(server, threads=10, ops=300, start=start)
        start += 300
        return rate

    benchmark.pedantic(one_add_trial, rounds=3, iterations=1)

    wal_key = "wal.flush_latency"
    rpc_key = "rpc.latency{method=lrc_create_mapping}"
    for threads in THREAD_COUNTS:
        rows.append(
            [
                threads,
                PAPER_FLUSH_ON[threads],
                f"{on_rates[threads]:.0f}",
                PAPER_FLUSH_OFF[threads],
                f"{off_rates[threads]:.0f}",
                _p95_ms(on_deltas[threads], wal_key),
                _p95_ms(off_deltas[threads], wal_key),
                _p95_ms(on_deltas[threads], rpc_key),
                _p95_ms(off_deltas[threads], rpc_key),
            ]
        )
    record_series(
        "Figure 4 — LRC add rate (adds/s), flush enabled vs disabled",
        [
            "threads",
            "paper flush-on", "ours flush-on",
            "paper flush-off", "ours flush-off",
            "wal p95 on (ms)", "wal p95 off (ms)",
            "add rpc p95 on (ms)", "add rpc p95 off (ms)",
        ],
        rows,
        notes=[
            f"LRC pre-loaded with {scaled(PAPER_ENTRIES)} entries "
            f"(paper: {PAPER_ENTRIES}); modelled disk barrier 11 ms",
            "internal columns come from the server's metrics registry "
            "(delta over each trial): WAL flush and per-RPC add latency",
        ],
        metrics=off_deltas[THREAD_COUNTS[-1]],
    )

    def _p95_series(deltas: dict, key: str) -> list[list[float]]:
        return [
            [float(threads), snapshot_p95s(deltas[threads]).get(key, 0.0)]
            for threads in THREAD_COUNTS
        ]

    artifact = write_bench_artifact(
        "fig04",
        series={
            "add_rate_flush_on": [
                [float(t), on_rates[t]] for t in THREAD_COUNTS
            ],
            "add_rate_flush_off": [
                [float(t), off_rates[t]] for t in THREAD_COUNTS
            ],
            "paper_flush_on": [
                [float(t), float(PAPER_FLUSH_ON[t])] for t in THREAD_COUNTS
            ],
            "paper_flush_off": [
                [float(t), float(PAPER_FLUSH_OFF[t])] for t in THREAD_COUNTS
            ],
            "wal_flush_p95_on": _p95_series(on_deltas, wal_key),
            "wal_flush_p95_off": _p95_series(off_deltas, wal_key),
            "add_rpc_p95_on": _p95_series(on_deltas, rpc_key),
            "add_rpc_p95_off": _p95_series(off_deltas, rpc_key),
        },
        meta={
            "entries": scaled(PAPER_ENTRIES),
            "paper_entries": PAPER_ENTRIES,
            "x_axis": "client threads",
            "internal_p95_flush_off": snapshot_p95s(
                off_deltas[THREAD_COUNTS[-1]]
            ),
        },
    )
    print(f"wrote {artifact}")

    # Shape assertions: flush-off must dominate flush-on at every point.
    for threads in THREAD_COUNTS:
        assert off_rates[threads] > 3 * on_rates[threads]
    # Flush-on rates are pinned near 1/sync_latency regardless of threads.
    assert max(on_rates.values()) < 140
