"""Figure 5: LRC query rates with database flush enabled vs disabled.

Paper result: query throughput is unaffected by the flush setting
("query operations do not change the contents of the database or generate
transactions"), at roughly 2000-2400 queries/s for 1-15 threads.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    attach_collector,
    measure_rate,
    record_series,
    scaled,
    write_bench_artifact,
)
from repro.obs.analyze import analyze_store
from repro.workload.driver import LoadDriver
from repro.workload.scenarios import loaded_lrc_server

PAPER_ENTRIES = 1_000_000
THREAD_COUNTS = [1, 3, 6, 9, 12, 15]
PAPER_FLUSH_ON = {1: 1000, 3: 2000, 6: 2300, 9: 2300, 12: 2200, 15: 2200}
PAPER_FLUSH_OFF = {1: 1000, 3: 2000, 6: 2300, 9: 2300, 12: 2200, 15: 2200}


@pytest.fixture(scope="module")
def lrc_server():
    server, mappings = loaded_lrc_server(
        scaled(PAPER_ENTRIES), name="fig5-lrc", sync_latency=0.011
    )
    yield server, mappings
    server.stop()


def bench_fig05_query_rates(lrc_server, benchmark):
    server, mappings = lrc_server
    lfns = mappings.random_lfns(2000)
    op = LoadDriver.query_op(lfns)

    # Collector attached for the whole run: one scrape per measured
    # point, so the internal counter/histogram series line up with the
    # per-thread-count query rates in the artifact.
    collector = attach_collector(server)
    scrapes = [0]

    def series(label: str):
        rates = {}
        for threads in THREAD_COUNTS:
            rates[threads] = measure_rate(
                server.config.name,
                op,
                clients=1,
                threads_per_client=threads,
                total_operations=2500,
                trials=3,
            )
            scrapes[0] += 1
            collector.scrape_once(now=float(scrapes[0]))
            collector.store.record(
                f"lrc.query_rate.{label}", float(threads), rates[threads]
            )
        return rates

    server.engine.set_flush_on_commit(True)
    on_rates = series("flush_on")
    server.engine.set_flush_on_commit(False)
    off_rates = series("flush_off")

    benchmark.pedantic(
        lambda: measure_rate(
            server.config.name, op, 1, 10, total_operations=2000
        ),
        rounds=3,
        iterations=1,
    )

    rows = [
        [
            t,
            PAPER_FLUSH_ON[t],
            f"{on_rates[t]:.0f}",
            PAPER_FLUSH_OFF[t],
            f"{off_rates[t]:.0f}",
        ]
        for t in THREAD_COUNTS
    ]
    record_series(
        "Figure 5 — LRC query rate (queries/s), flush enabled vs disabled",
        ["threads", "paper flush-on", "ours flush-on", "paper flush-off", "ours flush-off"],
        rows,
        notes=["paper finding: flush setting does not affect queries"],
    )

    artifact = write_bench_artifact(
        "fig05",
        series=collector.store.to_dict(),
        detections=analyze_store(collector.store),
        meta={
            "thread_counts": THREAD_COUNTS,
            "flush_on": {str(t): on_rates[t] for t in THREAD_COUNTS},
            "flush_off": {str(t): off_rates[t] for t in THREAD_COUNTS},
        },
        nodes={
            name: collector.node_store(name).to_dict()
            for name in collector.node_names
        },
    )
    print(f"wrote {artifact}")

    # Shape: flush makes no material difference for queries.  Individual
    # points are noisy under whole-suite CPU contention, so bound each
    # point loosely and the series means tightly.
    for t in THREAD_COUNTS:
        ratio = on_rates[t] / off_rates[t]
        assert 0.4 < ratio < 2.5, f"flush changed query rate at {t} threads"
    mean_on = sum(on_rates.values()) / len(on_rates)
    mean_off = sum(off_rates.values()) / len(off_rates)
    assert 0.65 < mean_on / mean_off < 1.55
