"""Figure 6: LRC operation rates, multiple clients x 10 threads each.

Paper setup: MySQL back end with 1 M entries, flush disabled, 1-10 clients
with 10 threads per client.  Result: queries 1700-2100/s, adds 600-900/s,
deletes 470-570/s; rates decline as total threads grow (queries/deletes
about -20%, adds about -35% from 10 to 100 threads).
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    measure_rate,
    record_series,
    scaled,
    write_bench_artifact,
)
from repro.workload.driver import LoadDriver
from repro.workload.scenarios import loaded_lrc_server

PAPER_ENTRIES = 1_000_000
CLIENT_COUNTS = [1, 2, 4, 6, 8, 10]
PAPER = {
    "query": {1: 2100, 2: 2050, 4: 1950, 6: 1850, 8: 1750, 10: 1700},
    "add": {1: 900, 2: 850, 4: 760, 6: 700, 8: 640, 10: 600},
    "delete": {1: 570, 2: 560, 4: 530, 6: 510, 8: 490, 10: 470},
}


@pytest.fixture(scope="module")
def lrc_server():
    server, mappings = loaded_lrc_server(
        scaled(PAPER_ENTRIES), name="fig6-lrc", sync_latency=0.0
    )
    yield server, mappings
    server.stop()


def bench_fig06_operation_rates(lrc_server, benchmark):
    server, mappings = lrc_server
    name = server.config.name
    query_lfns = mappings.random_lfns(2000)

    query_rates, add_rates, delete_rates = {}, {}, {}
    start = 0
    for clients in CLIENT_COUNTS:
        ops = 2000
        query_rates[clients] = measure_rate(
            name, LoadDriver.query_op(query_lfns), clients, 10, ops, trials=2
        )
        add_lfns = [f"fig6-{start + i}" for i in range(ops)]
        start += ops
        pfn_of = lambda lfn: f"pfn://{lfn}"
        add_rates[clients] = measure_rate(
            name, LoadDriver.add_op(add_lfns, pfn_of), clients, 10, ops
        )
        delete_rates[clients] = measure_rate(
            name, LoadDriver.delete_op(add_lfns, pfn_of), clients, 10, ops
        )

    benchmark.pedantic(
        lambda: measure_rate(
            name, LoadDriver.query_op(query_lfns), 2, 10, 1000
        ),
        rounds=3,
        iterations=1,
    )

    rows = [
        [
            c,
            PAPER["query"][c],
            f"{query_rates[c]:.0f}",
            PAPER["add"][c],
            f"{add_rates[c]:.0f}",
            PAPER["delete"][c],
            f"{delete_rates[c]:.0f}",
        ]
        for c in CLIENT_COUNTS
    ]
    record_series(
        "Figure 6 — LRC op rates (ops/s), N clients x 10 threads, flush off",
        [
            "clients",
            "paper query", "ours query",
            "paper add", "ours add",
            "paper delete", "ours delete",
        ],
        rows,
        notes=[
            f"{scaled(PAPER_ENTRIES)} entries (paper: {PAPER_ENTRIES}); "
            "paper shape: rates decline 20-35% from 10 to 100 threads",
        ],
    )

    write_bench_artifact(
        "fig06",
        series={
            "lrc.query_rate": [[c, query_rates[c]] for c in CLIENT_COUNTS],
            "lrc.add_rate": [[c, add_rates[c]] for c in CLIENT_COUNTS],
            "lrc.delete_rate": [[c, delete_rates[c]] for c in CLIENT_COUNTS],
        },
        meta={
            "entries": scaled(PAPER_ENTRIES),
            "threads_per_client": 10,
            "x_axis": "clients",
        },
    )

    # Shape: queries are the fastest operation class at every point.
    for c in CLIENT_COUNTS:
        assert query_rates[c] > add_rates[c]
    # Rates must not *improve* dramatically at 100 threads vs 10
    # (loose bounds: single trials of a Python server are noisy).
    assert query_rates[10] < query_rates[1] * 2.0
    assert add_rates[10] < add_rates[1] * 2.5
