"""Figure 7: native MySQL performing the LRC's SQL directly.

Paper setup: the same SQL operations an LRC performs for query/add/delete,
submitted straight to the MySQL back end (no RLS server in front).
Result: the LRC achieves ~70-90% of native throughput — the gap is RLS
server overhead (authentication, thread management, RPC).
"""

from __future__ import annotations

import threading
import time

import pytest

from benchmarks.common import (
    measure_rate,
    native_add,
    native_delete,
    native_query,
    record_series,
    scaled,
)
from repro.db.odbc import Connection
from repro.workload.driver import LoadDriver
from repro.workload.scenarios import loaded_lrc_server

PAPER_ENTRIES = 1_000_000
CLIENT_COUNTS = [1, 4, 10]
PAPER_NATIVE = {
    "query": {1: 2600, 4: 2500, 10: 2400},
    "add": {1: 1000, 4: 900, 10: 580},
    "delete": {1: 650, 4: 570, 10: 490},
}


@pytest.fixture(scope="module")
def lrc_server():
    server, mappings = loaded_lrc_server(
        scaled(PAPER_ENTRIES), name="fig7-lrc", sync_latency=0.0
    )
    yield server, mappings
    server.stop()


def _native_rate(engine, op_for_thread, threads: int, total_ops: int) -> float:
    """Multi-threaded native-SQL rate against the engine directly."""
    per_thread = total_ops // threads
    barrier = threading.Barrier(threads + 1)

    def worker(tid: int) -> None:
        conn = Connection(engine, "native")
        barrier.wait()
        for i in range(per_thread):
            op_for_thread(conn, tid * per_thread + i)
        conn.close()

    workers = [
        threading.Thread(target=worker, args=(t,)) for t in range(threads)
    ]
    for w in workers:
        w.start()
    barrier.wait()
    start = time.perf_counter()
    for w in workers:
        w.join()
    elapsed = time.perf_counter() - start
    return (per_thread * threads) / elapsed


def bench_fig07_native_vs_lrc(lrc_server, benchmark):
    server, mappings = lrc_server
    engine = server.engine
    query_lfns = mappings.random_lfns(2000)

    native, through_lrc = {}, {}
    counter = [0]
    for clients in CLIENT_COUNTS:
        threads = clients * 10
        ops = 2000
        # --- native SQL ---
        nq = _native_rate(
            engine,
            lambda conn, i: native_query(conn, query_lfns[i % len(query_lfns)]),
            threads,
            ops,
        )
        base = counter[0]
        na = _native_rate(
            engine,
            lambda conn, i: native_add(
                conn, f"fig7n-{base + i}", f"pfn://fig7n-{base + i}"
            ),
            threads,
            ops,
        )
        nd = _native_rate(
            engine,
            lambda conn, i: native_delete(
                conn, f"fig7n-{base + i}", f"pfn://fig7n-{base + i}"
            ),
            threads,
            ops,
        )
        counter[0] += ops
        native[clients] = (nq, na, nd)

        # --- through the LRC server ---
        lq = measure_rate(
            server.config.name, LoadDriver.query_op(query_lfns), clients, 10, ops,
            trials=2,
        )
        base = counter[0]
        add_lfns = [f"fig7l-{base + i}" for i in range(ops)]
        pfn_of = lambda lfn: f"pfn://{lfn}"
        la = measure_rate(
            server.config.name, LoadDriver.add_op(add_lfns, pfn_of), clients, 10, ops
        )
        ld = measure_rate(
            server.config.name,
            LoadDriver.delete_op(add_lfns, pfn_of),
            clients,
            10,
            ops,
        )
        counter[0] += ops
        through_lrc[clients] = (lq, la, ld)

    benchmark.pedantic(
        lambda: _native_rate(
            engine,
            lambda conn, i: native_query(conn, query_lfns[i % len(query_lfns)]),
            10,
            1000,
        ),
        rounds=3,
        iterations=1,
    )

    rows = []
    for c in CLIENT_COUNTS:
        nq, na, nd = native[c]
        lq, la, ld = through_lrc[c]
        rows.append(
            [
                c,
                f"{nq:.0f}", f"{lq:.0f}", f"{100 * lq / nq:.0f}%",
                f"{na:.0f}", f"{la:.0f}", f"{100 * la / na:.0f}%",
                f"{nd:.0f}", f"{ld:.0f}", f"{100 * ld / nd:.0f}%",
            ]
        )
    record_series(
        "Figure 7 — native MySQL vs through-LRC rates (ops/s)",
        [
            "clients",
            "native q", "lrc q", "q ratio",
            "native add", "lrc add", "add ratio",
            "native del", "lrc del", "del ratio",
        ],
        rows,
        notes=[
            "paper ratios: query ~70-80%, add ~89% (1 client) to >100% "
            "(10 clients), delete ~87-96%",
        ],
    )

    # Shape: queries through the LRC never beat native meaningfully (the
    # server adds overhead); adds may exceed native under many threads,
    # which the paper itself observed ("Add performance is actually better
    # for the LRC than for the MySQL native database with 10 clients").
    # Per-point rates are noisy single trials, so assert on the series
    # aggregates.
    agg_query = sum(through_lrc[c][0] for c in CLIENT_COUNTS) / sum(
        native[c][0] for c in CLIENT_COUNTS
    )
    agg_add = sum(through_lrc[c][1] for c in CLIENT_COUNTS) / sum(
        native[c][1] for c in CLIENT_COUNTS
    )
    agg_delete = sum(through_lrc[c][2] for c in CLIENT_COUNTS) / sum(
        native[c][2] for c in CLIENT_COUNTS
    )
    assert 0.2 < agg_query <= 1.3, f"query ratio {agg_query:.2f}"
    assert 0.2 < agg_add <= 2.5, f"add ratio {agg_add:.2f}"
    assert 0.2 < agg_delete <= 2.5, f"delete ratio {agg_delete:.2f}"
