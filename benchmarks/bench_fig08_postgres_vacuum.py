"""Figure 8: PostgreSQL add-rate sawtooth from dead tuples and VACUUM.

Paper setup: LRC on PostgreSQL (fsync disabled), database of 110 K
mappings.  Each trial adds 10 000 mappings then deletes them; after 10
trials (100 K operations) a VACUUM runs.  Result: the add rate decays
steadily across trials as dead tuples accumulate, then snaps back to its
maximum after each VACUUM — a sawtooth.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import (
    attach_collector,
    record_series,
    scaled,
    write_bench_artifact,
)
from repro.core.config import Backend
from repro.obs.analyze import analyze_store
from repro.workload.scenarios import loaded_lrc_server

PAPER_BASE_ENTRIES = 110_000
PAPER_OPS_PER_TRIAL = 10_000
TRIALS_PER_CYCLE = 10
CYCLES = 2


@pytest.fixture(scope="module")
def pg_server():
    server, mappings = loaded_lrc_server(
        scaled(PAPER_BASE_ENTRIES),
        name="fig8-pg",
        backend=Backend.POSTGRESQL,
        sync_latency=0.0,
    )
    yield server
    server.stop()


def _trial_add_rate(lrc, ops: int) -> float:
    """One §5.2 trial: add ``ops`` mappings, then delete them.

    The same name set is reused every trial (as in the paper's protocol of
    adding and subsequently deleting the mappings), so each cycle piles up
    another generation of dead tuples for these keys: the unique-check on
    every re-add must skip all prior dead index entries, which is exactly
    the degradation VACUUM clears.
    """
    pairs = [(f"fig8-{i}", f"pfn://fig8-{i}") for i in range(ops)]
    start = time.perf_counter()
    for lfn, pfn in pairs:
        lrc.create_mapping(lfn, pfn)
    elapsed = time.perf_counter() - start
    for lfn, pfn in pairs:
        lrc.delete_mapping(lfn, pfn)
    return ops / elapsed


def bench_fig08_sawtooth(pg_server, benchmark):
    server = pg_server
    lrc = server.lrc
    ops = scaled(PAPER_OPS_PER_TRIAL, minimum=300)

    # Collector attached for the whole run: one scrape round per trial
    # (trial index as the time axis), so internal counter/histogram series
    # line up 1:1 with the measured per-trial add rates.
    collector = attach_collector(server)
    rates: list[float] = []
    dead_counts: list[int] = []
    for cycle in range(CYCLES):
        for trial in range(TRIALS_PER_CYCLE):
            rates.append(_trial_add_rate(lrc, ops))
            # Attribution via the public metrics surface: the engine
            # exports dead-tuple counts as db.table.* gauges, so the
            # sawtooth explanation needs no private engine access.
            dead_counts.append(int(
                server.metrics.snapshot().gauges[
                    "db.table.dead_tuples{table=t_lfn}"
                ]
            ))
            t = float(len(rates))
            collector.scrape_once(now=t)
            collector.store.record("lrc.add_rate", t, rates[-1])
        server.engine.vacuum()

    # Automatic pathology detection: the analyzer's built-in thresholds
    # must find the VACUUM sawtooth on their own (no tuning here).
    detections = analyze_store(collector.store)
    sawtooths = [d for d in detections if d.kind == "sawtooth"]

    benchmark.pedantic(
        lambda: _trial_add_rate(lrc, min(ops, 500)),
        rounds=3,
        iterations=1,
    )

    rows = []
    for i, (rate, dead) in enumerate(zip(rates, dead_counts)):
        cycle, trial = divmod(i, TRIALS_PER_CYCLE)
        marker = " <- VACUUM after this trial" if trial == TRIALS_PER_CYCLE - 1 else ""
        rows.append(
            [f"c{cycle} t{trial}", f"{rate:.0f}", dead, marker]
        )
    record_series(
        "Figure 8 — PostgreSQL add rate sawtooth (adds/s per trial)",
        ["trial", "adds/s", "dead t_lfn tuples", ""],
        rows,
        notes=[
            f"{ops} adds+deletes per trial (paper: {PAPER_OPS_PER_TRIAL}); "
            "paper shape: rate decays within a cycle, VACUUM restores it",
            *(f"[detected] {d.kind}: {d.summary}" for d in detections),
        ],
    )

    artifact = write_bench_artifact(
        "fig08",
        series=collector.store.to_dict(),
        detections=detections,
        meta={
            "ops_per_trial": ops,
            "trials_per_cycle": TRIALS_PER_CYCLE,
            "cycles": CYCLES,
            "dead_tuples": dead_counts,
            "dead_tuples_source": "db.table.dead_tuples{table=t_lfn}",
        },
        nodes={
            name: collector.node_store(name).to_dict()
            for name in collector.node_names
        },
    )
    print(f"wrote {artifact}")

    # Shape assertions: within each cycle the late-trial rate is lower than
    # the early-trial rate, and the first trial after VACUUM recovers.
    first_cycle = rates[:TRIALS_PER_CYCLE]
    early = sum(first_cycle[:3]) / 3
    late = sum(first_cycle[-3:]) / 3
    assert late < early * 0.9, "no decay within cycle"
    post_vacuum = rates[TRIALS_PER_CYCLE]
    assert post_vacuum > late * 1.1, "VACUUM did not restore the add rate"
    # The detector must fire with its defaults — period and amplitude
    # are reported in the detection details.
    assert sawtooths, "analyzer missed the sawtooth the shape asserts"
    assert all(
        "period" in d.details and "amplitude" in d.details for d in sawtooths
    )
