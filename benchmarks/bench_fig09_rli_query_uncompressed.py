"""Figure 9: RLI query rates with full uncompressed updates.

Paper setup: RLI with 1 M mappings in a MySQL back end (populated by
uncompressed soft-state updates), 1-10 clients x 3 threads.
Result: ~3000 queries/s, roughly flat with client count.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    measure_rate,
    record_series,
    scaled,
    write_bench_artifact,
)
from repro.workload.driver import LoadDriver
from repro.workload.scenarios import loaded_rli_server_uncompressed

PAPER_MAPPINGS = 1_000_000
CLIENT_COUNTS = [1, 2, 4, 6, 8, 10]
PAPER_RATE = {1: 2900, 2: 3000, 4: 3000, 6: 3000, 8: 2950, 10: 2900}


@pytest.fixture(scope="module")
def rli_server():
    server, lfns = loaded_rli_server_uncompressed(
        scaled(PAPER_MAPPINGS), num_lrcs=1, name="fig9-rli"
    )
    yield server, lfns
    server.stop()


def bench_fig09_rli_query_rates(rli_server, benchmark):
    server, lfns = rli_server
    probe = lfns[:: max(1, len(lfns) // 2000)]
    op = LoadDriver.rli_query_op(probe)

    rates = {}
    for clients in CLIENT_COUNTS:
        rates[clients] = measure_rate(
            server.config.name, op, clients, 3, total_operations=3000, trials=3
        )

    benchmark.pedantic(
        lambda: measure_rate(server.config.name, op, 1, 3, 2000),
        rounds=3,
        iterations=1,
    )

    rows = [
        [c, PAPER_RATE[c], f"{rates[c]:.0f}"] for c in CLIENT_COUNTS
    ]
    record_series(
        "Figure 9 — RLI full-LFN query rate (queries/s), uncompressed updates",
        ["clients (x3 threads)", "paper", "ours"],
        rows,
        notes=[
            f"RLI holds {scaled(PAPER_MAPPINGS)} mappings "
            f"(paper: {PAPER_MAPPINGS})",
        ],
    )

    write_bench_artifact(
        "fig09",
        series={
            "rli.query_rate": [[c, rates[c]] for c in CLIENT_COUNTS],
        },
        meta={
            "mappings": scaled(PAPER_MAPPINGS),
            "threads_per_client": 3,
            "x_axis": "clients",
        },
    )

    # Shape: roughly flat across client counts (within 2x of the 1-client rate).
    base = rates[1]
    for c in CLIENT_COUNTS:
        assert 0.5 * base < rates[c] < 2.0 * base
