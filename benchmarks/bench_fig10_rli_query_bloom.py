"""Figure 10: RLI query rates against in-memory Bloom filters.

Paper setup: each Bloom filter summarizes 1 M mappings; the RLI holds 1,
10 or 100 filters; 1-10 clients x 3 threads.  Result: ~10000+ queries/s
for 1 and 10 filters — much faster than the relational store (Figure 9) —
dropping substantially at 100 filters because every query probes every
filter.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    measure_rate,
    record_series,
    scaled,
    write_bench_artifact,
)
from repro.workload.driver import LoadDriver
from repro.workload.scenarios import loaded_rli_server_bloom

PAPER_ENTRIES_PER_FILTER = 1_000_000
FILTER_COUNTS = [1, 10, 100]
CLIENT_COUNTS = [1, 4, 10]
PAPER_RATE = {
    1: {1: 11000, 4: 12000, 10: 12000},
    10: {1: 10000, 4: 11500, 10: 11500},
    100: {1: 2500, 4: 3000, 10: 3000},
}


@pytest.fixture(scope="module", params=FILTER_COUNTS)
def bloom_rli(request):
    num_filters = request.param
    server, lfns = loaded_rli_server_bloom(
        scaled(PAPER_ENTRIES_PER_FILTER),
        num_filters=num_filters,
        name=f"fig10-rli-{num_filters}",
    )
    yield server, lfns, num_filters
    server.stop()


RESULTS: dict[int, dict[int, float]] = {}


def bench_fig10_bloom_query_rates(bloom_rli, benchmark):
    server, lfns, num_filters = bloom_rli
    probe = lfns[:: max(1, len(lfns) // 2000)]
    op = LoadDriver.rli_query_op(probe)

    rates = {}
    for clients in CLIENT_COUNTS:
        rates[clients] = measure_rate(
            server.config.name, op, clients, 3, total_operations=3000, trials=2
        )
    RESULTS[num_filters] = rates

    benchmark.pedantic(
        lambda: measure_rate(server.config.name, op, 1, 3, 1500),
        rounds=3,
        iterations=1,
    )

    # Per-filter-count shape: flat-ish across clients.
    base = rates[1]
    for c in CLIENT_COUNTS:
        assert rates[c] > 0.4 * base

    if len(RESULTS) == len(FILTER_COUNTS):
        rows = []
        for c in CLIENT_COUNTS:
            rows.append(
                [
                    c,
                    PAPER_RATE[1][c], f"{RESULTS[1][c]:.0f}",
                    PAPER_RATE[10][c], f"{RESULTS[10][c]:.0f}",
                    PAPER_RATE[100][c], f"{RESULTS[100][c]:.0f}",
                ]
            )
        record_series(
            "Figure 10 — RLI Bloom-filter query rate (queries/s)",
            [
                "clients (x3 thr)",
                "paper 1bf", "ours 1bf",
                "paper 10bf", "ours 10bf",
                "paper 100bf", "ours 100bf",
            ],
            rows,
            notes=[
                f"each filter summarizes {scaled(PAPER_ENTRIES_PER_FILTER)} "
                f"mappings (paper: {PAPER_ENTRIES_PER_FILTER})",
                "paper shape: 1bf ~= 10bf >> 100bf",
            ],
        )
        from repro.obs.timeseries import SeriesStore

        store = SeriesStore()
        for nf in FILTER_COUNTS:
            for c in CLIENT_COUNTS:
                store.record(
                    f"rli.bloom_query_rate{{filters={nf}}}",
                    float(c),
                    RESULTS[nf][c],
                )
        artifact = write_bench_artifact(
            "fig10",
            series=store.to_dict(),
            meta={
                "filter_counts": FILTER_COUNTS,
                "client_counts": CLIENT_COUNTS,
                "entries_per_filter": scaled(PAPER_ENTRIES_PER_FILTER),
            },
        )
        print(f"wrote {artifact}")

        # Cross-series shape: 100 filters must be much slower than 1 filter.
        for c in CLIENT_COUNTS:
            assert RESULTS[100][c] < 0.5 * RESULTS[1][c]
