"""Figure 11: bulk operation rates (1000 requests per operation).

Paper setup: LRC with 1 M mappings, MySQL, multiple clients x 10 threads,
each bulk request carrying 1000 operations.  Result: bulk queries beat
non-bulk queries by ~27% for one client, shrinking to ~8% at 10 clients;
combined bulk add/delete lands near (slightly above) non-bulk rates.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    measure_rate,
    record_series,
    scaled,
    write_bench_artifact,
)
from repro.core.client import connect
from repro.workload.driver import LoadDriver
from repro.workload.scenarios import loaded_lrc_server

PAPER_ENTRIES = 1_000_000
BATCH = 1000
CLIENT_COUNTS = [1, 4, 10]
PAPER_BULK_QUERY = {1: 2670, 4: 2200, 10: 1840}
PAPER_BULK_ADD_DELETE = {1: 960, 4: 700, 10: 510}


@pytest.fixture(scope="module")
def lrc_server():
    server, mappings = loaded_lrc_server(
        scaled(PAPER_ENTRIES), name="fig11-lrc", sync_latency=0.0
    )
    yield server, mappings
    server.stop()


def _bulk_query_rate(server_name, lfns, clients) -> float:
    """Rate in *logical operations*/s: each request carries BATCH queries."""
    requests = clients * 10  # one bulk request per thread
    driver_rate = measure_rate(
        server_name,
        LoadDriver.bulk_query_op(lfns, batch=BATCH),
        clients,
        10,
        total_operations=requests,
        trials=3,
    )
    return driver_rate * BATCH


def _bulk_add_delete_rate(server_name, clients, start) -> float:
    """Each op: bulk-create 1000 mappings then bulk-delete them (§5.4)."""
    requests = clients * 10

    def op(client, i):
        pairs = [
            (f"fig11-{start + i}-{j}", f"pfn://fig11-{start + i}-{j}")
            for j in range(BATCH)
        ]
        failures = client.bulk_create(pairs)
        assert not failures
        failures = client.bulk_delete(pairs)
        assert not failures

    rate = measure_rate(
        server_name, op, clients, 10, total_operations=requests
    )
    return rate * BATCH  # add+delete pairs per second


def bench_fig11_bulk_rates(lrc_server, benchmark):
    server, mappings = lrc_server
    name = server.config.name
    lfns = mappings.random_lfns(4000)

    bulk_query, bulk_ad, nonbulk_query = {}, {}, {}
    start = 0
    for clients in CLIENT_COUNTS:
        bulk_query[clients] = _bulk_query_rate(name, lfns, clients)
        bulk_ad[clients] = _bulk_add_delete_rate(name, clients, start)
        start += clients * 10
        nonbulk_query[clients] = measure_rate(
            name, LoadDriver.query_op(lfns), clients, 10, 2000, trials=3
        )

    benchmark.pedantic(
        lambda: connect(name).bulk_query(lfns[:BATCH]),
        rounds=3,
        iterations=1,
    )

    rows = [
        [
            c,
            PAPER_BULK_QUERY[c],
            f"{bulk_query[c]:.0f}",
            f"{nonbulk_query[c]:.0f}",
            PAPER_BULK_ADD_DELETE[c],
            f"{bulk_ad[c]:.0f}",
        ]
        for c in CLIENT_COUNTS
    ]
    record_series(
        "Figure 11 — bulk operation rates (logical ops/s, 1000 per request)",
        [
            "clients",
            "paper bulk query", "ours bulk query", "ours non-bulk query",
            "paper bulk add/del", "ours bulk add/del",
        ],
        rows,
        notes=[
            "paper shape: bulk query > non-bulk query, advantage shrinking "
            "with total threads",
        ],
    )

    write_bench_artifact(
        "fig11",
        series={
            "lrc.bulk_query_rate": [
                [c, bulk_query[c]] for c in CLIENT_COUNTS
            ],
            "lrc.bulk_add_delete_rate": [
                [c, bulk_ad[c]] for c in CLIENT_COUNTS
            ],
            "lrc.nonbulk_query_rate": [
                [c, nonbulk_query[c]] for c in CLIENT_COUNTS
            ],
        },
        meta={"batch": BATCH, "x_axis": "clients"},
    )

    # Shape: bulk queries outperform non-bulk queries in aggregate
    # (request aggregation amortizes per-request overhead); individual
    # points may tie under scheduler noise.
    assert sum(bulk_query.values()) > sum(nonbulk_query.values())
    for c in CLIENT_COUNTS:
        assert bulk_query[c] > 0.75 * nonbulk_query[c]
    # The paper's second-order effect — the bulk advantage *shrinking* from
    # +27% (1 client) to +8% (10 clients) — is smaller than this suite's
    # run-to-run variance on a shared CPU, so it is reported in the table
    # above rather than asserted.
