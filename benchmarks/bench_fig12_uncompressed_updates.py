"""Figure 12: uncompressed soft-state update times, LAN, vs LRC size/count.

Paper setup: LRCs of 10 K / 100 K / 1 M entries continuously sending full
uncompressed updates to one RLI over a 100 Mb/s LAN; 1-8 LRCs.
Result (log scale): update time grows with LRC size (~831 s for one
1 M-entry update) and nearly linearly with the number of concurrent LRCs
(~5102 s for 6 LRCs at 1 M) because RLI ingest is serialized.

This experiment runs on the discrete-event simulator (see DESIGN.md:
substitutions) with the RLI ingest rate calibrated from the paper's own
single-LRC measurement.  A small real-system cross-check validates the
serialized-ingest mechanism against live servers.
"""

from __future__ import annotations

import threading
import time

from benchmarks.common import record_series, scaled, write_bench_artifact
from repro.core.config import ServerRole
from repro.core.server import RLSServer
from repro.core.config import ServerConfig
from repro.sim.models import uncompressed_update_times
from repro.workload.names import sequential_names

LRC_SIZES = [10_000, 100_000, 1_000_000]
LRC_COUNTS = [1, 2, 4, 6, 8]
# Paper's headline points (log-scale figure; 1 LRC/1M and 6 LRC/1M quoted
# in the text, the rest read from the curves).
PAPER = {
    (1, 10_000): 8.3, (1, 100_000): 83, (1, 1_000_000): 831,
    (6, 1_000_000): 5102,
}


def bench_fig12_simulated_series(benchmark):
    results = {}
    for size in LRC_SIZES:
        for count in LRC_COUNTS:
            r = uncompressed_update_times(size, count, rounds=3)
            results[(count, size)] = r.mean_update_time

    benchmark.pedantic(
        lambda: uncompressed_update_times(100_000, 4, rounds=3),
        rounds=3,
        iterations=1,
    )

    rows = []
    for count in LRC_COUNTS:
        row = [count]
        for size in LRC_SIZES:
            paper = PAPER.get((count, size))
            row.append(f"{paper:.0f}" if paper else "-")
            row.append(f"{results[(count, size)]:.0f}")
        rows.append(row)
    record_series(
        "Figure 12 — uncompressed soft-state update time (s), LAN",
        [
            "LRCs",
            "paper 10K", "ours 10K",
            "paper 100K", "ours 100K",
            "paper 1M", "ours 1M",
        ],
        rows,
        notes=[
            "simulated LAN + serialized RLI ingest calibrated at "
            "1203 entries/s (from the paper's 831 s single-LRC update)",
        ],
    )

    write_bench_artifact(
        "fig12",
        series={
            f"updates.full_time.{size}": [
                [count, results[(count, size)]] for count in LRC_COUNTS
            ]
            for size in LRC_SIZES
        },
        meta={"x_axis": "concurrent LRCs", "unit": "seconds"},
    )

    # Shapes: linear in LRC count; ~proportional to LRC size.
    assert 4.5 < results[(6, 1_000_000)] / results[(1, 1_000_000)] < 7.5
    assert 50 < results[(1, 1_000_000)] / results[(1, 10_000)] < 150
    # Headline numbers within 20% of the paper.
    assert abs(results[(1, 1_000_000)] - 831) / 831 < 0.2
    assert abs(results[(6, 1_000_000)] - 5102) / 5102 < 0.2


def bench_fig12_real_system_crosscheck(benchmark):
    """Mechanism check on live servers: with k LRCs pushing full updates
    concurrently, per-update latency grows ~k-fold (serialized ingest)."""
    rli = RLSServer(
        ServerConfig(name="fig12-rli", role=ServerRole.RLI, sync_latency=0.0)
    )
    lfns = sequential_names(scaled(20_000, minimum=2000))

    def concurrent_updates(k: int) -> float:
        durations = []
        lock = threading.Lock()

        def one(i: int) -> None:
            start = time.perf_counter()
            rli.rli.apply_full_update(f"x{k}-lrc{i}", lfns)
            with lock:
                durations.append(time.perf_counter() - start)

        threads = [
            threading.Thread(target=one, args=(i,)) for i in range(k)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return sum(durations) / len(durations)

    try:
        # Warm the shared t_lfn rows so every measured update does the
        # same work (an upsert per name); the very first update also pays
        # to insert the names themselves.
        rli.rli.apply_full_update("warmup-lrc", lfns)
        t1 = concurrent_updates(1)
        t4 = concurrent_updates(4)
        benchmark.pedantic(lambda: concurrent_updates(2), rounds=2, iterations=1)
        record_series(
            "Figure 12 cross-check — real servers, mean full-update time (s)",
            ["concurrent LRCs", "mean update time"],
            [[1, f"{t1:.2f}"], [4, f"{t4:.2f}"]],
            notes=[
                "serialized ingest: mean of 4 concurrent updates is "
                "(1+2+3+4)/4 = 2.5x the single-update time",
            ],
        )
        assert t4 > 1.8 * t1
    finally:
        rli.stop()
