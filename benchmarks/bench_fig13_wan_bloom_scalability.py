"""Figure 13: continuous WAN Bloom updates from 1-14 LRC clients.

Paper setup: 14 LRCs with 5 M mappings each send Bloom updates to one RLI
continuously (a new update starts the moment the previous one completes)
over the LA→Chicago WAN path.  Result: mean client update time stays at
~6.5-7 s up to seven clients, then rises to ~11.5 s at fourteen —
"suggesting increasing contention for RLI resources".
"""

from __future__ import annotations

from benchmarks.common import record_series, write_bench_artifact
from repro.sim.models import bloom_update_times_wan

ENTRIES = 5_000_000
CLIENT_COUNTS = [1, 2, 4, 7, 8, 10, 12, 14]
PAPER = {1: 6.5, 2: 6.6, 4: 6.7, 7: 7.0, 8: 7.3, 10: 8.5, 12: 10.0, 14: 11.5}


def bench_fig13_wan_scalability(benchmark):
    results = {
        n: bloom_update_times_wan(ENTRIES, n).mean_update_time
        for n in CLIENT_COUNTS
    }

    benchmark.pedantic(
        lambda: bloom_update_times_wan(ENTRIES, 7),
        rounds=3,
        iterations=1,
    )

    rows = [
        [n, PAPER[n], f"{results[n]:.2f}"] for n in CLIENT_COUNTS
    ]
    record_series(
        "Figure 13 — mean time for continuous WAN Bloom updates (s)",
        ["LRC clients", "paper", "ours"],
        rows,
        notes=[
            "5M mappings per filter (50 Mb bitmap); simulated WAN with "
            "shared 100 Mb/s link, per-flow TCP window cap, serialized "
            "RLI ingest",
        ],
    )

    artifact = write_bench_artifact(
        "fig13",
        series={
            "mean_update_time": [
                [float(n), results[n]] for n in CLIENT_COUNTS
            ],
            "paper_mean_update_time": [
                [float(n), PAPER[n]] for n in CLIENT_COUNTS
            ],
        },
        meta={
            "entries_per_filter": ENTRIES,
            "x_axis": "concurrent LRC clients",
            "model": "simulated shared 100 Mb/s WAN, serialized RLI ingest",
        },
    )
    print(f"wrote {artifact}")

    # Shape: flat (within ~15%) through 7 clients, then a clear rise.
    assert results[7] < results[1] * 1.15
    assert results[14] > results[7] * 1.4
    # Headline point within ~15% of the paper's 11.5 s.
    assert abs(results[14] - 11.5) / 11.5 < 0.15
