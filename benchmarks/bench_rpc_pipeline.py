"""RPC pipelining: serial round trips vs correlation-id pipelining.

Not a paper figure — a regression gate for the RPC hot path.  One TCP
connection issues ``DEPTH``-deep bursts of a tiny echo method three ways:

* **serial** — one ``call`` per request, lock held across the round trip
  (the protocol-v1 discipline);
* **pipelined** — ``call_async`` x DEPTH then ``drain``: every request is
  in flight at once, coalesced into batch frames, and the responses are
  dispatched by correlation id.

The pipelined rate must beat serial by ``MIN_SPEEDUP`` at the deepest
burst: the whole point of the v2 protocol is that a burst costs ~one
round trip instead of DEPTH of them.
"""

from __future__ import annotations

import pytest

from benchmarks.common import record_series, write_bench_artifact
from repro.net.rpc import RPCClient, RPCServer
from repro.net.transport import TCPServerTransport, connect_tcp

DEPTHS = [1, 4, 16]
#: Requests per measured trial at each depth.
REQUESTS = 2_000
#: Required pipelined/serial advantage at the deepest burst.
MIN_SPEEDUP = 3.0
TRIALS = 3


@pytest.fixture(scope="module")
def tcp_endpoint():
    server = RPCServer()
    server.register("echo", lambda ctx, args: args[0])
    transport = TCPServerTransport(server, host="127.0.0.1", port=0)
    yield transport.host, transport.port
    transport.close()


def _rate(client: RPCClient, depth: int, pipelined: bool) -> float:
    """Echo requests per second over ``REQUESTS`` calls in depth-bursts."""
    import time

    bursts = REQUESTS // depth
    start = time.perf_counter()
    for burst in range(bursts):
        if pipelined:
            calls = [
                client.call_async("echo", burst * depth + i)
                for i in range(depth)
            ]
            client.drain()
            for i, call in enumerate(calls):
                assert call.result() == burst * depth + i
        else:
            for i in range(depth):
                assert client.call("echo", burst * depth + i) == (
                    burst * depth + i
                )
    elapsed = time.perf_counter() - start
    return bursts * depth / elapsed


def bench_rpc_pipeline(tcp_endpoint, benchmark):
    host, port = tcp_endpoint
    client = RPCClient(connect_tcp(host, port))
    assert client.pipelined, "TCP handshake must negotiate protocol v2"
    try:
        # Warm the connection and the codec paths.
        _rate(client, 4, pipelined=True)

        serial, piped = {}, {}
        for depth in DEPTHS:
            serial[depth] = max(
                _rate(client, depth, pipelined=False) for _ in range(TRIALS)
            )
            piped[depth] = max(
                _rate(client, depth, pipelined=True) for _ in range(TRIALS)
            )

        benchmark.pedantic(
            lambda: _rate(client, DEPTHS[-1], pipelined=True),
            rounds=1,
            iterations=1,
        )
    finally:
        client.close()

    rows = [
        [
            depth,
            f"{serial[depth]:.0f}",
            f"{piped[depth]:.0f}",
            f"{piped[depth] / serial[depth]:.2f}x",
        ]
        for depth in DEPTHS
    ]
    record_series(
        "RPC pipelining — echo round trips/s on one TCP connection",
        ["burst depth", "serial", "pipelined", "speedup"],
        rows,
        notes=[
            f"gate: pipelined >= {MIN_SPEEDUP:.0f}x serial at depth "
            f"{DEPTHS[-1]} (v2 batches a burst into ~one round trip)",
        ],
    )
    write_bench_artifact(
        "rpc_pipeline",
        series={
            "rpc.serial_rate": [[d, serial[d]] for d in DEPTHS],
            "rpc.pipelined_rate": [[d, piped[d]] for d in DEPTHS],
            "rpc.speedup": [[d, piped[d] / serial[d]] for d in DEPTHS],
        },
        meta={"requests": REQUESTS, "x_axis": "burst_depth"},
    )

    # Depth 1 is a pure-overhead case (one request per flush); it must
    # not regress below serial by more than scheduler noise.
    assert piped[1] > 0.5 * serial[1]
    assert piped[DEPTHS[-1]] >= MIN_SPEEDUP * serial[DEPTHS[-1]], (
        f"pipelined depth-{DEPTHS[-1]} only "
        f"{piped[DEPTHS[-1]] / serial[DEPTHS[-1]]:.2f}x serial"
    )
