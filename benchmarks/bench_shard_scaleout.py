"""Shard scale-out bench: aggregate throughput vs shards and mirrors.

Not a paper figure — the paper's §6 measures a *single* LRC saturating
(Figure 6); this bench quantifies the escape hatch: partitioning the
namespace across N shard masters on a consistent-hash ring and adding
read-only mirrors per shard, all reached through one
:class:`~repro.cluster.combined.CombinedClient`.

Per-server capacity is modelled with ``ServerConfig.service_latency``
(requests serialize through one stage per server, like the saturated
server of Figure 6), so aggregate throughput genuinely scales with the
number of endpoints rather than measuring the host's Python overhead.

Assertions: aggregate query throughput at 2 shards reaches >= 1.6x the
1-shard rate; reads keep succeeding (served by the master) when every
mirror of a shard is down; writes sent directly to a mirror are rejected
with :class:`~repro.core.errors.ReadOnlyCatalogError`.
"""

from __future__ import annotations

import random

from benchmarks.common import record_series, scaled, write_bench_artifact
from repro.cluster.combined import CombinedClient
from repro.cluster.ring import ShardMap
from repro.core.client import connect
from repro.core.config import ServerConfig, ServerRole
from repro.core.errors import ReadOnlyCatalogError
from repro.core.server import RLSServer
from repro.workload.driver import LoadDriver

PAPER_ENTRIES = 100_000
SHARD_COUNTS = [1, 2, 4]
MIRROR_COUNTS = [0, 1, 2]
#: Modelled per-request service time: each endpoint saturates at ~1/this
#: ops/s, so endpoint count — not host Python throughput — sets the ceiling.
SERVICE_LATENCY = 0.005
CLIENTS = 2
THREADS = 8
QUERY_OPS = 1200
ADD_OPS = 600
SEED = 7

#: Aggregate query throughput must reach this multiple going 1 -> 2 shards.
MIN_SPEEDUP_2_SHARDS = 1.6


def make_cluster(
    num_shards: int, mirrors_per_shard: int, entries: int
) -> tuple[dict[str, RLSServer], ShardMap, list[str]]:
    """Start masters + mirrors, preload ``entries`` mappings, sync mirrors."""
    shards = tuple(f"sc{num_shards}x{mirrors_per_shard}-s{i}" for i in range(num_shards))
    mirrors = {
        shard: tuple(f"{shard}-m{j}" for j in range(mirrors_per_shard))
        for shard in shards
    }
    smap = ShardMap(shards=shards, mirrors=mirrors)
    servers: dict[str, RLSServer] = {}
    for shard in shards:
        for mirror in smap.mirrors_of(shard):
            servers[mirror] = RLSServer(
                ServerConfig(
                    name=mirror,
                    role=ServerRole.LRC,
                    mirror_of=shard,
                    cluster=smap,
                    sync_latency=0.0,
                    service_latency=SERVICE_LATENCY,
                )
            ).start()
        servers[shard] = RLSServer(
            ServerConfig(
                name=shard,
                role=ServerRole.LRC,
                mirrors=smap.mirrors_of(shard),
                cluster=smap,
                sync_latency=0.0,
                service_latency=SERVICE_LATENCY,
            )
        ).start()
    # Preload through the back door (direct bulk_load per owning shard):
    # the modelled service time would make RPC preloading dominate runtime.
    ring = smap.ring()
    lfns = [f"scale-{i:06d}" for i in range(entries)]
    for shard, owned in ring.partition(lfns).items():
        server = servers[shard]
        assert server.lrc is not None
        server.lrc.bulk_load((lfn, f"pfn://{lfn}") for lfn in owned)
        if smap.mirrors_of(shard):
            connect(shard).mirror_sync()
    return servers, smap, lfns


def stop_cluster(servers: dict[str, RLSServer]) -> None:
    for server in servers.values():
        server.stop()


def combined_rate(
    smap: ShardMap, operation, total_operations: int, trials: int = 1
) -> float:
    """Mean ops/s of ``operation`` through per-thread combined clients."""
    rng = random.Random(SEED)
    driver = LoadDriver(
        server_name=smap.shards[0],  # unused: connect_fn ignores the name
        clients=CLIENTS,
        threads_per_client=THREADS,
        total_operations=total_operations,
        connect_fn=lambda name, cred: CombinedClient(
            smap, rng=random.Random(rng.random())
        ),
    )
    rates = []
    for _ in range(trials):
        result = driver.run(operation)
        assert result.errors == 0, f"{result.errors} operations failed"
        rates.append(result.rate)
    return sum(rates) / len(rates)


def bench_shard_scaleout(benchmark):
    entries = scaled(PAPER_ENTRIES, minimum=2_000)
    rng = random.Random(SEED)

    # --- aggregate rate vs shard count (no mirrors: pure sharding) ---
    query_rates: dict[int, float] = {}
    add_rates: dict[int, float] = {}
    for num_shards in SHARD_COUNTS:
        servers, smap, lfns = make_cluster(num_shards, 0, entries)
        try:
            probe = [lfns[rng.randrange(len(lfns))] for _ in range(2000)]
            query_rates[num_shards] = combined_rate(
                smap, LoadDriver.query_op(probe), QUERY_OPS, trials=2
            )
            add_lfns = [f"sc-add{num_shards}-{i}" for i in range(ADD_OPS)]
            add_rates[num_shards] = combined_rate(
                smap,
                LoadDriver.add_op(add_lfns, lambda lfn: f"pfn://{lfn}"),
                ADD_OPS,
            )
        finally:
            stop_cluster(servers)

    # --- aggregate query rate vs mirrors per shard (2 shards fixed) ---
    mirror_rates: dict[int, float] = {}
    for num_mirrors in MIRROR_COUNTS:
        servers, smap, lfns = make_cluster(2, num_mirrors, entries)
        try:
            probe = [lfns[rng.randrange(len(lfns))] for _ in range(2000)]
            mirror_rates[num_mirrors] = combined_rate(
                smap, LoadDriver.query_op(probe), QUERY_OPS, trials=2
            )
        finally:
            stop_cluster(servers)

    # --- failover: kill every mirror of every shard, reads must continue ---
    servers, smap, lfns = make_cluster(2, 1, entries)
    try:
        for shard in smap.shards:
            for mirror in smap.mirrors_of(shard):
                servers[mirror].stop()
        cc = CombinedClient(smap, rng=random.Random(SEED))
        failover_reads = 0
        for lfn in lfns[:200]:
            assert cc.get_mappings(lfn) == [f"pfn://{lfn}"]
            failover_reads += 1
        health = cc.health()
        failovers = sum(
            h["failures"]
            for name, h in health.items()
            if name not in smap.shards
        )
        assert failovers > 0, "expected recorded mirror failovers"
        for name in smap.shards:
            assert health[name]["healthy"], f"master {name} marked unhealthy"
        cc.close()

        # Writes sent directly to a mirror are rejected with a typed error
        # (mirror of shard 0 is stopped; build a fresh one to probe).
        mirror_name = smap.mirrors_of(smap.shards[0])[0]
        servers[mirror_name] = RLSServer(
            ServerConfig(
                name=mirror_name,
                role=ServerRole.LRC,
                mirror_of=smap.shards[0],
                cluster=smap,
            )
        ).start()
        try:
            connect(mirror_name).create("sc-ro-probe", "pfn://x")
            raise AssertionError("mirror accepted a write")
        except ReadOnlyCatalogError:
            pass
    finally:
        stop_cluster(servers)

    # pytest-benchmark timing sample: one small combined-client query run.
    servers, smap, lfns = make_cluster(2, 0, 2_000)
    try:
        benchmark.pedantic(
            lambda: combined_rate(smap, LoadDriver.query_op(lfns[:500]), 300),
            rounds=2,
            iterations=1,
        )
    finally:
        stop_cluster(servers)

    speedup2 = query_rates[2] / query_rates[1]
    rows = [
        [
            n,
            f"{query_rates[n]:.0f}",
            f"{query_rates[n] / query_rates[1]:.2f}x",
            f"{add_rates[n]:.0f}",
            f"{add_rates[n] / add_rates[1]:.2f}x",
        ]
        for n in SHARD_COUNTS
    ]
    record_series(
        "Shard scale-out — aggregate ops/s through the combined client "
        f"({CLIENTS}x{THREADS} threads, {SERVICE_LATENCY * 1e3:.0f}ms "
        "modelled service time)",
        ["shards", "query/s", "speedup", "add/s", "speedup"],
        rows,
        notes=[
            f"{entries} entries ring-partitioned; mirrors at 2 shards: "
            + ", ".join(
                f"{m} mirrors -> {mirror_rates[m]:.0f}/s"
                for m in MIRROR_COUNTS
            ),
            f"failover: {failover_reads} reads served by masters with every "
            "mirror down, 0 errors",
        ],
    )

    write_bench_artifact(
        "shard_scaleout",
        series={
            "cluster.query_rate_vs_shards": [
                [n, query_rates[n]] for n in SHARD_COUNTS
            ],
            "cluster.add_rate_vs_shards": [
                [n, add_rates[n]] for n in SHARD_COUNTS
            ],
            "cluster.query_rate_vs_mirrors": [
                [m, mirror_rates[m]] for m in MIRROR_COUNTS
            ],
            "cluster.query_speedup_vs_shards": [
                [n, query_rates[n] / query_rates[1]] for n in SHARD_COUNTS
            ],
        },
        meta={
            "entries": entries,
            "service_latency": SERVICE_LATENCY,
            "clients": CLIENTS,
            "threads_per_client": THREADS,
            "x_axis": "shards (mirrors series: mirrors per shard at 2 shards)",
            "failover_reads": failover_reads,
        },
        seed=SEED,
    )

    assert speedup2 >= MIN_SPEEDUP_2_SHARDS, (
        f"2-shard query speedup {speedup2:.2f}x below "
        f"{MIN_SPEEDUP_2_SHARDS}x"
    )
    # Sharding must also scale writes, and mirrors must add read capacity.
    assert add_rates[2] > add_rates[1]
    assert mirror_rates[2] > mirror_rates[0]
