"""SLO burn-rate bench: fast-burn alerting under injected shard faults.

Not a paper figure — the paper reports operation rates under load
(Figs. 4-6); this bench validates the *operational* layer on top: when
one shard of a 2-shard + mirrors cluster starts failing every query, the
multi-window multi-burn-rate alerting must fire the fast (critical) page
on that shard, and must stay quiet both on the healthy shard and on an
identical fault-free baseline run.

Runs on the deterministic simulation kernel
(:func:`repro.sim.cluster_sim.cluster_experiment`): virtual time, so a
15-minute incident replays in milliseconds and the burn arithmetic is
free of wall-clock noise.  The recorded
``slo.burn_rate{class=query,shard=...,window=fast}`` series uses the
same key the live :class:`~repro.obs.slo.SLIRecorder` gauges, and the
:func:`repro.obs.analyze.analyze_store` burn detector must flag it.

Artifact (``BENCH_slo_overload.json``): burn-rate and availability
trajectories for both runs, plus the alerts that fired.
"""

from __future__ import annotations

from benchmarks.common import record_series, write_bench_artifact
from repro.obs.analyze import analyze_store
from repro.sim.cluster_sim import cluster_experiment
from repro.testing.faults import FailureSchedule

SHARDS = 2
MIRRORS_PER_SHARD = 1
CLIENTS = 8
#: Modelled per-query service time; only the *ratio* of failing to total
#: traffic matters to the burn arithmetic, so a coarse grain keeps the
#: event count (and CI wall time) small.
SERVICE_TIME = 0.02
DURATION = 600.0
#: The injected outage: every query against FAULT_SHARD fails from here on.
FAULT_AFTER = 200.0
FAULT_SHARD = "shard0"
SEED = 7


def run_pair():
    """(baseline, faulted) cluster_experiment results, same seed/topology."""
    baseline = cluster_experiment(
        SHARDS,
        mirrors_per_shard=MIRRORS_PER_SHARD,
        num_clients=CLIENTS,
        service_time=SERVICE_TIME,
        duration=DURATION,
        seed=SEED,
    )
    faulted = cluster_experiment(
        SHARDS,
        mirrors_per_shard=MIRRORS_PER_SHARD,
        num_clients=CLIENTS,
        service_time=SERVICE_TIME,
        duration=DURATION,
        faults=FailureSchedule.always(),
        fault_shard=FAULT_SHARD,
        fault_after=FAULT_AFTER,
        seed=SEED,
    )
    return baseline, faulted


def bench_slo_overload(benchmark):
    baseline, faulted = run_pair()

    # --- baseline: no faults -> no alerts, no burn detections ---
    assert baseline.queries_failed == 0
    assert baseline.slo_alerts == [], baseline.slo_alerts
    base_burn = [
        d for d in analyze_store(baseline.store) if d.kind == "slo_burn"
    ]
    assert base_burn == [], base_burn

    # --- faulted: the fast (critical) page fires on the dying shard ---
    assert faulted.queries_failed > 0
    fast_alerts = [
        a for a in faulted.slo_alerts
        if a["window"] == "fast" and a["shard"] == FAULT_SHARD
    ]
    assert fast_alerts, f"no fast-burn alert: {faulted.slo_alerts}"
    assert all(a["severity"] == "critical" for a in fast_alerts)
    # ...and only there: the healthy shard pages nobody.
    assert all(a["shard"] == FAULT_SHARD for a in faulted.slo_alerts), (
        faulted.slo_alerts
    )
    detections = [
        d for d in analyze_store(faulted.store) if d.kind == "slo_burn"
    ]
    assert detections, "analyze_store missed the recorded burn series"
    assert any(d.severity == "critical" for d in detections)
    assert all(
        FAULT_SHARD in d.details.get("series", "") for d in detections
    ), detections

    # pytest-benchmark timing sample: one full paired simulation.
    benchmark.pedantic(run_pair, rounds=1, iterations=1)

    burn_series = faulted.store.series(
        f"slo.burn_rate{{class=query,shard={FAULT_SHARD},window=fast}}"
    )
    peak_burn = max(v for _, v in burn_series.points())
    record_series(
        "SLO burn under a shard outage — fast window burn rate "
        f"({SHARDS} shards x {MIRRORS_PER_SHARD} mirrors, "
        f"{FAULT_SHARD} fails all queries after t={FAULT_AFTER:g}s)",
        ["run", "completed", "failed", "alerts", "peak burn"],
        [
            ["baseline", baseline.queries_completed, 0, 0, "0.00x"],
            [
                "faulted",
                faulted.queries_completed,
                faulted.queries_failed,
                len(faulted.slo_alerts),
                f"{peak_burn:.0f}x",
            ],
        ],
        notes=[
            "alert rule: burn >= 14.4 over 5m AND 1h windows pages "
            "critical; >= 1.0 over 6h AND 3d warns",
            "analyze_store detections on the faulted run: "
            + ", ".join(f"{d.kind}/{d.severity}" for d in detections),
        ],
    )

    def burn_points(result, shard):
        series = result.store.series(
            f"slo.burn_rate{{class=query,shard={shard},window=fast}}"
        )
        return [[t, v] for t, v in series.points()]

    def avail_points(result, shard):
        series = result.store.series(
            f"slo.availability{{class=query,shard={shard}}}"
        )
        return [[t, v] for t, v in series.points()]

    write_bench_artifact(
        "slo_overload",
        series={
            "slo.burn_fast.baseline.shard0": burn_points(baseline, "shard0"),
            "slo.burn_fast.faulted.shard0": burn_points(faulted, "shard0"),
            "slo.burn_fast.faulted.shard1": burn_points(faulted, "shard1"),
            "slo.availability.faulted.shard0": avail_points(
                faulted, "shard0"
            ),
        },
        meta={
            "runs": {
                "baseline": {
                    "queries_completed": baseline.queries_completed,
                    "queries_failed": baseline.queries_failed,
                    "alerts": baseline.slo_alerts,
                },
                "faulted": {
                    "queries_completed": faulted.queries_completed,
                    "queries_failed": faulted.queries_failed,
                    "alerts": faulted.slo_alerts,
                    "fault_shard": FAULT_SHARD,
                    "fault_after": FAULT_AFTER,
                },
            },
            "duration": DURATION,
            "peak_burn_fast": peak_burn,
            "detections": [
                {
                    "kind": d.kind,
                    "severity": d.severity,
                    "series": d.details.get("series"),
                }
                for d in detections
            ],
            "x_axis": "virtual seconds",
        },
        seed=SEED,
    )
