"""Staleness / recovery ablations on the whole-deployment simulator.

Quantifies two claims the paper makes but never measures:

* §3.3: "the use of immediate mode is almost always advantageous" — we
  measure the staleness (wrong-RLI-answer fraction) vs. wire-traffic
  trade-off for full-only, immediate, and Bloom update modes over four
  simulated hours of catalog churn;
* §2: "If an RLI fails and later resumes operation, its state can be
  reconstructed using soft state updates" — we crash the index and time
  the rebuild as a function of the full-update interval.
"""

from __future__ import annotations

from benchmarks.common import record_series
from repro.sim.rls_sim import recovery_experiment, staleness_experiment

MODES = ("full-only", "immediate", "bloom")


def bench_staleness_vs_update_mode(benchmark):
    results = {
        mode: staleness_experiment(
            mode,
            catalog_size=5_000,
            churn_per_sec=2.0,
            duration=4 * 3600.0,
        )
        for mode in MODES
    }

    benchmark.pedantic(
        lambda: staleness_experiment(
            "immediate", catalog_size=1_000, duration=1800.0
        ),
        rounds=3,
        iterations=1,
    )

    rows = [
        [
            mode,
            f"{r.stale_fraction * 100:.1f}%",
            f"{r.miss_fraction * 100:.1f}%",
            f"{r.ghost_fraction * 100:.1f}%",
            f"{r.bytes_sent / 1e6:.1f} MB",
            r.updates_sent,
        ]
        for mode, r in results.items()
    ]
    record_series(
        "Staleness ablation — 4 simulated hours, 5k-entry catalog, "
        "2 changes/s churn",
        ["mode", "stale answers", "misses", "ghosts", "traffic", "updates"],
        rows,
        notes=[
            "full-only: deletions linger until the soft-state timeout "
            "(ghosts dominate); immediate mode propagates them in ~30 s; "
            "bloom matches immediate's freshness at a fraction of the bytes",
        ],
    )

    assert results["immediate"].stale_fraction < 0.5 * results[
        "full-only"
    ].stale_fraction
    assert results["bloom"].bytes_sent < results["immediate"].bytes_sent


def bench_recovery_vs_full_interval(benchmark):
    intervals = (120.0, 300.0, 600.0, 1200.0)
    results = {
        interval: recovery_experiment(
            full_interval=interval, num_lrcs=4, catalog_size=2_000
        )
        for interval in intervals
    }

    benchmark.pedantic(
        lambda: recovery_experiment(full_interval=300.0, catalog_size=500),
        rounds=3,
        iterations=1,
    )

    rows = [
        [f"{interval:.0f}s", f"{results[interval].recovery_time:.0f}s"]
        for interval in intervals
    ]
    record_series(
        "Soft-state recovery — RLI crash to 99% index coverage",
        ["full-update interval", "recovery time"],
        rows,
        notes=[
            "recovery completes when the last (phase-shifted) LRC pushes "
            "its next full update: bounded by one full interval, no "
            "recovery protocol needed — the §2 soft-state design claim",
        ],
    )

    for interval in intervals:
        assert results[interval].recovery_time <= interval + 15.0
    assert results[1200.0].recovery_time > results[120.0].recovery_time
