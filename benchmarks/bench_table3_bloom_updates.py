"""Table 3: Bloom filter update performance (WAN).

Paper setup: single client pushing Bloom updates from Los Angeles to an
RLI in Chicago (63.8 ms mean RTT), filter sized at ~10 bits/mapping.
Columns: soft-state update time (WAN), one-time filter generation time,
filter size in bits.

Update times come from the WAN simulation; generation times are REAL
measurements of this implementation's Bloom construction (extrapolated
linearly from a sample at reduced scale).
"""

from __future__ import annotations

from benchmarks.common import SCALE, record_series, write_bench_artifact
from repro.sim.models import bloom_table3_row

ROWS = [
    # (entries, paper update s, paper generation s, paper bits)
    (100_000, "<1", 2.0, 1_000_000),
    (1_000_000, 1.67, 18.4, 10_000_000),
    (5_000_000, 6.8, 91.6, 50_000_000),
]


def bench_table3_bloom_update_performance(benchmark):
    generation_sample = max(20_000, int(200_000 * SCALE * 10))
    measured = [
        bloom_table3_row(entries, generation_sample=generation_sample)
        for entries, *_ in ROWS
    ]

    benchmark.pedantic(
        lambda: bloom_table3_row(100_000, measure_generation=False),
        rounds=3,
        iterations=1,
    )

    table = []
    for (entries, p_upd, p_gen, p_bits), row in zip(ROWS, measured):
        table.append(
            [
                f"{entries:,}",
                p_upd,
                f"{row.update_time:.2f}",
                p_gen,
                f"{row.generation_time:.1f}",
                f"{p_bits:,}",
                f"{row.filter_bits:,}",
            ]
        )
    record_series(
        "Table 3 — Bloom filter update performance (single WAN client)",
        [
            "mappings",
            "paper update(s)", "ours update(s)",
            "paper gen(s)", "ours gen(s)",
            "paper bits", "ours bits",
        ],
        table,
        notes=[
            "update times simulated (63.8 ms RTT WAN, 64 KiB TCP window); "
            f"generation measured for real from a {generation_sample:,}-name "
            "sample and extrapolated linearly",
            "our generation is faster than the paper's 2003 testbed "
            "(NumPy bit ops vs their C implementation on a 547 MHz P-III)",
        ],
    )

    write_bench_artifact(
        "table3",
        series={
            "bloom.update_time": [
                [entries, row.update_time]
                for (entries, *_), row in zip(ROWS, measured)
            ],
            "bloom.generation_time": [
                [entries, row.generation_time]
                for (entries, *_), row in zip(ROWS, measured)
            ],
        },
        meta={
            "filter_bits": {
                str(entries): row.filter_bits
                for (entries, *_), row in zip(ROWS, measured)
            },
            "generation_sample": generation_sample,
            "x_axis": "mappings",
        },
    )

    # Shape/values: filter bits identical to the paper; update times within
    # ~25% of the paper's; generation grows ~linearly with entries.
    assert [r.filter_bits for r in measured] == [r[3] for r in ROWS]
    assert measured[0].update_time < 1.0
    assert abs(measured[1].update_time - 1.67) < 0.5
    assert abs(measured[2].update_time - 6.8) < 1.7
    assert measured[2].generation_time > 3 * measured[1].generation_time
