"""Topology comparison bench (Giggle configurations, framework paper [1]).

Compares the canonical RLS index structures on equal workloads: update
fan-out cost (how much soft-state traffic a change generates) and query
availability under RLI failure.  Not a paper figure — an ablation of the
"variety of index structures ... with different performance and
reliability characteristics" the paper's §2 describes.
"""

from __future__ import annotations

from benchmarks.common import record_series, scaled
from repro.core import topology
from repro.core.client import connect
from repro.core.errors import MappingNotFoundError
from repro.workload.names import sequential_names


def _load_and_push(deployment, entries: int) -> dict:
    """Load each LRC with entries, push, and collect traffic stats."""
    names_per_lrc = {}
    for i, lrc in enumerate(deployment.lrcs):
        lfns = sequential_names(entries, prefix=f"t{i}-")
        assert lrc.lrc is not None
        lrc.lrc.bulk_load((lfn, f"pfn://{lfn}") for lfn in lfns)
        names_per_lrc[lrc.config.name] = lfns
    deployment.push_all()
    stats = {"names_sent": 0, "bloom_bytes": 0, "updates": 0}
    for lrc in deployment.lrcs:
        s = lrc.update_manager.stats
        stats["names_sent"] += s.names_sent
        stats["bloom_bytes"] += s.bytes_sent_bloom
        stats["updates"] += s.full_updates + s.bloom_updates
    return {"names": names_per_lrc, "stats": stats}


def _query_survives_failure(deployment, probe_lfn: str) -> bool:
    """Kill the first RLI; can any surviving RLI still answer?"""
    deployment.rlis[0].stop()
    for rli in deployment.rlis[1:]:
        try:
            client = connect(rli.config.name)
        except Exception:
            continue
        try:
            if client.rli_query(probe_lfn):
                return True
        except MappingNotFoundError:
            continue
        finally:
            client.close()
    return False


def bench_topology_comparison(benchmark):
    entries = scaled(20_000, minimum=500)
    rows = []

    # --- single RLI, uncompressed ---
    dep = topology.single_rli("bt-single", num_lrcs=3)
    loaded = _load_and_push(dep, entries)
    probe = loaded["names"]["bt-single-lrc0"][0]
    survives = _query_survives_failure(dep, probe)
    rows.append(
        [
            "single RLI (uncompressed)",
            f"{loaded['stats']['names_sent'] * 80:,}",
            loaded["stats"]["updates"],
            "no" if not survives else "yes",
        ]
    )
    dep.stop()

    # --- redundant: 2 RLIs, bloom ---
    dep = topology.redundant("bt-red", num_lrcs=3, num_rlis=2, bloom=True)
    loaded = _load_and_push(dep, entries)
    probe = loaded["names"]["bt-red-lrc0"][0]
    survives = _query_survives_failure(dep, probe)
    rows.append(
        [
            "redundant 2x RLI (bloom)",
            f"{loaded['stats']['bloom_bytes']:,}",
            loaded["stats"]["updates"],
            "yes" if survives else "no",
        ]
    )
    dep.stop()

    # --- partitioned by namespace ---
    dep = topology.partitioned_by_namespace(
        "bt-part",
        num_lrcs=3,
        partitions=[("even", "[02468]$"), ("odd", "[13579]$")],
    )
    loaded = _load_and_push(dep, entries)
    probe = loaded["names"]["bt-part-lrc0"][0]
    survives = _query_survives_failure(dep, probe)
    rows.append(
        [
            "partitioned 2x RLI (uncompressed)",
            f"{loaded['stats']['names_sent'] * 80:,}",
            loaded["stats"]["updates"],
            "partial",  # only the surviving partition answers
        ]
    )
    dep.stop()

    benchmark.pedantic(
        lambda: _load_and_push(
            topology.single_rli("bt-bench", num_lrcs=1), max(entries // 4, 100)
        ),
        rounds=1,
        iterations=1,
    )
    # bench deployment cleanup
    from repro.net.transport import LocalTransport

    try:
        LocalTransport.lookup("bt-bench-rli").close()
        LocalTransport.lookup("bt-bench-lrc0").close()
    except Exception:
        pass

    record_series(
        "Topologies — update traffic and failure behaviour "
        f"({entries} entries x 3 LRCs)",
        ["topology", "update bytes", "updates sent", "survives RLI loss"],
        rows,
        notes=[
            "Giggle's trade-off: redundancy multiplies update traffic but "
            "keeps the index available; bloom compression makes the "
            "redundancy affordable",
        ],
    )

    # Redundant-bloom must be cheaper on the wire than single-uncompressed
    # despite updating twice as many RLIs.
    single_bytes = int(rows[0][1].replace(",", ""))
    redundant_bytes = int(rows[1][1].replace(",", ""))
    assert redundant_bytes < single_bytes
