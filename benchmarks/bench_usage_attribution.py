"""Heavy-hitter attribution bench: Zipf-skewed multi-principal workload.

Not a paper figure — the paper measures aggregate rates; this bench
validates the *accounting* layer on top (the prerequisite for per-class
admission control, ROADMAP item 4): when several principals hit one
server with Zipf-skewed traffic, the per-principal accountant and both
space-saving sketches must rank the injected heavy hitter — and its LFN
namespace — first, within the sketch's documented N/capacity error.

The workload runs against a real in-process server: each principal opens
its own connection (the ``principal`` Hello attribute carries the
declared identity), issues its share of adds into its own
``/<principal>/data/`` namespace, and the final ``admin_usage`` payload
is checked end to end — negotiation, request context, accountant,
sketches, RPC read-out.

Artifact (``BENCH_usage_attribution.json``): per-principal request
totals, both sketch rankings, and the add rate under accounting.
"""

from __future__ import annotations

import time

from benchmarks.common import record_series, scaled, write_bench_artifact
from repro.core.client import connect
from repro.core.config import ServerConfig
from repro.core.server import RLSServer

#: Principals, heaviest first; the workload is Zipf over this list.
PRINCIPALS = tuple(
    f"{name}" for name in (
        "cms-prod", "atlas-merge", "lhcb-user", "alice-scan",
        "dune-cal", "ligo-rerun", "ops-probe", "test-harness",
    )
)
HOT_PRINCIPAL = PRINCIPALS[0]
HOT_PREFIX = f"/{HOT_PRINCIPAL}/data"
#: Zipf exponent: weight of principal at rank r is 1/(r+1)**ZIPF_S.
ZIPF_S = 1.2
SEED = 23


def principal_shares(total_ops: int) -> dict[str, int]:
    """Zipf-proportional op counts (largest remainder, deterministic)."""
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(PRINCIPALS))]
    scale = total_ops / sum(weights)
    quotas = [w * scale for w in weights]
    counts = [int(q) for q in quotas]
    while sum(counts) < total_ops:
        i = max(range(len(counts)), key=lambda j: quotas[j] - counts[j])
        counts[i] += 1
    return dict(zip(PRINCIPALS, counts))


def run_workload():
    """(admin_usage payload, per-principal op counts, adds/s)."""
    total_ops = scaled(20_000, minimum=800)
    shares = principal_shares(total_ops)
    server = RLSServer(
        ServerConfig(name="usage-bench", flush_on_commit=False)
    ).start()
    try:
        start = time.perf_counter()
        for principal, count in shares.items():
            client = connect("usage-bench", principal=principal)
            try:
                for i in range(count):
                    client.create(
                        f"/{principal}/data/f{i:06d}",
                        f"pfn://{principal}.example/f{i:06d}",
                    )
            finally:
                client.close()
        elapsed = time.perf_counter() - start
        reader = connect("usage-bench")
        try:
            payload = reader.usage()
        finally:
            reader.close()
    finally:
        server.stop()
    return payload, shares, total_ops / elapsed


def bench_usage_attribution(benchmark):
    payload, shares, rate = run_workload()

    # --- the injected heavy hitter ranks first in both sketches ---
    top_principals = payload["top_principals"]
    assert top_principals, "principal sketch is empty"
    assert top_principals[0]["principal"] == HOT_PRINCIPAL, top_principals[:3]
    top_prefixes = payload["top_prefixes"]
    assert top_prefixes, "prefix sketch is empty"
    assert top_prefixes[0]["prefix"] == HOT_PREFIX, top_prefixes[:3]

    # --- exact per-principal totals match what each client issued ---
    # (every add is one accounted request; the reader's admin traffic
    # lands under its own principal, not these).
    for principal, count in shares.items():
        classes = payload["principals"].get(principal, {})
        accounted = sum(
            row.get("requests", 0.0) for row in classes.values()
        )
        assert accounted == count, (principal, accounted, count)

    # --- sketch error bound: count overestimates by at most N/capacity ---
    sketch = payload["sketch"]
    bound = sketch["offered"] / sketch["capacity"]
    assert all(row["error"] <= bound for row in top_principals)

    # pytest-benchmark timing sample: one full skewed workload.
    benchmark.pedantic(run_workload, rounds=1, iterations=1)

    record_series(
        "Per-principal attribution under Zipf skew "
        f"({len(PRINCIPALS)} principals, s={ZIPF_S})",
        ["principal", "ops issued", "sketch count", "sketch error"],
        [
            [
                row["principal"],
                shares.get(row["principal"], 0),
                row["count"],
                row["error"],
            ]
            for row in top_principals[:5]
        ],
        notes=[
            f"hot prefix {HOT_PREFIX} ranked first of "
            f"{len(top_prefixes)} tracked prefixes",
            f"{rate:.0f} adds/s with accounting enabled",
        ],
    )
    write_bench_artifact(
        "usage_attribution",
        series={
            "usage.requests_by_rank": [
                [float(rank), float(row["count"])]
                for rank, row in enumerate(top_principals)
            ],
            "usage.prefix_heat_by_rank": [
                [float(rank), float(row["count"])]
                for rank, row in enumerate(top_prefixes)
            ],
            "usage.add_rate": [[0.0, rate]],
        },
        meta={
            "principals": dict(shares),
            "hot_principal": HOT_PRINCIPAL,
            "hot_prefix": HOT_PREFIX,
            "zipf_s": ZIPF_S,
            "top_principals": top_principals[:5],
            "top_prefixes": top_prefixes[:5],
            "sketch": payload["sketch"],
            "x_axis": "sketch rank",
        },
        seed=SEED,
    )
