"""Assert that disabled instrumentation and background scraping are cheap.

Two budgets, both gated at ``MAX_OVERHEAD_FRACTION``:

1. **Disabled instrumentation.**  Every hot path carries metric and
   tracing hooks; with no registry and no tracer installed those hooks
   degenerate into attribute checks and no-op method calls.  Quantified
   on the tightest loop in the system — LRC adds against an in-memory
   engine — against the measured per-add time.
2. **Background scraping.**  A :class:`~repro.obs.timeseries.Scraper`
   attached to a live registry snapshots and subtracts once per interval;
   that work, amortized over the default scrape interval, must stay under
   the budget relative to a core saturated by the tight add loop.

Run directly (CI does)::

    PYTHONPATH=src python benchmarks/check_overhead.py

The comparisons are deterministic by construction: rather than racing two
separately-timed loops (noisy on shared CI runners), each measures unit
costs in isolation and compares the products.
"""

from __future__ import annotations

import sys
import time

from repro.core.lrc import LocalReplicaCatalog
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection
from repro.obs import tracing
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.timeseries import DEFAULT_INTERVAL, Scraper

#: Disabled instrumentation must cost less than this fraction of an add.
MAX_OVERHEAD_FRACTION = 0.05

#: Upper bound on no-op hook invocations per lrc.add_mapping call:
#: counter incs (LRC + WAL + queue gauge), tracing.active() checks in the
#: engine/WAL, the RPC-layer latency ``noop`` test, plus the query-level
#: observability hooks — per statement a cache hit/miss counter inc and a
#: ``profiler.enabled`` check, per latch/WAL-lock acquisition a histogram
#: ``noop`` check (an add touches t_lfn/t_pfn/t_map several times).
#: Counted generously; overestimating only makes the check stricter.
HOOKS_PER_ADD = 40

ADDS = 3_000
NOOP_CALLS = 200_000


def time_adds(n: int) -> float:
    """Seconds per add on a bare LRC with no registry installed."""
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    lrc = LocalReplicaCatalog(Connection(engine, "ovh"), name="ovh")
    lrc.init_schema()
    lfns = [f"ovh-{i}" for i in range(n)]
    start = time.perf_counter()
    for lfn in lfns:
        lrc.create_mapping(lfn, f"pfn://{lfn}")
    return (time.perf_counter() - start) / n


def time_noop_hook(n: int) -> float:
    """Seconds per disabled-instrumentation hook invocation."""
    counter = NULL_REGISTRY.counter("x")
    histogram = NULL_REGISTRY.histogram("y")
    active = tracing.active
    start = time.perf_counter()
    for _ in range(n):
        counter.inc()
        if not histogram.noop:
            histogram.observe(0.0)
        if active():
            pass
    return (time.perf_counter() - start) / (3 * n)


#: Upper bound on disabled-profiler guards per lrc.add_mapping call: one
#: ``profiler.enabled`` check per statement (an uncached add runs up to
#: ~8 statements across t_lfn/t_pfn/t_map) plus one TimedLatch no-op
#: acquire/release per table-latch and WAL-lock acquisition.
PROFILER_GUARDS_PER_ADD = 24


def time_profiler_guard(n: int) -> float:
    """Seconds per disabled query-profiler guard.

    The query-observability layer's whole disabled-path cost is (a) the
    ``profiler.enabled`` attribute check in ``Database.execute`` and (b)
    the ``hist.noop`` check inside a :class:`TimedLatch` acquire; measure
    one of each per iteration, in isolation.
    """
    from repro.db.profiler import QueryProfiler, TimedLatch

    profiler = QueryProfiler()
    assert not profiler.enabled, "profiler must default to disabled"
    latch = TimedLatch()
    start = time.perf_counter()
    for _ in range(n):
        if profiler.enabled:
            pass
        with latch:
            pass
    return (time.perf_counter() - start) / (2 * n)


SCRAPE_ROUNDS = 50


def time_scrape(rounds: int) -> float:
    """Seconds per scrape round over a registry a real add loop populated.

    Builds an instrumented LRC, runs the tight add loop against it so the
    registry holds representative counters/gauges/histograms, then times
    ``Scraper.scrape_once`` (snapshot + subtraction + series appends).
    """
    registry = MetricsRegistry()
    engine = MySQLEngine(
        flush_on_commit=False, sync_latency=0.0, metrics=registry
    )
    lrc = LocalReplicaCatalog(
        Connection(engine, "ovh-scrape"), name="ovh-scrape", metrics=registry
    )
    lrc.init_schema()
    for i in range(ADDS):
        lrc.create_mapping(f"ovh-s-{i}", f"pfn://ovh-s-{i}")
    scraper = Scraper(registry.snapshot, interval=DEFAULT_INTERVAL)
    scraper.scrape_once(now=0.0)  # priming scrape
    start = time.perf_counter()
    for i in range(rounds):
        scraper.scrape_once(now=float(i + 1) * DEFAULT_INTERVAL)
    return (time.perf_counter() - start) / rounds


def main() -> int:
    assert not tracing.active(), "overhead check requires no tracer installed"
    per_add = time_adds(ADDS)
    per_hook = time_noop_hook(NOOP_CALLS)
    overhead = per_hook * HOOKS_PER_ADD
    fraction = overhead / per_add
    print(f"per add:            {per_add * 1e6:8.2f} us")
    print(f"per no-op hook:     {per_hook * 1e9:8.2f} ns")
    print(f"hooks per add:      {HOOKS_PER_ADD:5d} (upper bound)")
    print(
        f"overhead per add:   {overhead * 1e6:8.3f} us "
        f"({fraction * 100:.3f}% of add; limit "
        f"{MAX_OVERHEAD_FRACTION * 100:.0f}%)"
    )
    if fraction >= MAX_OVERHEAD_FRACTION:
        print("FAIL: disabled instrumentation exceeds the overhead budget")
        return 1
    print("OK: disabled instrumentation is within the overhead budget")

    # Query profiler: disabled by default on bare engines; its guards
    # (enabled flag + latch noop checks) get their own budget line.
    per_guard = time_profiler_guard(NOOP_CALLS)
    guard_overhead = per_guard * PROFILER_GUARDS_PER_ADD
    guard_fraction = guard_overhead / per_add
    print(f"per profiler guard: {per_guard * 1e9:8.2f} ns")
    print(
        f"profiler overhead:  {guard_overhead * 1e6:8.3f} us per add "
        f"({guard_fraction * 100:.3f}% of add; limit "
        f"{MAX_OVERHEAD_FRACTION * 100:.0f}%)"
    )
    if guard_fraction >= MAX_OVERHEAD_FRACTION:
        print("FAIL: disabled query profiler exceeds the overhead budget")
        return 1
    print("OK: disabled query profiler is within the overhead budget")

    # Background scraping: one scrape round per DEFAULT_INTERVAL steals
    # per_scrape/DEFAULT_INTERVAL of the core the add loop saturates.
    per_scrape = time_scrape(SCRAPE_ROUNDS)
    scrape_fraction = per_scrape / DEFAULT_INTERVAL
    adds_lost = per_scrape / per_add
    print(f"per scrape round:   {per_scrape * 1e6:8.2f} us "
          f"(~{adds_lost:.1f} adds of work)")
    print(
        f"scrape duty cycle:  {scrape_fraction * 100:8.3f}% of a "
        f"{DEFAULT_INTERVAL:g}s interval (limit "
        f"{MAX_OVERHEAD_FRACTION * 100:.0f}%)"
    )
    if scrape_fraction >= MAX_OVERHEAD_FRACTION:
        print("FAIL: background scraping exceeds the overhead budget")
        return 1
    print("OK: background scraping is within the overhead budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
