"""Assert that disabled instrumentation and background scraping are cheap.

Two budgets, both gated at ``MAX_OVERHEAD_FRACTION``:

1. **Disabled instrumentation.**  Every hot path carries metric and
   tracing hooks; with no registry and no tracer installed those hooks
   degenerate into attribute checks and no-op method calls.  Quantified
   on the tightest loop in the system — LRC adds against an in-memory
   engine — against the measured per-add time.
2. **Background scraping.**  A :class:`~repro.obs.timeseries.Scraper`
   attached to a live registry snapshots and subtracts once per interval;
   that work, amortized over the default scrape interval, must stay under
   the budget relative to a core saturated by the tight add loop.

Run directly (CI does)::

    PYTHONPATH=src python benchmarks/check_overhead.py

The comparisons are deterministic by construction: rather than racing two
separately-timed loops (noisy on shared CI runners), each measures unit
costs in isolation and compares the products.
"""

from __future__ import annotations

import sys
import time

from repro.core.lrc import LocalReplicaCatalog
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection
from repro.obs import tracing
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.timeseries import DEFAULT_INTERVAL, Scraper

#: Disabled instrumentation must cost less than this fraction of an add.
MAX_OVERHEAD_FRACTION = 0.05

#: Upper bound on no-op hook invocations per lrc.add_mapping call:
#: counter incs (LRC + WAL + queue gauge), tracing.active() checks in the
#: engine/WAL, the RPC-layer latency ``noop`` test, plus the query-level
#: observability hooks — per statement a cache hit/miss counter inc and a
#: ``profiler.enabled`` check, per latch/WAL-lock acquisition a histogram
#: ``noop`` check (an add touches t_lfn/t_pfn/t_map several times), and
#: the request-context ``getattr`` probes on the WAL/profiler paths
#: (``reqctx.add_wal_bytes``/``reqctx.current`` cost one thread-local
#: getattr each when no request context is active).
#: Counted generously; overestimating only makes the check stricter.
HOOKS_PER_ADD = 44

ADDS = 3_000
NOOP_CALLS = 200_000


def time_adds(n: int) -> float:
    """Seconds per add on a bare LRC with no registry installed."""
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    lrc = LocalReplicaCatalog(Connection(engine, "ovh"), name="ovh")
    lrc.init_schema()
    lfns = [f"ovh-{i}" for i in range(n)]
    start = time.perf_counter()
    for lfn in lfns:
        lrc.create_mapping(lfn, f"pfn://{lfn}")
    return (time.perf_counter() - start) / n


def time_noop_hook(n: int) -> float:
    """Seconds per disabled-instrumentation hook invocation."""
    counter = NULL_REGISTRY.counter("x")
    histogram = NULL_REGISTRY.histogram("y")
    active = tracing.active
    start = time.perf_counter()
    for _ in range(n):
        counter.inc()
        if not histogram.noop:
            histogram.observe(0.0)
        if active():
            pass
    return (time.perf_counter() - start) / (3 * n)


#: Upper bound on disabled-profiler guards per lrc.add_mapping call: one
#: ``profiler.enabled`` check per statement (an uncached add runs up to
#: ~8 statements across t_lfn/t_pfn/t_map) plus one TimedLatch no-op
#: acquire/release per table-latch and WAL-lock acquisition.
PROFILER_GUARDS_PER_ADD = 24


def time_profiler_guard(n: int) -> float:
    """Seconds per disabled query-profiler guard.

    The query-observability layer's whole disabled-path cost is (a) the
    ``profiler.enabled`` attribute check in ``Database.execute`` and (b)
    the ``hist.noop`` check inside a :class:`TimedLatch` acquire; measure
    one of each per iteration, in isolation.
    """
    from repro.db.profiler import QueryProfiler, TimedLatch

    profiler = QueryProfiler()
    assert not profiler.enabled, "profiler must default to disabled"
    latch = TimedLatch()
    start = time.perf_counter()
    for _ in range(n):
        if profiler.enabled:
            pass
        with latch:
            pass
    return (time.perf_counter() - start) / (2 * n)


USAGE_CALLS = 50_000


def time_usage_account(n: int) -> float:
    """Seconds per full request-accounting pass, in isolation.

    One enabled-accounting RPC pays: a thread-local context
    activate/deactivate pair, two ``perf_counter`` reads, a method
    classification, and one :meth:`UsageAccountant.account` call
    (cell update, counter incs, both sketch offers).  Measure the whole
    sequence per iteration against a warmed accountant, the way a busy
    connection replays one hot (principal, class) cell.
    """
    from repro.obs import reqctx
    from repro.obs.slo import classify_method
    from repro.obs.usage import UsageAccountant

    accountant = UsageAccountant()  # no registry: live-instrument floor
    lfns = [f"/grid/data/f{i:03d}" for i in range(100)]
    perf_counter = time.perf_counter
    start = perf_counter()
    for i in range(n):
        begin = perf_counter()
        costs = reqctx.activate("cms-prod")
        costs.rows_examined += 3
        costs.wal_bytes += 120
        reqctx.deactivate()
        accountant.account(
            "cms-prod",
            classify_method("lrc_add_mapping"),
            wall_time=perf_counter() - begin,
            rows_examined=costs.rows_examined,
            wal_bytes=costs.wal_bytes,
            lfn=lfns[i % len(lfns)],
        )
    return (perf_counter() - start) / n


CODEC_ROUNDS = 3_000
#: Requests per batch frame in the codec gate (matches the pipelined
#: hot path: UpdateManager chunks and CombinedClient scatters).
CODEC_BATCH = 16


def time_codec_roundtrip(rounds: int) -> float:
    """Seconds per request for a full wire round trip through the codec.

    Encodes a pipelined batch of representative requests into a reused
    frame buffer, decodes it back, then does the same for the response
    batch — the exact per-request serialization work a busy server
    connection performs.  This must stay a small fraction of the add it
    transports, or the RPC layer eats the gains of request batching.
    """
    from repro.net.messages import (
        Batch,
        Request,
        Response,
        encode_message_into,
        message_from_bytes,
    )

    requests = Batch(
        tuple(
            Request(
                "lrc_add_mapping",
                (f"lfn-{i:06d}", f"pfn://host.example/path/{i:06d}"),
                None,
                i + 1,
            )
            for i in range(CODEC_BATCH)
        )
    )
    responses = Batch(
        tuple(Response(True, None, "", "", i + 1) for i in range(CODEC_BATCH))
    )
    buf = bytearray()
    encode_message_into(buf, requests)
    req_frame = bytes(buf)
    buf.clear()
    encode_message_into(buf, responses)
    resp_frame = bytes(buf)
    message_from_bytes(req_frame)  # priming pass
    start = time.perf_counter()
    for _ in range(rounds):
        buf.clear()
        encode_message_into(buf, requests)
        message_from_bytes(req_frame)
        buf.clear()
        encode_message_into(buf, responses)
        message_from_bytes(resp_frame)
    return (time.perf_counter() - start) / (rounds * CODEC_BATCH)


SAMPLE_ROUNDS = 200

#: The wall-clock sampler gate runs at this rate (the documented
#: "diagnostics on" setting from docs/OPERATIONS.md).
SAMPLER_HZ = 25.0


def time_sampler_walk(rounds: int) -> tuple[float, int]:
    """(Seconds per frame-walk pass, threads walked) at a realistic
    thread population.

    Spins up a handful of registered busy threads so the sampler walks
    stacks comparable to a live server (RPC workers + updater + scraper),
    then times ``sample_once`` in isolation.  Duty cycle is the product
    walk_time x SAMPLER_HZ, the same figure the profiler self-reports as
    ``obs.profiler.duty_cycle``.
    """
    from repro.obs.profile import SamplingProfiler, register_thread
    import threading

    stop = threading.Event()

    def busy(role: str) -> None:
        register_thread(role)
        x = 0
        while not stop.is_set():
            x += 1

    threads = [
        threading.Thread(target=busy, args=("rpc.worker",), daemon=True)
        for _ in range(4)
    ]
    threads += [
        threading.Thread(target=busy, args=("updates",), daemon=True),
        threading.Thread(target=busy, args=("scraper",), daemon=True),
    ]
    for t in threads:
        t.start()
    profiler = SamplingProfiler(hz=SAMPLER_HZ)
    try:
        profiler.sample_once()  # priming pass
        start = time.perf_counter()
        for _ in range(rounds):
            profiler.sample_once()
        elapsed = time.perf_counter() - start
    finally:
        stop.set()
        for t in threads:
            t.join()
    return elapsed / rounds, len(profiler.profile().by_role())


def time_disabled_profiler_guard(n: int) -> float:
    """Seconds per ``profiler.enabled`` check on an hz=0 sampler.

    With ``profile_hz`` left at its default of 0 the server never starts
    the sampling thread; the *entire* residual cost is this property
    check at server start plus nothing on any hot path.  Gate it anyway
    so the no-op guard can never grow teeth.
    """
    from repro.obs.profile import SamplingProfiler

    profiler = SamplingProfiler(hz=0.0)
    assert not profiler.enabled, "sampler must default to disabled"
    start = time.perf_counter()
    for _ in range(n):
        if profiler.enabled:
            pass
    return (time.perf_counter() - start) / n


#: Partition-routing population for the route() budget: a namespace split
#: across this many RLI targets, each owning this many regex patterns.
ROUTE_TARGETS = 8
ROUTE_PATTERNS = 4
ROUTE_CALLS = 50_000


def time_partition_route(n: int) -> float:
    """Seconds per ``PartitionRouter.route`` call at realistic fan-out.

    ``route`` runs once per changed LFN on the update hot path, so its
    cost must stay a small fraction of the add that triggered it.  The
    compiled-alternation fast path turns the per-call work into one
    C-level search per target instead of targets x patterns Python-level
    ``any`` probes.
    """
    from repro.core.lrc import RLITarget
    from repro.core.partition import PartitionRouter

    targets = [
        RLITarget(
            name=f"rli-{t}",
            patterns=tuple(
                rf"^site{t}/dir{p}/run[0-9]+" for p in range(ROUTE_PATTERNS)
            ),
        )
        for t in range(ROUTE_TARGETS)
    ]
    router = PartitionRouter(targets)
    # Worst case for the alternation: an LFN matching no target forces
    # every branch of every combined pattern to be tried.
    lfns = [f"elsewhere/dir{i % 10}/run{i}" for i in range(100)]
    assert router.route(f"site3/dir1/run7") and not router.route(lfns[0])
    start = time.perf_counter()
    for i in range(n):
        router.route(lfns[i % len(lfns)])
    return (time.perf_counter() - start) / n


SLO_TICK_ROUNDS = 50

#: The SLI recorder gate amortizes over this interval (the documented
#: "SLO recorder on" setting from docs/OPERATIONS.md; the default
#: ``slo_tick_interval=0`` runs no thread at all).
SLO_TICK_INTERVAL = 10.0


def time_slo_tick(rounds: int) -> float:
    """Seconds per SLI-recorder tick over a populated registry.

    Builds the same instrumented add-loop registry as the scrape gate —
    plus per-method RPC counters/histograms, which is what the recorder
    actually classifies — then times :meth:`SLIRecorder.tick` (snapshot +
    delta + per-class classification + gauge export) in isolation.
    """
    from repro.obs.slo import OPERATION_CLASSES, SLIRecorder

    registry = MetricsRegistry()
    engine = MySQLEngine(
        flush_on_commit=False, sync_latency=0.0, metrics=registry
    )
    lrc = LocalReplicaCatalog(
        Connection(engine, "ovh-slo"), name="ovh-slo", metrics=registry
    )
    lrc.init_schema()
    methods = (
        "lrc_create_mapping", "lrc_get_mappings", "lrc_bulk_query",
        "lrc_query_wildcard", "rli_query", "admin_stats",
    )
    for i in range(ADDS):
        lrc.create_mapping(f"ovh-o-{i}", f"pfn://ovh-o-{i}")
        method = methods[i % len(methods)]
        registry.counter("rpc.requests", method=method).inc()
        registry.histogram("rpc.latency", method=method).observe(
            0.0001 * (1 + i % 7)
        )
    recorder = SLIRecorder(registry, shard="ovh", endpoint="ovh-slo")
    recorder.tick(now=0.0)  # priming tick
    assert len(recorder.trackers) == len(OPERATION_CLASSES)
    start = time.perf_counter()
    for i in range(rounds):
        recorder.tick(now=float(i + 1) * SLO_TICK_INTERVAL)
    return (time.perf_counter() - start) / rounds


SCRAPE_ROUNDS = 50


def time_scrape(rounds: int) -> float:
    """Seconds per scrape round over a registry a real add loop populated.

    Builds an instrumented LRC, runs the tight add loop against it so the
    registry holds representative counters/gauges/histograms, then times
    ``Scraper.scrape_once`` (snapshot + subtraction + series appends).
    """
    registry = MetricsRegistry()
    engine = MySQLEngine(
        flush_on_commit=False, sync_latency=0.0, metrics=registry
    )
    lrc = LocalReplicaCatalog(
        Connection(engine, "ovh-scrape"), name="ovh-scrape", metrics=registry
    )
    lrc.init_schema()
    for i in range(ADDS):
        lrc.create_mapping(f"ovh-s-{i}", f"pfn://ovh-s-{i}")
    scraper = Scraper(registry.snapshot, interval=DEFAULT_INTERVAL)
    scraper.scrape_once(now=0.0)  # priming scrape
    start = time.perf_counter()
    for i in range(rounds):
        scraper.scrape_once(now=float(i + 1) * DEFAULT_INTERVAL)
    return (time.perf_counter() - start) / rounds


def main() -> int:
    assert not tracing.active(), "overhead check requires no tracer installed"
    per_add = time_adds(ADDS)
    per_hook = time_noop_hook(NOOP_CALLS)
    overhead = per_hook * HOOKS_PER_ADD
    fraction = overhead / per_add
    print(f"per add:            {per_add * 1e6:8.2f} us")
    print(f"per no-op hook:     {per_hook * 1e9:8.2f} ns")
    print(f"hooks per add:      {HOOKS_PER_ADD:5d} (upper bound)")
    print(
        f"overhead per add:   {overhead * 1e6:8.3f} us "
        f"({fraction * 100:.3f}% of add; limit "
        f"{MAX_OVERHEAD_FRACTION * 100:.0f}%)"
    )
    if fraction >= MAX_OVERHEAD_FRACTION:
        print("FAIL: disabled instrumentation exceeds the overhead budget")
        return 1
    print("OK: disabled instrumentation is within the overhead budget")

    # Per-principal accounting: every RPC pays one context pair plus one
    # account() call when usage accounting is on (the default); the whole
    # enabled path must stay under the same per-add budget.
    per_account = time_usage_account(USAGE_CALLS)
    account_fraction = per_account / per_add
    print(f"per usage account:  {per_account * 1e6:8.3f} us")
    print(
        f"accounting overhead:{account_fraction * 100:8.3f}% of add "
        f"(limit {MAX_OVERHEAD_FRACTION * 100:.0f}%)"
    )
    if account_fraction >= MAX_OVERHEAD_FRACTION:
        print("FAIL: usage accounting exceeds the overhead budget")
        return 1
    print("OK: usage accounting is within the overhead budget")

    # Query profiler: disabled by default on bare engines; its guards
    # (enabled flag + latch noop checks) get their own budget line.
    per_guard = time_profiler_guard(NOOP_CALLS)
    guard_overhead = per_guard * PROFILER_GUARDS_PER_ADD
    guard_fraction = guard_overhead / per_add
    print(f"per profiler guard: {per_guard * 1e9:8.2f} ns")
    print(
        f"profiler overhead:  {guard_overhead * 1e6:8.3f} us per add "
        f"({guard_fraction * 100:.3f}% of add; limit "
        f"{MAX_OVERHEAD_FRACTION * 100:.0f}%)"
    )
    if guard_fraction >= MAX_OVERHEAD_FRACTION:
        print("FAIL: disabled query profiler exceeds the overhead budget")
        return 1
    print("OK: disabled query profiler is within the overhead budget")

    # Background scraping: one scrape round per DEFAULT_INTERVAL steals
    # per_scrape/DEFAULT_INTERVAL of the core the add loop saturates.
    per_scrape = time_scrape(SCRAPE_ROUNDS)
    scrape_fraction = per_scrape / DEFAULT_INTERVAL
    adds_lost = per_scrape / per_add
    print(f"per scrape round:   {per_scrape * 1e6:8.2f} us "
          f"(~{adds_lost:.1f} adds of work)")
    print(
        f"scrape duty cycle:  {scrape_fraction * 100:8.3f}% of a "
        f"{DEFAULT_INTERVAL:g}s interval (limit "
        f"{MAX_OVERHEAD_FRACTION * 100:.0f}%)"
    )
    if scrape_fraction >= MAX_OVERHEAD_FRACTION:
        print("FAIL: background scraping exceeds the overhead budget")
        return 1
    print("OK: background scraping is within the overhead budget")

    # SLI recorder: one tick per SLO_TICK_INTERVAL classifies every
    # per-method counter/histogram delta into operation classes; its duty
    # cycle gets the same cap as the scraper it imitates.
    per_tick = time_slo_tick(SLO_TICK_ROUNDS)
    tick_fraction = per_tick / SLO_TICK_INTERVAL
    ticks_lost = per_tick / per_add
    print(f"per SLI tick:       {per_tick * 1e6:8.2f} us "
          f"(~{ticks_lost:.1f} adds of work)")
    print(
        f"SLI duty cycle:     {tick_fraction * 100:8.3f}% of a "
        f"{SLO_TICK_INTERVAL:g}s interval (limit "
        f"{MAX_OVERHEAD_FRACTION * 100:.0f}%)"
    )
    if tick_fraction >= MAX_OVERHEAD_FRACTION:
        print("FAIL: SLI recorder exceeds the duty-cycle budget")
        return 1
    print("OK: SLI recorder is within the duty-cycle budget")

    # Wall-clock sampler: at the documented diagnostics rate the frame
    # walk must leave >95% of the wall clock to the threads being walked.
    per_walk, roles = time_sampler_walk(SAMPLE_ROUNDS)
    duty = per_walk * SAMPLER_HZ
    print(f"per sampler walk:   {per_walk * 1e6:8.2f} us "
          f"({roles} roles walked)")
    print(
        f"sampler duty cycle: {duty * 100:8.3f}% at {SAMPLER_HZ:g} Hz "
        f"(limit {MAX_OVERHEAD_FRACTION * 100:.0f}%)"
    )
    if duty >= MAX_OVERHEAD_FRACTION:
        print("FAIL: sampling profiler exceeds the duty-cycle budget")
        return 1
    print("OK: sampling profiler is within the duty-cycle budget")

    # Disabled sampler: profile_hz=0 must cost one attribute check at
    # startup and nothing per add — gate the guard itself against the
    # same per-add budget as the other disabled paths.
    per_enabled = time_disabled_profiler_guard(NOOP_CALLS)
    enabled_fraction = per_enabled / per_add
    print(f"disabled sampler:   {per_enabled * 1e9:8.2f} ns per guard "
          f"({enabled_fraction * 100:.4f}% of add; limit "
          f"{MAX_OVERHEAD_FRACTION * 100:.0f}%)")
    if enabled_fraction >= MAX_OVERHEAD_FRACTION:
        print("FAIL: disabled sampling profiler exceeds the overhead budget")
        return 1
    print("OK: disabled sampling profiler is within the overhead budget")

    # Partition routing: one route() per changed LFN on the update path
    # must stay under the same per-add budget at realistic fan-out.
    per_route = time_partition_route(ROUTE_CALLS)
    route_fraction = per_route / per_add
    print(
        f"per route call:     {per_route * 1e9:8.2f} ns "
        f"({ROUTE_TARGETS} targets x {ROUTE_PATTERNS} patterns, no match)"
    )
    print(
        f"routing overhead:   {route_fraction * 100:8.3f}% of add "
        f"(limit {MAX_OVERHEAD_FRACTION * 100:.0f}%)"
    )
    if route_fraction >= MAX_OVERHEAD_FRACTION:
        print("FAIL: partition routing exceeds the overhead budget")
        return 1
    print("OK: partition routing is within the overhead budget")

    # Pipelined codec: each request a batched connection carries costs one
    # encode+decode on each side of the wire; that round trip must stay a
    # small fraction of the add it transports or batching gains evaporate.
    per_codec = time_codec_roundtrip(CODEC_ROUNDS)
    codec_fraction = per_codec / per_add
    print(
        f"per codec roundtrip:{per_codec * 1e6:8.3f} us per request "
        f"(batch of {CODEC_BATCH}, request+response)"
    )
    print(
        f"codec overhead:     {codec_fraction * 100:8.3f}% of add "
        f"(limit {MAX_OVERHEAD_FRACTION * 100:.0f}%)"
    )
    if codec_fraction >= MAX_OVERHEAD_FRACTION:
        print("FAIL: pipelined codec exceeds the overhead budget")
        return 1
    print("OK: pipelined codec is within the overhead budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
