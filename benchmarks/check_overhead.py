"""Assert that disabled instrumentation is effectively free.

Every hot path carries metric and tracing hooks; with no registry and no
tracer installed those hooks degenerate into attribute checks and no-op
method calls.  This check quantifies that residual cost on the tightest
loop in the system — LRC adds against an in-memory engine — and fails if
it exceeds ``MAX_OVERHEAD_FRACTION`` of the measured per-add time.

Run directly (CI does)::

    PYTHONPATH=src python benchmarks/check_overhead.py

The comparison is deterministic by construction: rather than racing two
separately-timed loops (noisy on shared CI runners), it measures the
per-add time once, counts the no-op hook invocations an add performs,
times those no-op calls in isolation, and compares the products.
"""

from __future__ import annotations

import sys
import time

from repro.core.lrc import LocalReplicaCatalog
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection
from repro.obs import tracing
from repro.obs.metrics import NULL_REGISTRY

#: Disabled instrumentation must cost less than this fraction of an add.
MAX_OVERHEAD_FRACTION = 0.05

#: Upper bound on no-op hook invocations per lrc.add_mapping call:
#: counter incs (LRC + WAL + queue gauge), tracing.active() checks in the
#: engine/WAL, and the RPC-layer latency ``noop`` test.  Counted
#: generously; overestimating only makes the check stricter.
HOOKS_PER_ADD = 24

ADDS = 3_000
NOOP_CALLS = 200_000


def time_adds(n: int) -> float:
    """Seconds per add on a bare LRC with no registry installed."""
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    lrc = LocalReplicaCatalog(Connection(engine, "ovh"), name="ovh")
    lrc.init_schema()
    lfns = [f"ovh-{i}" for i in range(n)]
    start = time.perf_counter()
    for lfn in lfns:
        lrc.create_mapping(lfn, f"pfn://{lfn}")
    return (time.perf_counter() - start) / n


def time_noop_hook(n: int) -> float:
    """Seconds per disabled-instrumentation hook invocation."""
    counter = NULL_REGISTRY.counter("x")
    histogram = NULL_REGISTRY.histogram("y")
    active = tracing.active
    start = time.perf_counter()
    for _ in range(n):
        counter.inc()
        if not histogram.noop:
            histogram.observe(0.0)
        if active():
            pass
    return (time.perf_counter() - start) / (3 * n)


def main() -> int:
    assert not tracing.active(), "overhead check requires no tracer installed"
    per_add = time_adds(ADDS)
    per_hook = time_noop_hook(NOOP_CALLS)
    overhead = per_hook * HOOKS_PER_ADD
    fraction = overhead / per_add
    print(f"per add:            {per_add * 1e6:8.2f} us")
    print(f"per no-op hook:     {per_hook * 1e9:8.2f} ns")
    print(f"hooks per add:      {HOOKS_PER_ADD:5d} (upper bound)")
    print(
        f"overhead per add:   {overhead * 1e6:8.3f} us "
        f"({fraction * 100:.3f}% of add; limit "
        f"{MAX_OVERHEAD_FRACTION * 100:.0f}%)"
    )
    if fraction >= MAX_OVERHEAD_FRACTION:
        print("FAIL: disabled instrumentation exceeds the overhead budget")
        return 1
    print("OK: disabled instrumentation is within the overhead budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
