"""Shared helpers for the benchmark suite.

``SCALE`` shrinks the paper's database sizes so the full suite runs in
minutes; set ``RLS_BENCH_SCALE=1.0`` for paper-scale runs.  Rate
measurements reuse the §4 methodology via
:class:`repro.workload.driver.LoadDriver`.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import time
from typing import Any, Sequence

from repro.core.client import RLSClient, connect
from repro.db.odbc import Connection
from repro.net.transport import LocalTransport
from repro.obs.metrics import MetricsSnapshot
from repro.workload.driver import LoadDriver

#: Fraction of the paper's database sizes to use (1.0 = paper scale).
SCALE = float(os.environ.get("RLS_BENCH_SCALE", "0.02"))

#: Where ``BENCH_<name>.json`` trajectory artifacts land (CI uploads it).
ARTIFACT_DIR_ENV = "RLS_BENCH_ARTIFACT_DIR"

#: Collected comparison tables: (title, headers, rows, notes).
REPORT: list[tuple[str, list[str], list[list[object]], list[str]]] = []


def record_series(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] = (),
    metrics: MetricsSnapshot | None = None,
) -> None:
    """Record one paper-vs-measured table for the terminal summary.

    ``metrics`` (usually a snapshot *delta* covering the measured run)
    appends an internal-breakdown section to the table's notes: populated
    latency histograms with p50/p95/p99 and the busiest counters.
    """
    all_notes = list(notes)
    if metrics is not None:
        all_notes.extend(metrics_notes(metrics))
    REPORT.append((title, list(headers), [list(r) for r in rows], all_notes))


def server_metrics_snapshot(server_name: str) -> MetricsSnapshot:
    """Snapshot the internal metrics registry of an in-process server."""
    return LocalTransport.lookup(server_name).server.metrics.snapshot()


def metrics_notes(snapshot: MetricsSnapshot, max_lines: int = 12) -> list[str]:
    """Render a snapshot's interesting contents as report-note lines."""
    lines: list[str] = []
    populated = [
        (key, hist)
        for key, hist in sorted(snapshot.histograms.items())
        if hist.count
    ]
    for key, hist in populated[:max_lines]:
        lines.append(
            f"[internal] {key}: n={hist.count} "
            f"p50={hist.percentile(50) * 1e3:.2f}ms "
            f"p95={hist.percentile(95) * 1e3:.2f}ms "
            f"p99={hist.percentile(99) * 1e3:.2f}ms"
        )
    busiest = sorted(
        ((k, v) for k, v in snapshot.counters.items() if v),
        key=lambda kv: -kv[1],
    )
    if busiest:
        shown = ", ".join(f"{k}={v}" for k, v in busiest[:6])
        lines.append(f"[internal] counters: {shown}")
    return lines


def scaled(paper_size: int, minimum: int = 500) -> int:
    """Scale a paper database size down by ``SCALE``."""
    return max(minimum, int(paper_size * SCALE))


# ---------------------------------------------------------------------------
# Trajectory artifacts: BENCH_<name>.json
# ---------------------------------------------------------------------------


def artifact_dir() -> pathlib.Path:
    """Artifact output directory (``RLS_BENCH_ARTIFACT_DIR``, default
    ``bench_artifacts/`` under the working directory)."""
    return pathlib.Path(os.environ.get(ARTIFACT_DIR_ENV, "bench_artifacts"))


def snapshot_p95s(snapshot: MetricsSnapshot) -> dict[str, float]:
    """p95 (seconds) of every populated histogram in a snapshot/delta."""
    return {
        key: hist.percentile(95)
        for key, hist in sorted(snapshot.histograms.items())
        if hist.count
    }


def attach_collector(server, interval: float = 1.0):
    """A primed single-node :class:`ClusterCollector` over one in-process
    server's registry — benchmarks scrape it between trials (explicit
    ``now=``, so trial boundaries are the scrape boundaries)."""
    from repro.obs.collector import ClusterCollector, server_source

    collector = ClusterCollector([server_source(server)], interval=interval)
    collector.scrape_once(now=0.0)  # priming round: baseline snapshot
    return collector


#: Run records kept per artifact; older runs roll off the front.
MAX_ARTIFACT_RUNS = 100

_git_sha_cache: str | None = None


def git_sha() -> str:
    """Short commit sha for run provenance (``"unknown"`` outside git)."""
    global _git_sha_cache
    if _git_sha_cache is None:
        try:
            _git_sha_cache = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
        except Exception:
            _git_sha_cache = "unknown"
    return _git_sha_cache


def write_bench_artifact(
    name: str,
    series: dict[str, Any],
    detections: Sequence[Any] = (),
    meta: dict[str, Any] | None = None,
    nodes: dict[str, Any] | None = None,
    seed: int | None = None,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` (schema in docs/OBSERVABILITY.md).

    ``series`` maps series name to ``[[x, y], ...]`` point lists (a
    :meth:`SeriesStore.to_dict` plugs in directly); ``detections`` are
    :class:`repro.obs.analyze.Detection` objects (or plain dicts);
    ``nodes`` optionally carries per-node raw series keyed by node name.

    The top-level keys always describe the **latest** run (so existing
    readers keep working), and a ``runs`` list accumulates one record per
    invocation — seed, git sha, timestamp, scale, and the run's series —
    so ``bench_artifacts/`` holds a performance trajectory rather than
    only the last data point (``benchmarks/compare.py`` diffs it).
    """
    directory = artifact_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    clean_series = {
        key: [[float(x), float(y)] for x, y in points]
        for key, points in series.items()
    }
    clean_detections = [
        d.to_dict() if hasattr(d, "to_dict") else dict(d) for d in detections
    ]
    runs: list[dict[str, Any]] = []
    if path.exists():
        try:
            runs = json.loads(path.read_text()).get("runs", [])
        except (json.JSONDecodeError, OSError):
            runs = []  # corrupt artifact: start the trajectory over
    run_record: dict[str, Any] = {
        "created": time.time(),
        "scale": SCALE,
        "git_sha": git_sha(),
        "seed": seed,
        "series": clean_series,
        "detections": clean_detections,
        "meta": meta or {},
    }
    runs.append(run_record)
    runs = runs[-MAX_ARTIFACT_RUNS:]
    payload: dict[str, Any] = {
        "name": name,
        "created": run_record["created"],
        "scale": SCALE,
        "series": clean_series,
        "detections": clean_detections,
        "meta": meta or {},
        "runs": runs,
    }
    if nodes:
        payload["nodes"] = {
            node: {
                key: [[float(x), float(y)] for x, y in points]
                for key, points in store.items()
            }
            for node, store in nodes.items()
        }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def measure_rate(
    server_name: str,
    operation,
    clients: int = 1,
    threads_per_client: int = 10,
    total_operations: int = 2000,
    trials: int = 1,
) -> float:
    """§4-style measurement; returns the mean ops/second over ``trials``.

    The paper performs "several trials (typically 5)" and reports the mean
    rate; read-only workloads here use 2-3 trials to damp scheduler noise
    (mutating workloads keep 1 so database size stays controlled).
    """
    driver = LoadDriver(
        server_name=server_name,
        clients=clients,
        threads_per_client=threads_per_client,
        total_operations=total_operations,
    )
    rates = []
    for _ in range(trials):
        result = driver.run(operation)
        if result.errors:
            raise AssertionError(
                f"{result.errors}/{result.operations} operations failed"
            )
        rates.append(result.rate)
    return sum(rates) / len(rates)


# ---------------------------------------------------------------------------
# Native-SQL operation bodies for the Figure 7 baseline: the same SQL the
# LRC issues, submitted straight to the engine through the ODBC layer.
# ---------------------------------------------------------------------------


def native_query(conn: Connection, lfn: str) -> list[str]:
    rows = conn.execute(
        "SELECT p.name FROM t_lfn l "
        "JOIN t_map m ON l.id = m.lfn_id "
        "JOIN t_pfn p ON m.pfn_id = p.id "
        "WHERE l.name = ?",
        [lfn],
    ).rows
    return [r[0] for r in rows]


def native_add(conn: Connection, lfn: str, pfn: str) -> None:
    lfn_result = conn.execute(
        "INSERT INTO t_lfn (name, ref) VALUES (?, ?)", [lfn, 1]
    )
    existing = conn.execute(
        "SELECT id, ref FROM t_pfn WHERE name = ?", [pfn]
    ).rows
    if existing:
        pfn_id, ref = existing[0]
        conn.execute(
            "UPDATE t_pfn SET ref = ? WHERE id = ?", [ref + 1, pfn_id]
        )
    else:
        pfn_id = conn.execute(
            "INSERT INTO t_pfn (name, ref) VALUES (?, ?)", [pfn, 1]
        ).lastrowid
    conn.execute(
        "INSERT INTO t_map (lfn_id, pfn_id) VALUES (?, ?)",
        [lfn_result.lastrowid, pfn_id],
    )


def native_delete(conn: Connection, lfn: str, pfn: str) -> None:
    lfn_row = conn.execute("SELECT id FROM t_lfn WHERE name = ?", [lfn]).rows
    pfn_row = conn.execute(
        "SELECT id, ref FROM t_pfn WHERE name = ?", [pfn]
    ).rows
    if not lfn_row or not pfn_row:
        raise LookupError(f"missing mapping {lfn} -> {pfn}")
    lfn_id = lfn_row[0][0]
    pfn_id, pfn_ref = pfn_row[0]
    conn.execute(
        "DELETE FROM t_map WHERE lfn_id = ? AND pfn_id = ?", [lfn_id, pfn_id]
    )
    conn.execute("DELETE FROM t_lfn WHERE id = ?", [lfn_id])
    if pfn_ref <= 1:
        conn.execute("DELETE FROM t_pfn WHERE id = ?", [pfn_id])
    else:
        conn.execute(
            "UPDATE t_pfn SET ref = ? WHERE id = ?", [pfn_ref - 1, pfn_id]
        )


def delete_all(server_name: str, pairs) -> None:
    """Remove the mappings a trial added, restoring pre-trial size (§4)."""
    client: RLSClient = connect(server_name)
    try:
        for chunk_start in range(0, len(pairs), 1000):
            client.bulk_delete(pairs[chunk_start : chunk_start + 1000])
    finally:
        client.close()
