"""Diff benchmark artifact sets and flag regressions.

Two modes::

    python benchmarks/compare.py CURRENT_DIR BASELINE_DIR
        Compare every ``BENCH_<name>.json`` in CURRENT_DIR against the
        artifact of the same name in BASELINE_DIR (e.g. a fresh CI run
        against a cached main-branch run).

    python benchmarks/compare.py DIR
        Self-compare each artifact's trajectory: the latest run record in
        its ``runs`` list against the previous one (the accumulation that
        :func:`benchmarks.common.write_bench_artifact` appends).

Each matching series is diffed through
:func:`repro.obs.analyze.compare_baseline` (mean vs mean, default 15%
tolerance).  Series whose name marks them as lower-is-better (``time``,
``latency``, ``duration``) are inverted before the comparison so a
slowdown — not a speedup — counts as the regression.  Exits non-zero when
any regression is detected, so CI can surface it (the workflow step is
non-blocking: scaled-down benchmark runs on shared runners are noisy).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Iterator

try:
    from repro.obs.analyze import Detection, compare_baseline
except ModuleNotFoundError:  # running from a checkout without installing
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))
    from repro.obs.analyze import Detection, compare_baseline

#: Series-name substrings meaning "smaller values are better".
LOWER_IS_BETTER_MARKERS = ("time", "latency", "duration")


def _values(points: list[list[float]]) -> list[float]:
    return [float(p[1]) for p in points]


def _oriented(name: str, values: list[float]) -> list[float]:
    """Invert lower-is-better series so compare_baseline's higher-is-better
    assumption flags slowdowns instead of speedups."""
    if any(marker in name for marker in LOWER_IS_BETTER_MARKERS):
        return [1.0 / v for v in values if v > 0]
    return values


def compare_series(
    name: str,
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float,
) -> list[Detection]:
    """Regressions between two ``{series: [[x, y], ...]}`` maps."""
    detections: list[Detection] = []
    for key in sorted(set(current) & set(baseline)):
        detection = compare_baseline(
            _oriented(key, _values(current[key])),
            _oriented(key, _values(baseline[key])),
            tolerance=tolerance,
            name=f"{name}:{key}",
        )
        if detection is not None:
            detection.details.setdefault("artifact", name)
            detection.details.setdefault("series", key)
            detections.append(detection)
    return detections


def _load(path: pathlib.Path) -> dict[str, Any] | None:
    try:
        return json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return None


def iter_artifacts(directory: pathlib.Path) -> Iterator[pathlib.Path]:
    yield from sorted(directory.glob("BENCH_*.json"))


def compare_dirs(
    current_dir: pathlib.Path, baseline_dir: pathlib.Path, tolerance: float
) -> tuple[list[Detection], int]:
    """Cross-directory mode; returns (regressions, artifacts compared)."""
    detections: list[Detection] = []
    compared = 0
    for path in iter_artifacts(current_dir):
        baseline_path = baseline_dir / path.name
        if not baseline_path.exists():
            print(f"skip {path.name}: no baseline artifact")
            continue
        current = _load(path)
        baseline = _load(baseline_path)
        if current is None or baseline is None:
            print(f"skip {path.name}: unreadable artifact")
            continue
        compared += 1
        detections.extend(
            compare_series(
                current.get("name", path.stem),
                current.get("series", {}),
                baseline.get("series", {}),
                tolerance,
            )
        )
    return detections, compared


def compare_trajectory(
    directory: pathlib.Path, tolerance: float
) -> tuple[list[Detection], int]:
    """Self-compare mode: each artifact's last run vs its previous run."""
    detections: list[Detection] = []
    compared = 0
    for path in iter_artifacts(directory):
        payload = _load(path)
        if payload is None:
            print(f"skip {path.name}: unreadable artifact")
            continue
        runs = payload.get("runs", [])
        if len(runs) < 2:
            print(f"skip {path.name}: fewer than 2 recorded runs")
            continue
        compared += 1
        detections.extend(
            compare_series(
                payload.get("name", path.stem),
                runs[-1].get("series", {}),
                runs[-2].get("series", {}),
                tolerance,
            )
        )
    return detections, compared


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff BENCH_*.json artifact sets; exit 1 on regression"
    )
    parser.add_argument("current", help="artifact directory (current run)")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="baseline artifact directory (omit to self-compare each "
        "artifact's last two recorded runs)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional mean drop before flagging (default 0.15)",
    )
    args = parser.parse_args(argv)

    current_dir = pathlib.Path(args.current)
    if not current_dir.is_dir():
        print(f"no such directory: {current_dir}")
        return 2
    if args.baseline is not None:
        baseline_dir = pathlib.Path(args.baseline)
        if not baseline_dir.is_dir():
            print(f"no such directory: {baseline_dir}")
            return 2
        detections, compared = compare_dirs(
            current_dir, baseline_dir, args.tolerance
        )
    else:
        detections, compared = compare_trajectory(current_dir, args.tolerance)

    if compared == 0:
        # A fresh checkout or first CI run has no second data point yet;
        # that is not a regression and must not fail the step.
        print(
            "no baseline to compare against "
            "(no artifact with both a current and a baseline run); "
            "nothing compared"
        )
        return 0
    for detection in detections:
        print(f"REGRESSION [{detection.severity}] {detection.summary}")
    print(
        f"{compared} artifact(s) compared, "
        f"{len(detections)} regression(s) found"
    )
    return 1 if detections else 0


if __name__ == "__main__":
    sys.exit(main())
