"""Benchmark-suite infrastructure.

Each ``bench_figXX_*.py`` file regenerates one table or figure from the
paper's evaluation and records a paper-vs-measured comparison table, which
is printed in the terminal summary (so it survives pytest's output
capture and lands in ``bench_output.txt``).

Scale: ``RLS_BENCH_SCALE`` multiplies the paper's database sizes
(default 0.02, i.e. a 1 M-entry experiment runs with 20 000 entries so the
whole suite finishes in minutes).  Absolute rates differ from the paper —
the substrate is a Python simulator, not a 2003 Xeon running MySQL — but
each recorded table states the paper's numbers next to ours so the shape
comparison is direct.
"""

from __future__ import annotations

import pytest

from benchmarks.common import REPORT


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not REPORT:
        return
    tr = terminalreporter
    tr.write_sep("=", "paper-vs-measured comparison tables")
    for title, headers, rows, notes in REPORT:
        tr.write_line("")
        tr.write_line(title)
        tr.write_line("-" * len(title))
        widths = [
            max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
            for i in range(len(headers))
        ]
        tr.write_line(
            "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
        )
        for row in rows:
            tr.write_line(
                "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
            )
        for note in notes:
            tr.write_line(f"  note: {note}")


@pytest.fixture(scope="session")
def scale():
    from benchmarks.common import SCALE

    return SCALE
