#!/usr/bin/env python3
"""Earth System Grid deployment (paper §6).

"The Earth System Grid deploys four RLS servers that function as both
LRCs and RLIs in a fully-connected configuration and store mappings for
40,000 physical files."  Every server indexes every other server's
catalog, so a query against ANY node finds replicas anywhere.

This example builds the four-node full mesh with uncompressed updates
(so wildcard queries keep working, which ESG's data portal relies on),
loads climate files, and demonstrates mesh-wide discovery plus what
happens when one node's state goes stale.

Run:  python examples/earth_system_grid.py
"""

from repro import RLSServer, ServerConfig, ServerRole, connect
from repro.workload.names import esg_names

NODES = ["ncar", "llnl", "isi", "ornl"]
FILES_PER_NODE = 250  # paper: 40,000 physical files across the mesh


def main() -> None:
    servers = {
        node: RLSServer(
            ServerConfig(name=f"esg-{node}", role=ServerRole.BOTH)
        ).start()
        for node in NODES
    }
    try:
        datasets = esg_names(FILES_PER_NODE * len(NODES))

        print("loading catalogs and wiring the full mesh ...")
        for i, node in enumerate(NODES):
            client = connect(f"esg-{node}")
            local = datasets[i * FILES_PER_NODE : (i + 1) * FILES_PER_NODE]
            client.bulk_create(
                [(d, f"http://{node}.esg.org/thredds/{d}") for d in local]
            )
            # Fully-connected: every LRC updates every RLI (including its own).
            for target in NODES:
                client.add_rli(f"esg-{target}", bloom=False)
            client.trigger_full_update()
            print(f"  esg-{node}: {client.lfn_count()} datasets")
            client.close()

        # --- any node answers for the whole federation ---
        probe = datasets[3 * FILES_PER_NODE + 7]  # one of ornl's datasets
        print(f"\nquerying every node for {probe!r}:")
        for node in NODES:
            client = connect(f"esg-{node}")
            print(f"  esg-{node} ->", client.rli_query(probe))
            client.close()

        # --- wildcard search across the federation (needs uncompressed) ---
        client = connect("esg-ncar")
        hits = client.rli_query_wildcard("ccsm3/b30.004/TS/*")
        print(f"\nwildcard 'ccsm3/b30.004/TS/*': {len(hits)} index entries")
        for lfn, lrc in hits[:5]:
            print(f"  {lfn} @ {lrc}")

        # --- soft-state behaviour: a node goes quiet ---
        print("\nornl stops updating; its entries age out of the indexes")
        # Simulate staleness by expiring with a tiny timeout on one node.
        ncar = servers["ncar"]
        ncar.rli.timeout = 0.0  # everything is now stale
        dropped = ncar.rli.expire_once()
        print(f"  esg-ncar expired {dropped} soft-state entries")
        try:
            client.rli_query(probe)
            print("  (unexpectedly still indexed)")
        except Exception as exc:
            print(f"  esg-ncar no longer indexes {probe!r}: {type(exc).__name__}")
        # Other nodes still answer; a fresh update restores ncar.
        ncar.rli.timeout = 1800.0
        ornl = connect("esg-ornl")
        ornl.trigger_full_update()
        print("  after ornl's next update:", client.rli_query(probe))
        ornl.close()
        client.close()
    finally:
        for server in servers.values():
            server.stop()
    print("done")


if __name__ == "__main__":
    main()
