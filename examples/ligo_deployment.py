#!/usr/bin/env python3
"""LIGO-style deployment (paper §6, scaled down).

LIGO "uses the RLS to register and query mappings between 3 million
logical file names and 30 million physical file locations": every frame
file is replicated at multiple observatory/compute sites, each site runs
an LRC, and Bloom-filter updates feed a central RLI so any site can find
which other sites hold a frame.

This example builds a 3-site deployment at 1/1000 scale (3000 LFNs x 10
replicas), uses Bloom-compressed updates (the production LIGO choice),
and then walks the discovery path for a gravitational-wave analysis job.

Run:  python examples/ligo_deployment.py
"""

import time

from repro import RLSServer, ServerConfig, ServerRole, connect
from repro.workload.names import ligo_names

SITES = ["hanford", "livingston", "caltech"]
FRAMES_PER_SITE = 1000
REPLICAS_EACH_AT = 2  # each frame also mirrored at the next site


def main() -> None:
    # One RLI for the collaboration, one LRC per site.
    rli = RLSServer(
        ServerConfig(name="ligo-rli", role=ServerRole.RLI)
    ).start()
    lrcs = {
        site: RLSServer(
            ServerConfig(name=f"ligo-lrc-{site}", role=ServerRole.LRC)
        ).start()
        for site in SITES
    }

    try:
        frames = ligo_names(FRAMES_PER_SITE * len(SITES))

        # Each site owns a third of the frames and mirrors its successor's.
        print("registering frame files ...")
        for i, site in enumerate(SITES):
            owned = frames[i * FRAMES_PER_SITE : (i + 1) * FRAMES_PER_SITE]
            mirrored = frames[
                ((i + 1) % len(SITES)) * FRAMES_PER_SITE :
                ((i + 1) % len(SITES)) * FRAMES_PER_SITE + FRAMES_PER_SITE
            ]
            client = connect(f"ligo-lrc-{site}")
            client.bulk_create(
                [(f, f"gsiftp://{site}.ligo.org/frames/{f}") for f in owned]
            )
            client.bulk_create(
                [(f, f"gsiftp://{site}.ligo.org/mirror/{f}") for f in mirrored]
            )
            # Production LIGO uses Bloom-compressed updates.
            client.add_rli("ligo-rli", bloom=True)
            start = time.perf_counter()
            client.rebuild_bloom()
            client.trigger_full_update()
            print(
                f"  {site}: {client.lfn_count()} LFNs, "
                f"bloom update in {time.perf_counter() - start:.2f}s"
            )
            client.close()

        # --- a science run: find every replica of a stretch of frames ---
        print("\nanalysis job: locating replicas for 5 frames")
        rli_client = connect("ligo-rli")
        for frame in frames[42:47]:
            holders = rli_client.rli_query(frame)
            replicas = []
            for holder in holders:
                lrc_client = connect(holder)
                try:
                    replicas.extend(lrc_client.get_mappings(frame))
                except Exception:
                    # Bloom false positive (~1%): the paper's robust-client
                    # pattern is to just try the next holder (§3.2, §3.4).
                    pass
                finally:
                    lrc_client.close()
            print(f"  {frame}: {len(replicas)} replicas via {len(holders)} site(s)")

        # --- site maintenance: hanford drains its mirror set ---
        print("\nhanford drains its mirrored frames and refreshes its filter")
        hanford = connect("ligo-lrc-hanford")
        mirrored = [
            (lfn, pfn)
            for lfn in frames[FRAMES_PER_SITE : 2 * FRAMES_PER_SITE]
            for pfn in [f"gsiftp://hanford.ligo.org/mirror/{lfn}"]
        ]
        hanford.bulk_delete(mirrored)
        hanford.trigger_full_update()
        print(f"  hanford now advertises {hanford.lfn_count()} LFNs")
        hanford.close()

        # A drained frame now resolves only to livingston's own copy.
        frame = frames[FRAMES_PER_SITE + 1]
        holders = rli_client.rli_query(frame)
        print(f"  {frame} now held by: {holders}")
        rli_client.close()
    finally:
        for server in lrcs.values():
            server.stop()
        rli.stop()
    print("done")


if __name__ == "__main__":
    main()
