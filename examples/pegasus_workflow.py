#!/usr/bin/env python3
"""Pegasus-style workflow planning against the RLS (paper §6).

Pegasus "uses 6 LRCs and 4 RLIs to register the locations of
approximately 100,000 logical files".  A workflow planner consults the
RLS to (a) find which intermediate data products already exist somewhere
on the grid — so those jobs can be pruned — and (b) register the outputs
each site produces, using the bulk operations that §5.4 says are
"particularly useful for large scientific workflows".

This example runs a scaled-down montage workflow: level-0 inputs are
pre-staged at two sites, the planner prunes satisfied jobs, executes the
rest, bulk-registers outputs with size attributes, and hands the final
mosaic's replica list to the user.

Run:  python examples/pegasus_workflow.py
"""

from repro import RLSServer, ServerConfig, ServerRole, connect
from repro.workload.names import pegasus_names

COMPUTE_SITES = ["teragrid-ncsa", "teragrid-sdsc"]
NUM_JOBS = 200  # each job consumes one input and produces one output


def main() -> None:
    rli = RLSServer(ServerConfig(name="pegasus-rli", role=ServerRole.RLI)).start()
    lrcs = {
        site: RLSServer(
            ServerConfig(name=f"pegasus-lrc-{site}", role=ServerRole.LRC)
        ).start()
        for site in COMPUTE_SITES
    }
    try:
        inputs = pegasus_names(NUM_JOBS, workflow="montage-in")
        outputs = pegasus_names(NUM_JOBS, workflow="montage")

        # --- stage-in: raw images pre-staged round-robin across sites;
        #     some outputs exist already from a previous (partial) run ---
        print("pre-staging inputs and leftovers from a previous run ...")
        for i, site in enumerate(COMPUTE_SITES):
            client = connect(f"pegasus-lrc-{site}")
            client.bulk_create(
                [
                    (lfn, f"gsiftp://{site}/scratch/{lfn}")
                    for lfn in inputs[i :: len(COMPUTE_SITES)]
                ]
            )
            client.define_attribute("size", "pfn", "int")
            client.add_rli("pegasus-rli")
            client.trigger_full_update()
            client.close()
        previous_run = connect(f"pegasus-lrc-{COMPUTE_SITES[0]}")
        already_done = outputs[: NUM_JOBS // 4]
        previous_run.bulk_create(
            [
                (lfn, f"gsiftp://{COMPUTE_SITES[0]}/products/{lfn}")
                for lfn in already_done
            ]
        )
        previous_run.trigger_full_update()
        previous_run.close()

        # --- planning: bulk-query the RLI to prune satisfied jobs ---
        print("planning: checking which outputs already exist ...")
        rli_client = connect("pegasus-rli")
        existing = rli_client.rli_bulk_query(outputs)
        to_run = [lfn for lfn in outputs if lfn not in existing]
        print(
            f"  {len(existing)} outputs already registered -> "
            f"{len(to_run)} of {NUM_JOBS} jobs remain"
        )

        # --- execution: each site runs its share and bulk-registers ---
        print("executing and registering outputs ...")
        for i, site in enumerate(COMPUTE_SITES):
            mine = to_run[i :: len(COMPUTE_SITES)]
            client = connect(f"pegasus-lrc-{site}")
            failures = client.bulk_create(
                [(lfn, f"gsiftp://{site}/products/{lfn}") for lfn in mine]
            )
            assert not failures
            client.bulk_add_attribute(
                [
                    (f"gsiftp://{site}/products/{lfn}", "size", 4096 + 17 * j)
                    for j, lfn in enumerate(mine)
                ],
                "pfn",
            )
            client.trigger_full_update()
            print(f"  {site}: registered {len(mine)} products")
            client.close()

        # --- delivery: find every replica of the final mosaic ---
        mosaic = outputs[-1]
        print(f"\nfinal product {mosaic!r}:")
        for holder in rli_client.rli_query(mosaic):
            client = connect(holder)
            for pfn in client.get_mappings(mosaic):
                size = client.get_attributes(pfn, "pfn").get("size")
                print(f"  {pfn} (size={size})")
            client.close()

        # --- re-planning is now a no-op ---
        still_missing = [
            lfn
            for lfn in outputs
            if lfn not in rli_client.rli_bulk_query(outputs)
        ]
        print(f"re-planning finds {len(still_missing)} unsatisfied outputs")
        rli_client.close()
    finally:
        for server in lrcs.values():
            server.stop()
        rli.stop()
    print("done")


if __name__ == "__main__":
    main()
