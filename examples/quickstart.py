#!/usr/bin/env python3
"""Quickstart: one server hosting both an LRC and an RLI.

Shows the basic lifecycle from the paper's §3: register replicas in a
Local Replica Catalog, push a soft-state update into the Replica Location
Index, then discover replicas the two-step way (RLI -> LRC).

Run:  python examples/quickstart.py
"""

from repro import RLSServer, ServerConfig, ServerRole, connect


def main() -> None:
    config = ServerConfig(
        name="quickstart",
        role=ServerRole.BOTH,     # the common LRC/RLI server of Figure 2
        backend="mysql",          # embedded MySQL-flavoured engine
        flush_on_commit=False,    # the paper's recommended setting (§5.1)
    )
    with RLSServer(config):
        client = connect("quickstart")

        # --- register replicas (LRC operations, Table 1) ---
        lfn = "lfn://climate/run42/temperature.nc"
        client.create(lfn, "gsiftp://storage1.example.org/data/temperature.nc")
        client.add(lfn, "gsiftp://storage2.example.org/mirror/temperature.nc")
        print("replicas registered:")
        for pfn in client.get_mappings(lfn):
            print("   ", pfn)

        # --- attach attributes ---
        client.define_attribute("size", "pfn", "int")
        client.add_attribute(
            "gsiftp://storage1.example.org/data/temperature.nc",
            "size", "pfn", 2_147_483_648 // 2,
        )
        print("attributes:", client.get_attributes(
            "gsiftp://storage1.example.org/data/temperature.nc", "pfn"))

        # --- wire the LRC to update the (co-hosted) RLI and push state ---
        client.add_rli("quickstart", bloom=False)
        duration = client.trigger_full_update()
        print(f"soft-state update completed in {duration * 1000:.1f} ms")

        # --- two-step discovery (§3.2) ---
        holders = client.rli_query(lfn)
        print("RLI says these LRCs hold the name:", holders)
        for holder in holders:
            lrc_client = connect(holder)
            print(f"  {holder} ->", lrc_client.get_mappings(lfn))
            lrc_client.close()

        # --- wildcard discovery ---
        print("wildcard lfn://climate/*:", client.query_wildcard("lfn://climate/*"))
        client.close()
    print("done")


if __name__ == "__main__":
    main()
