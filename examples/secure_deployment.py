#!/usr/bin/env python3
"""GSI-style security: certificates, gridmap, and regex ACLs (paper §3.1).

Builds an RLS server with authentication enabled, issues certificates
from a CA, maps Distinguished Names to local users through a gridmap
file, and grants privileges via regular-expression ACL entries — then
shows an authorized write, a read-only user being denied a write, and a
forged certificate being rejected at the handshake.

Run:  python examples/secure_deployment.py
"""

from repro import RLSServer, ServerConfig, ServerRole, connect
from repro.net.errors import AuthenticationError, RemoteError
from repro.security import (
    AccessControlList,
    CertificateAuthority,
    Gridmap,
    SecurityPolicy,
)

PRODUCTION_DN = "/DC=org/DC=doegrids/OU=Services/CN=data-publisher"
ANALYST_DN = "/DC=org/DC=doegrids/OU=People/CN=Grace Analyst"


def main() -> None:
    ca = CertificateAuthority("DOEGrids CA")

    gridmap = Gridmap.parse(
        f'"{PRODUCTION_DN}" publisher\n'
        f'"{ANALYST_DN}" ganalyst\n'
    )

    acl = AccessControlList()
    # Services under OU=Services may read and write the catalog.
    acl.add(r"/DC=org/DC=doegrids/OU=Services/.*", ["lrc_read", "lrc_write", "admin"])
    # Everyone in OU=People may read; writes are denied.
    acl.add(r"/DC=org/DC=doegrids/OU=People/.*", ["lrc_read", "rli_read"])
    # Admin may also be granted by local username (via the gridmap).
    acl.add(r"publisher", ["rli_write"], match_dn=False)

    policy = SecurityPolicy(enabled=True, ca=ca, gridmap=gridmap, acl=acl)
    server = RLSServer(
        ServerConfig(name="secure-rls", role=ServerRole.BOTH, security=policy)
    ).start()
    try:
        # --- the data publisher registers replicas ---
        publisher_cred = ca.issue(PRODUCTION_DN).to_bytes()
        publisher = connect("secure-rls", credential=publisher_cred)
        publisher.create("secure/dataset.h5", "gsiftp://vault/dataset.h5")
        print("publisher registered a mapping")

        # --- the analyst can read ... ---
        analyst_cred = ca.issue(ANALYST_DN).to_bytes()
        analyst = connect("secure-rls", credential=analyst_cred)
        print("analyst reads:", analyst.get_mappings("secure/dataset.h5"))

        # --- ... but cannot write ---
        try:
            analyst.create("secure/forged.h5", "gsiftp://elsewhere/x")
        except RemoteError as exc:
            print(f"analyst write denied: {exc}")

        # --- a forged certificate never gets past the handshake ---
        rogue_ca = CertificateAuthority("Rogue CA")
        forged = rogue_ca.issue(PRODUCTION_DN).to_bytes()
        try:
            connect("secure-rls", credential=forged)
        except AuthenticationError as exc:
            print(f"forged credential rejected: {exc}")

        # --- and no credential at all is rejected too ---
        try:
            connect("secure-rls")
        except AuthenticationError as exc:
            print(f"anonymous connection rejected: {exc}")

        publisher.close()
        analyst.close()
    finally:
        server.stop()
    print("done")


if __name__ == "__main__":
    main()
