#!/usr/bin/env python3
"""Soft-state update study on the simulated LAN/WAN testbed.

Regenerates the paper's three network experiments (Figure 12, Table 3,
Figure 13) on the discrete-event simulator and prints paper-vs-ours
tables.  The same code backs the corresponding benchmarks; this script is
the human-friendly entry point.

Run:  python examples/wan_update_study.py           (quick: skips 5M gen)
      python examples/wan_update_study.py --full    (measures generation)
"""

import sys

from repro.sim.models import (
    bloom_table3_row,
    bloom_update_times_wan,
    uncompressed_update_times,
)


def figure12() -> None:
    print("Figure 12 — uncompressed soft-state update time (LAN), seconds")
    print(f"{'LRCs':>5} {'10K':>9} {'100K':>9} {'1M':>9}")
    for count in (1, 2, 3, 4, 5, 6, 7, 8):
        times = [
            uncompressed_update_times(size, count, rounds=3).mean_update_time
            for size in (10_000, 100_000, 1_000_000)
        ]
        print(f"{count:>5} {times[0]:>9.1f} {times[1]:>9.1f} {times[2]:>9.0f}")
    print("paper anchors: 1 LRC/1M = 831 s, 6 LRCs/1M = 5102 s\n")


def table3(full: bool) -> None:
    print("Table 3 — Bloom filter update performance (single WAN client)")
    print(f"{'mappings':>10} {'update(s)':>10} {'generate(s)':>12} {'bits':>12}")
    paper = {100_000: ("<1", 2.0), 1_000_000: (1.67, 18.4), 5_000_000: (6.8, 91.6)}
    for entries in (100_000, 1_000_000, 5_000_000):
        row = bloom_table3_row(
            entries,
            measure_generation=True,
            generation_sample=None if full else min(entries, 100_000),
        )
        p_upd, p_gen = paper[entries]
        print(
            f"{entries:>10,} {row.update_time:>10.2f} "
            f"{row.generation_time:>12.1f} {row.filter_bits:>12,}"
            f"   (paper: {p_upd} / {p_gen})"
        )
    print()


def figure13() -> None:
    print("Figure 13 — continuous WAN Bloom updates, mean client time (s)")
    print(f"{'clients':>8} {'ours':>7}   paper")
    paper = {1: 6.5, 7: 7.0, 10: 8.5, 14: 11.5}
    for clients in range(1, 15):
        t = bloom_update_times_wan(5_000_000, clients).mean_update_time
        anchor = f"{paper[clients]}" if clients in paper else ""
        print(f"{clients:>8} {t:>7.2f}   {anchor}")
    print()


def main() -> None:
    full = "--full" in sys.argv
    figure12()
    table3(full)
    figure13()
    print("done")


if __name__ == "__main__":
    main()
