"""Legacy setup shim.

Kept so ``python setup.py develop`` works in offline environments where
pip's PEP 660 editable build is unavailable (it requires the ``wheel``
package).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
