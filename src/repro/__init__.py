"""repro — reproduction of the Globus Replica Location Service (HPDC 2004).

A from-scratch Python implementation of the two-tier Replica Location
Service evaluated in Chervenak et al., *Performance and Scalability of a
Replica Location Service* (HPDC 2004), together with every substrate it
depends on: an embedded relational database with MySQL- and
PostgreSQL-flavoured engines, an ODBC-like access layer, an RPC stack,
GSI-style security, a discrete-event simulator for the LAN/WAN
experiments, and a workload/benchmark harness that regenerates each table
and figure of the paper's evaluation.

Quickstart::

    from repro import RLSServer, ServerConfig, ServerRole, connect

    with RLSServer(ServerConfig(name="demo", role=ServerRole.BOTH)) as server:
        client = connect("demo")
        client.create("lfn://experiment/file001", "gsiftp://host/data/file001")
        print(client.get_mappings("lfn://experiment/file001"))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results.
"""

from repro.core import (
    AttrType,
    Backend,
    BloomFilter,
    BloomParameters,
    CountingBloomFilter,
    LocalReplicaCatalog,
    ObjType,
    RLSClient,
    RLSError,
    RLSServer,
    ReplicaLocationIndex,
    ServerConfig,
    ServerRole,
    StaticMembership,
    UpdateManager,
    UpdatePolicy,
    connect,
    connect_tcp_server,
)

__version__ = "1.0.0"

__all__ = [
    "AttrType",
    "Backend",
    "BloomFilter",
    "BloomParameters",
    "CountingBloomFilter",
    "LocalReplicaCatalog",
    "ObjType",
    "RLSClient",
    "RLSError",
    "RLSServer",
    "ReplicaLocationIndex",
    "ServerConfig",
    "ServerRole",
    "StaticMembership",
    "UpdateManager",
    "UpdatePolicy",
    "__version__",
    "connect",
    "connect_tcp_server",
]
