"""Command-line interface — the ``globus-rls-cli`` equivalent.

Subcommands mirror the operation classes of the paper's Table 1::

    rls serve   --name mysite --role both --tcp --port 39281
    rls create  --server host:39281 lfn pfn
    rls add     --server host:39281 lfn pfn
    rls delete  --server host:39281 lfn pfn
    rls query   --server host:39281 lfn            # LRC query (or wildcard)
    rls rli-query --server host:39281 lfn          # index query
    rls bulk    --server host:39281 create pairs.txt
    rls attr    --server host:39281 define size pfn int
    rls attr    --server host:39281 add <pfn> size pfn 1024
    rls admin   --server host:39281 stats|ping|update|expire
    rls stats   host:39281                         # live metrics summary
    rls stats   host:39281 --watch 2               # re-scrape every 2s
    rls trace   --server host:39281                # tail-retained spans
    rls trace   --server host:39281 <trace-id> --distributed --critical-path
    rls slowlog --server host:39281                # slow/error statements
    rls slo     host:39281 --watch 5               # SLIs, burn rates, budget
    rls usage   host:39281 --watch 5               # per-principal usage
    rls profile host:39281 --seconds 5 --folded    # sampling profiler
    rls threads host:39281                         # thread dump + stuck check
    rls flight  host:39281                         # flight-recorder events
    rls explain mysite-dsn "SELECT ... WHERE ..."  # EXPLAIN ANALYZE a query
    rls top     --servers a:39281,b:39282,r:39283  # live cluster rates
    rls top     --servers ... --principals         # + cluster heavy hitters
    rls workload --server host:39281 --op query --seed 7

``--server`` accepts either an in-process endpoint name or ``host:port``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Sequence

from repro.core.client import RLSClient, connect, connect_tcp_server
from repro.core.config import ServerConfig, ServerRole
from repro.core.naming import has_wildcard
from repro.core.server import RLSServer


def _open_client(spec: str) -> RLSClient:
    if ":" in spec:
        host, port = spec.rsplit(":", 1)
        return connect_tcp_server(host, int(port))
    return connect(spec)


def _parse_role(text: str) -> ServerRole:
    mapping = {"lrc": ServerRole.LRC, "rli": ServerRole.RLI, "both": ServerRole.BOTH}
    try:
        return mapping[text.lower()]
    except KeyError:
        raise argparse.ArgumentTypeError(f"role must be lrc|rli|both, got {text!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rls", description="Replica Location Service command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run an RLS server")
    serve.add_argument("--name", default="rls")
    serve.add_argument("--role", type=_parse_role, default=ServerRole.BOTH)
    serve.add_argument("--backend", default="mysql", choices=["mysql", "postgresql"])
    serve.add_argument("--flush-on-commit", action="store_true")
    serve.add_argument("--tcp", action="store_true")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument(
        "--run-seconds",
        type=float,
        default=None,
        help="exit after N seconds (default: run until interrupted)",
    )
    serve.add_argument(
        "--trace",
        action="store_true",
        help="install a process-wide tracer with tail-sampled span "
        "retention (query via 'rls trace' / GET /admin/traces)",
    )
    serve.add_argument(
        "--profile-hz",
        type=float,
        default=0.0,
        help="enable the sampling profiler at this rate "
        "(query via 'rls profile' / 'rls threads'; default: disabled)",
    )
    serve.add_argument(
        "--shards",
        default=None,
        help="comma-separated shard masters forming the cluster's "
        "consistent-hash ring (gives this server a shard map to serve "
        "from 'admin_shard_map' / 'rls shards')",
    )
    serve.add_argument(
        "--mirror-of",
        default=None,
        help="run as a read-only mirror of the named shard master: "
        "client writes are rejected, the master's replica stream is "
        "applied via the mirror ingest RPCs",
    )
    serve.add_argument(
        "--mirrors",
        default=None,
        help="comma-separated read-only mirrors this shard master "
        "streams replica mappings to",
    )
    serve.add_argument(
        "--vnodes",
        type=int,
        default=None,
        help="virtual nodes per shard on the consistent-hash ring "
        "(default: 64)",
    )

    for name, help_text in (
        ("create", "register a new logical name with its first replica"),
        ("add", "register an additional replica"),
        ("delete", "remove a replica mapping"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--server", required=True)
        cmd.add_argument("lfn")
        cmd.add_argument("pfn")

    query = sub.add_parser("query", help="LRC query (wildcards: * and ?)")
    query.add_argument("--server", required=True)
    query.add_argument("--reverse", action="store_true", help="query by target name")
    query.add_argument("name")

    rli_query = sub.add_parser("rli-query", help="RLI index query")
    rli_query.add_argument("--server", required=True)
    rli_query.add_argument("lfn")

    bulk = sub.add_parser("bulk", help="bulk create/add/delete from a file")
    bulk.add_argument("--server", required=True)
    bulk.add_argument("op", choices=["create", "add", "delete", "query"])
    bulk.add_argument(
        "path", help="file with one 'lfn pfn' (or just 'lfn' for query) per line"
    )

    attr = sub.add_parser("attr", help="attribute operations")
    attr.add_argument("--server", required=True)
    attr.add_argument("args", nargs="+")

    admin = sub.add_parser("admin", help="administrative operations")
    admin.add_argument("--server", required=True)
    admin.add_argument(
        "op", choices=["ping", "stats", "update", "incremental", "expire", "add-rli",
                       "remove-rli", "list-rlis", "verify"]
    )
    admin.add_argument("extra", nargs="*")
    admin.add_argument("--bloom", action="store_true")

    stats = sub.add_parser(
        "stats", help="live server metrics (counters and latency percentiles)"
    )
    stats.add_argument("server", help="endpoint name or host:port")
    stats.add_argument(
        "--format",
        choices=["summary", "json", "text"],
        default="summary",
        help="summary (default), raw JSON snapshot, or Prometheus text",
    )
    stats.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="keep scraping every SECONDS, printing per-interval rates",
    )
    stats.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="with --watch: stop after N intervals (default: until ^C)",
    )

    trace = sub.add_parser(
        "trace",
        help="tail-retained spans, or one stitched trace by id",
    )
    trace.add_argument("--server", required=True)
    trace.add_argument(
        "trace_id",
        nargs="?",
        default=None,
        help="trace (or span) id to assemble — the ids printed by the "
        "listing and by 'rls slowlog' both work",
    )
    trace.add_argument("--limit", type=int, default=20)
    trace.add_argument(
        "--distributed",
        action="store_true",
        help="with a trace id: gather fragments from every endpoint in "
        "the cluster's shard map client-side instead of asking one "
        "server to stitch",
    )
    trace.add_argument(
        "--critical-path",
        action="store_true",
        help="with a trace id: also print the critical path with wall "
        "time attributed per segment (routing, net wait, db, wal, ...)",
    )
    trace.add_argument(
        "--json", action="store_true", help="raw JSON payload instead of a table"
    )

    slo = sub.add_parser(
        "slo", help="SLO state: per-class SLIs, burn rates, error budget"
    )
    slo.add_argument("server", help="endpoint name or host:port")
    slo.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="keep polling every SECONDS, printing one burn-rate line "
        "per round",
    )
    slo.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="with --watch: stop after N rounds (default: until ^C)",
    )
    slo.add_argument(
        "--json", action="store_true", help="raw JSON payload instead of a table"
    )

    usage = sub.add_parser(
        "usage", help="per-principal resource usage and heavy hitters"
    )
    usage.add_argument("server", help="endpoint name or host:port")
    usage.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="keep polling every SECONDS, printing per-interval request "
        "rates by principal",
    )
    usage.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="with --watch: stop after N rounds (default: until ^C)",
    )
    usage.add_argument(
        "--json", action="store_true", help="raw JSON payload instead of a table"
    )

    slowlog = sub.add_parser(
        "slowlog", help="tail-retained slow/error SQL statements"
    )
    slowlog.add_argument("--server", required=True)
    slowlog.add_argument("--limit", type=int, default=20)
    slowlog.add_argument(
        "--json", action="store_true", help="raw JSON payload instead of a table"
    )
    slowlog.add_argument(
        "--plans", action="store_true",
        help="also print each statement's recorded operator plan",
    )

    profile = sub.add_parser(
        "profile", help="sampling-profiler folded stacks (FlameGraph input)"
    )
    profile.add_argument("server", help="endpoint name or host:port")
    profile.add_argument(
        "--seconds",
        type=float,
        default=None,
        metavar="N",
        help="sample a window: diff two snapshots N seconds apart "
        "(default: cumulative since server start)",
    )
    profile_fmt = profile.add_mutually_exclusive_group()
    profile_fmt.add_argument(
        "--folded",
        action="store_true",
        help="raw 'stack count' lines (pipe into flamegraph.pl)",
    )
    profile_fmt.add_argument(
        "--json", action="store_true", help="raw JSON payload"
    )

    threads = sub.add_parser(
        "threads", help="thread dump: roles, spans, stuck-thread detections"
    )
    threads.add_argument("server", help="endpoint name or host:port")
    threads.add_argument(
        "--json", action="store_true", help="raw JSON payload instead of a table"
    )

    flight = sub.add_parser(
        "flight", help="flight-recorder events (the server's black box)"
    )
    flight.add_argument("server", help="endpoint name or host:port")
    flight.add_argument("--limit", type=int, default=50)
    flight.add_argument(
        "--json", action="store_true", help="raw JSON payload instead of a table"
    )

    explain = sub.add_parser(
        "explain",
        help="run EXPLAIN ANALYZE against a local engine (by DSN)",
    )
    explain.add_argument("dsn", help="registered data source name")
    explain.add_argument("sql", help="statement to explain (SELECT/UPDATE/DELETE)")
    explain.add_argument(
        "--static",
        action="store_true",
        help="plan only (plain EXPLAIN) — do not execute the statement",
    )

    top = sub.add_parser(
        "top", help="live cluster view: per-node and cluster operation rates"
    )
    top.add_argument(
        "--servers",
        required=True,
        help="comma-separated endpoints (name or host:port)",
    )
    top.add_argument("--interval", type=float, default=1.0)
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after N scrape rounds (default: until ^C)",
    )
    top.add_argument(
        "--principals",
        action="store_true",
        help="also print the cluster's top principals (admin_usage "
        "sketches merged across all servers)",
    )
    top.add_argument(
        "--prefixes",
        action="store_true",
        help="also print the cluster's hot LFN prefixes (merged "
        "admin_usage sketches)",
    )

    workload = sub.add_parser(
        "workload", help="run a measurement workload against a server"
    )
    workload.add_argument("--server", required=True)
    workload.add_argument(
        "--op", choices=["add", "query", "rli-query", "delete"], default="query"
    )
    workload.add_argument("--operations", type=int, default=1000)
    workload.add_argument("--clients", type=int, default=1)
    workload.add_argument("--threads", type=int, default=10)
    workload.add_argument(
        "--count", type=int, default=1000,
        help="namespace size (distinct logical names) the workload draws from",
    )
    workload.add_argument(
        "--prefix", default="wl", help="logical-name prefix for the namespace"
    )
    workload.add_argument(
        "--seed", type=int, default=1234,
        help="RNG seed for query name sampling (reproducible runs)",
    )
    workload.add_argument(
        "--metrics", action="store_true",
        help="print the server's internal metrics delta after the run",
    )

    shards = sub.add_parser(
        "shards", help="cluster shard map + mirror delivery health"
    )
    shards.add_argument("--server", required=True)
    return parser


def main(argv: Sequence[str] | None = None, out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "serve":
        cluster = None
        if args.shards:
            from repro.cluster.ring import DEFAULT_VNODES, ShardMap

            shard_names = tuple(
                s.strip() for s in args.shards.split(",") if s.strip()
            )
            mirror_names = tuple(
                m.strip() for m in (args.mirrors or "").split(",") if m.strip()
            )
            # Each serve process carries the slice of topology it knows:
            # the ring members plus its own mirrors entry.  A combined
            # client can bootstrap from any master's answer.
            cluster = ShardMap(
                shards=shard_names,
                mirrors={args.name: mirror_names}
                if mirror_names and args.name in shard_names
                else {},
                vnodes=args.vnodes or DEFAULT_VNODES,
            )
        config = ServerConfig(
            name=args.name,
            role=args.role,
            backend=args.backend,
            flush_on_commit=args.flush_on_commit,
            tcp=args.tcp,
            tcp_host=args.host,
            tcp_port=args.port,
            profile_hz=args.profile_hz,
            cluster=cluster,
            mirror_of=args.mirror_of,
            mirrors=tuple(
                m.strip() for m in (args.mirrors or "").split(",") if m.strip()
            ),
        )
        installed_tracer = False
        if args.trace:
            from repro.obs.tracing import SpanSink, Tracer, install_tracer

            install_tracer(Tracer(sink=SpanSink()))
            installed_tracer = True
        server = RLSServer(config).start()
        address = server.tcp_address
        if address:
            print(f"serving {args.name} on {address[0]}:{address[1]}", file=out)
        else:
            print(f"serving {args.name} (in-process endpoint)", file=out)
        if config.mirror_of:
            print(f"read-only mirror of {config.mirror_of}", file=out)
        if config.mirrors:
            print(
                f"streaming to mirrors: {', '.join(config.mirrors)}", file=out
            )
        if args.trace:
            print("tracing enabled (tail-sampled span sink)", file=out)
        if args.profile_hz > 0:
            print(f"profiling enabled at {args.profile_hz:g} Hz", file=out)
        # Park on an Event rather than time.sleep: Event.wait leaves a
        # Python-level ``wait`` frame on the stack, so the sampling
        # profiler's stuck-thread detector sees this thread as idle.
        parked = threading.Event()
        try:
            if args.run_seconds is not None:
                parked.wait(args.run_seconds)
            else:  # pragma: no cover - interactive path
                while True:
                    parked.wait(3600)
        except KeyboardInterrupt:  # pragma: no cover
            pass
        finally:
            server.stop()
            if installed_tracer:
                from repro.obs.tracing import install_tracer

                install_tracer(None)
        return 0

    if args.command == "top":
        return _top(args, out)

    if args.command == "explain":
        # Takes a DSN, not a server endpoint: EXPLAIN runs inside the
        # engine's process, where the registered data sources live.
        return _explain(args, out)

    client = _open_client(args.server)
    try:
        return _dispatch(args, client, out)
    finally:
        client.close()


def _dispatch(args: argparse.Namespace, client: RLSClient, out) -> int:
    if args.command == "create":
        client.create(args.lfn, args.pfn)
        print("created", file=out)
    elif args.command == "add":
        client.add(args.lfn, args.pfn)
        print("added", file=out)
    elif args.command == "delete":
        client.delete(args.lfn, args.pfn)
        print("deleted", file=out)
    elif args.command == "query":
        if args.reverse:
            for lfn in client.get_lfns(args.name):
                print(lfn, file=out)
        elif has_wildcard(args.name):
            for lfn, pfn in client.query_wildcard(args.name):
                print(f"{lfn}\t{pfn}", file=out)
        else:
            for pfn in client.get_mappings(args.name):
                print(pfn, file=out)
    elif args.command == "rli-query":
        for lrc in client.rli_query(args.lfn):
            print(lrc, file=out)
    elif args.command == "bulk":
        return _bulk(args, client, out)
    elif args.command == "attr":
        return _attr(args, client, out)
    elif args.command == "admin":
        return _admin(args, client, out)
    elif args.command == "stats":
        return _stats(args, client, out)
    elif args.command == "trace":
        return _trace(args, client, out)
    elif args.command == "slowlog":
        return _slowlog(args, client, out)
    elif args.command == "slo":
        return _slo(args, client, out)
    elif args.command == "usage":
        return _usage(args, client, out)
    elif args.command == "profile":
        return _profile(args, client, out)
    elif args.command == "threads":
        return _threads(args, client, out)
    elif args.command == "flight":
        return _flight(args, client, out)
    elif args.command == "workload":
        return _workload(args, client, out)
    elif args.command == "shards":
        return _shards(args, client, out)
    return 0


def _bulk(args: argparse.Namespace, client: RLSClient, out) -> int:
    with open(args.path, "r", encoding="utf-8") as fh:
        lines = [line.split() for line in fh if line.strip()]
    if args.op == "query":
        result = client.bulk_query([line[0] for line in lines])
        for lfn, pfns in sorted(result.items()):
            for pfn in pfns:
                print(f"{lfn}\t{pfn}", file=out)
        return 0
    pairs = [(line[0], line[1]) for line in lines]
    op = {"create": client.bulk_create, "add": client.bulk_add,
          "delete": client.bulk_delete}[args.op]
    failures = op(pairs)
    for lfn, pfn, error in failures:
        print(f"FAILED {lfn} {pfn}: {error}", file=out)
    print(f"{len(pairs) - len(failures)}/{len(pairs)} succeeded", file=out)
    return 1 if failures else 0


def _attr(args: argparse.Namespace, client: RLSClient, out) -> int:
    words = args.args
    op = words[0]
    if op == "define":
        _name, objtype, attrtype = words[1], words[2], words[3]
        client.define_attribute(_name, objtype, attrtype)
        print("defined", file=out)
    elif op == "add":
        obj, name, objtype, value = words[1], words[2], words[3], words[4]
        client.add_attribute(obj, name, objtype, _coerce(value))
        print("added", file=out)
    elif op == "get":
        obj, objtype = words[1], words[2]
        for key, value in sorted(client.get_attributes(obj, objtype).items()):
            print(f"{key}={value}", file=out)
    elif op == "remove":
        obj, name, objtype = words[1], words[2], words[3]
        client.remove_attribute(obj, name, objtype)
        print("removed", file=out)
    else:
        print(f"unknown attr op {op!r}", file=out)
        return 2
    return 0


def _coerce(text: str):
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text


def _admin(args: argparse.Namespace, client: RLSClient, out) -> int:
    if args.op == "ping":
        print(client.ping(), file=out)
    elif args.op == "stats":
        print(json.dumps(client.stats(), indent=2, sort_keys=True), file=out)
    elif args.op == "update":
        duration = client.trigger_full_update()
        print(f"full update in {duration:.3f}s", file=out)
    elif args.op == "incremental":
        print(f"flushed {client.trigger_incremental_update()} changes", file=out)
    elif args.op == "expire":
        print(f"expired {client.expire_once()} entries", file=out)
    elif args.op == "add-rli":
        client.add_rli(args.extra[0], bloom=args.bloom, patterns=args.extra[1:])
        print("rli added", file=out)
    elif args.op == "remove-rli":
        client.remove_rli(args.extra[0])
        print("rli removed", file=out)
    elif args.op == "verify":
        problems = client.verify()
        for problem in problems:
            print(f"PROBLEM: {problem}", file=out)
        print("catalog healthy" if not problems else
              f"{len(problems)} problem(s) found", file=out)
        return 1 if problems else 0
    elif args.op == "list-rlis":
        for entry in client.list_rlis():
            flags = "bloom" if entry["bloom"] else "full"
            patterns = ",".join(entry["patterns"]) or "-"
            print(f"{entry['name']}\t{flags}\t{patterns}", file=out)
    return 0


def _format_metrics_summary(snapshot_dict: dict, out) -> None:
    """Readable counters + latency percentile table from a snapshot dict."""
    from repro.obs.metrics import MetricsSnapshot

    snapshot = MetricsSnapshot.from_dict(snapshot_dict)
    # Zero counters are registered-but-idle instruments; skip the noise.
    nonzero = {k: v for k, v in snapshot.counters.items() if v}
    if nonzero:
        print("counters:", file=out)
        for key in sorted(nonzero):
            print(f"  {key} = {nonzero[key]}", file=out)
    if snapshot.gauges:
        print("gauges:", file=out)
        for key in sorted(snapshot.gauges):
            print(f"  {key} = {snapshot.gauges[key]:g}", file=out)
    populated = {
        key: hist
        for key, hist in sorted(snapshot.histograms.items())
        if hist.count
    }
    if populated:
        width = max(len(key) for key in populated)
        print("latency histograms (seconds):", file=out)
        header = (
            f"  {'metric':<{width}}  {'count':>8}  {'p50':>10}  "
            f"{'p95':>10}  {'p99':>10}  {'max':>10}"
        )
        print(header, file=out)
        for key, hist in populated.items():
            print(
                f"  {key:<{width}}  {hist.count:>8}  "
                f"{hist.percentile(50):>10.6f}  {hist.percentile(95):>10.6f}  "
                f"{hist.percentile(99):>10.6f}  {hist.max:>10.6f}",
                file=out,
            )


def _watch_stats(args: argparse.Namespace, client: RLSClient, out) -> int:
    """``rls stats --watch N``: per-interval rates via snapshot subtraction."""
    from repro.obs.metrics import MetricsSnapshot, split_metric_key
    from repro.obs.timeseries import Scraper

    scraper = Scraper(
        lambda: MetricsSnapshot.from_dict(client.metrics()),
        interval=args.watch,
    )
    scraper.scrape_once()  # priming scrape: establishes the baseline
    rounds = 0
    try:
        while args.iterations is None or rounds < args.iterations:
            time.sleep(args.watch)
            result = scraper.scrape_once()
            if result is None:
                continue
            rounds += 1
            errors = sum(
                value
                for key, value in result.delta.counters.items()
                if split_metric_key(key)[0] == "rpc.errors"
            )
            line = (
                f"[{rounds}] ops/s={result.ops_rate():.1f} "
                f"errors/s={errors / result.interval:.1f}"
            )
            busiest = sorted(
                (
                    (value, key)
                    for key, value in result.delta.counters.items()
                    if value and split_metric_key(key)[0] == "rpc.requests"
                ),
                reverse=True,
            )[:3]
            if busiest:
                detail = " ".join(
                    f"{split_metric_key(key)[1].get('method', key)}="
                    f"{value / result.interval:.1f}/s"
                    for value, key in busiest
                )
                line += f"  top: {detail}"
            print(line, file=out)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    return 0


def _distributed_trace(client: RLSClient, trace_id: str) -> dict:
    """Client-side stitch: fan ``trace_fragments`` over the shard map.

    Falls back to the server-side ``admin_trace`` assembly when the
    connected server is not part of a cluster (no shard map).
    """
    from repro.obs.assemble import TraceAssembler, TraceSource

    info = client.shard_map()
    smap = info.get("shard_map") if isinstance(info, dict) else None
    if not smap or not smap.get("shards"):
        return client.trace(trace_id)
    endpoints: list[str] = []
    for shard in smap["shards"]:
        endpoints.append(shard)
        endpoints.extend(smap.get("mirrors", {}).get(shard, ()))

    def remote_fetch(name: str):
        def fetch(tid: str):
            peer = connect(name)
            try:
                return peer.trace_fragments(tid).get("spans", [])
            finally:
                peer.close()

        return fetch

    sources = [
        TraceSource(name=name, fetch=remote_fetch(name)) for name in endpoints
    ]
    # Resolve span-id references via the connected server so slowlog span
    # ids can be pasted directly.
    local = client.trace_fragments(trace_id)
    resolved = local.get("trace_id") or trace_id
    payload = TraceAssembler(sources).assemble(resolved).to_dict()
    payload["enabled"] = bool(local.get("enabled", True))
    return payload


def _trace(args: argparse.Namespace, client: RLSClient, out) -> int:
    if args.trace_id:
        from repro.obs.assemble import render_critical_path, render_trace

        if args.distributed:
            payload = _distributed_trace(client, args.trace_id)
        else:
            payload = client.trace(args.trace_id)
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True), file=out)
            return 0
        if not payload.get("enabled", True):
            print(
                "tracing not enabled on server "
                "(start it with: rls serve --trace)",
                file=out,
            )
            return 1
        print(render_trace(payload), file=out)
        if args.critical_path:
            print(render_critical_path(payload), file=out)
        return 0
    payload = client.traces(limit=args.limit)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0
    if not payload.get("enabled"):
        print(
            "tracing not enabled on server (start it with: rls serve --trace)",
            file=out,
        )
        return 1
    sink_stats = payload.get("stats", {})
    print(
        f"span sink: {sink_stats.get('retained', 0)} retained of "
        f"{sink_stats.get('offered', 0)} offered "
        f"(latency threshold {sink_stats.get('latency_threshold', 0.0):g}s)",
        file=out,
    )
    spans = payload.get("spans", [])
    if not spans:
        print("no retained spans", file=out)
        return 0
    for span_dict in spans:
        error = span_dict.get("error")
        reason = span_dict.get("reason") or (
            f"ERROR:{error}" if error else "slow"
        )
        tags = " ".join(
            f"{k}={v}" for k, v in sorted(span_dict.get("tags", {}).items())
        )
        print(
            f"{span_dict.get('duration', 0.0) * 1e3:10.3f}ms  "
            f"{span_dict.get('name', '?'):<20} {reason:<16} "
            f"trace={span_dict.get('trace_id') or '-'} {tags}",
            file=out,
        )
    return 0


def _explain(args: argparse.Namespace, out) -> int:
    from repro.db import odbc

    sql = args.sql.strip().rstrip(";")
    if sql.split(None, 1)[0].upper() != "EXPLAIN":
        prefix = "EXPLAIN " if args.static else "EXPLAIN ANALYZE "
        sql = prefix + sql
    connection = odbc.connect(args.dsn)
    try:
        for row in connection.execute(sql):
            print(row[0], file=out)
    finally:
        connection.close()
    return 0


def _slowlog(args: argparse.Namespace, client: RLSClient, out) -> int:
    payload = client.slow_queries(limit=args.limit)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0
    log_stats = payload.get("stats", {})
    state = "" if payload.get("enabled") else " (profiling disabled)"
    print(
        f"query log{state}: {log_stats.get('retained', 0)} retained of "
        f"{log_stats.get('offered', 0)} offered "
        f"(slow threshold {log_stats.get('slow_threshold', 0.0):g}s)",
        file=out,
    )
    queries = payload.get("queries", [])
    if not queries:
        print("no retained statements", file=out)
        return 0
    for entry in queries:
        error = entry.get("error")
        reason = f"ERROR:{error}" if error else "slow"
        span = entry.get("span_id") or "-"
        trace = entry.get("trace_id") or "-"
        print(
            f"{entry.get('duration', 0.0) * 1e3:10.3f}ms  "
            f"{entry.get('statement_class', '?'):<18} "
            f"rows={entry.get('rows_examined', 0)}/"
            f"{entry.get('rows_returned', 0)} "
            f"dead={entry.get('dead_index_hits', 0)} "
            f"who={entry.get('principal') or '-'} "
            f"trace={trace} span={span}  {entry.get('sql', '')}",
            file=out,
        )
        if args.plans:
            from repro.db.profiler import OpStats

            for op in entry.get("plan", []):
                print(f"    {OpStats(**op).render()}", file=out)
    return 0


def _fmt_sli(value) -> str:
    return "-" if value is None else f"{value * 100:7.3f}%"


def _print_slo(payload: dict, out) -> None:
    policy = payload.get("policy", {})
    ident = payload.get("endpoint") or "?"
    shard = payload.get("shard") or ""
    suffix = f" (shard {shard})" if shard and shard != ident else ""
    print(
        f"slo: {ident}{suffix}  targets: availability "
        f"{policy.get('availability_target', 0.0) * 100:g}%  latency "
        f"{policy.get('latency_target', 0.0) * 100:g}%",
        file=out,
    )
    header = (
        f"  {'class':<9} {'req(5m)':>8} {'avail(5m)':>9} {'latency(5m)':>11} "
        f"{'burn[fast]':>10} {'burn[slow]':>10} {'budget':>7}"
    )
    print(header, file=out)
    thresholds = policy.get("latency_thresholds", {})
    for cls, state in payload.get("classes", {}).items():
        windows = state.get("windows", {})
        fast = windows.get("fast_short", {})
        slow = windows.get("slow_short", {})
        burn_fast = max(
            fast.get("burn_availability", 0.0), fast.get("burn_latency", 0.0)
        )
        burn_slow = max(
            slow.get("burn_availability", 0.0), slow.get("burn_latency", 0.0)
        )
        budget = state.get("budget", {})
        remaining = min(
            budget.get("availability_budget_remaining", 1.0),
            budget.get("latency_budget_remaining", 1.0),
        )
        threshold = thresholds.get(cls)
        extra = f"  (<{threshold * 1e3:g}ms)" if threshold else ""
        print(
            f"  {cls:<9} {fast.get('requests', 0):>8} "
            f"{_fmt_sli(fast.get('availability')):>9} "
            f"{_fmt_sli(fast.get('latency_sli')):>11} "
            f"{burn_fast:>9.2f}x {burn_slow:>9.2f}x "
            f"{remaining * 100:>6.1f}%{extra}",
            file=out,
        )
    alerts = payload.get("alerts", [])
    for alert in alerts:
        print(
            f"  ALERT [{alert.get('severity', '?')}] "
            f"class={alert.get('class', '?')} {alert.get('kind', '?')} "
            f"{alert.get('window', '?')}-window burn "
            f"{alert.get('burn_short', 0.0):.1f}x/"
            f"{alert.get('burn_long', 0.0):.1f}x "
            f"(threshold {alert.get('threshold', 0.0):g}x)",
            file=out,
        )
    if not alerts:
        print("  no burn-rate alerts", file=out)


def _slo(args: argparse.Namespace, client: RLSClient, out) -> int:
    payload = client.slo()
    if not payload.get("enabled", True):
        print("slo recorder not enabled on server", file=out)
        return 1
    if args.json and args.watch is None:
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0
    _print_slo(payload, out)
    if args.watch is None:
        return 0
    rounds = 0
    try:
        while args.iterations is None or rounds < args.iterations:
            time.sleep(args.watch)
            payload = client.slo()
            rounds += 1
            parts = []
            for cls, state in payload.get("classes", {}).items():
                fast = state.get("windows", {}).get("fast_short", {})
                burn = max(
                    fast.get("burn_availability", 0.0),
                    fast.get("burn_latency", 0.0),
                )
                parts.append(f"{cls}={burn:.1f}x")
            alerts = payload.get("alerts", [])
            line = f"[{rounds}] burn: " + " ".join(parts)
            if alerts:
                worst = max(
                    (a.get("severity", "warning") for a in alerts),
                    key=lambda s: s == "critical",
                )
                line += f"  ALERTS={len(alerts)} ({worst})"
            print(line, file=out)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    return 0


def _principal_request_totals(payload: dict) -> dict[str, float]:
    """Requests per principal, summed across op classes."""
    totals: dict[str, float] = {}
    for principal, classes in payload.get("principals", {}).items():
        totals[principal] = sum(
            row.get("requests", 0.0) for row in classes.values()
        )
    return totals


def _fmt_hitters(rows: list[dict], key: str, limit: int = 5) -> str:
    """Render sketch rows as ``name=count`` (±error when inexact)."""
    parts = []
    for row in rows[:limit]:
        text = f"{row.get(key, '?')}={row.get('count', 0)}"
        if row.get("error"):
            text += f"±{row['error']}"
        parts.append(text)
    return " ".join(parts) or "-"


def _print_usage(payload: dict, out) -> None:
    sketch = payload.get("sketch", {})
    print(
        f"usage accounting: {payload.get('principals_tracked', 0)} "
        f"principals tracked (cap {payload.get('max_principals', 0)}), "
        f"{payload.get('overflowed', 0)} requests folded into <other>, "
        f"sketch capacity {sketch.get('capacity', 0)} "
        f"({sketch.get('offered', 0)} offered)",
        file=out,
    )
    principals = payload.get("principals", {})
    if not principals:
        print("no requests accounted", file=out)
        return
    fields = payload.get("fields", [])
    totals: dict[str, dict[str, float]] = {}
    for principal, classes in principals.items():
        row = dict.fromkeys(fields, 0.0)
        for vec in classes.values():
            for name in fields:
                row[name] = row.get(name, 0.0) + vec.get(name, 0.0)
        totals[principal] = row
    header = (
        f"  {'principal':<24} {'req':>8} {'err':>6} {'wall(s)':>9} "
        f"{'queue(s)':>9} {'rows':>9} {'bytes in/out':>17} {'wal':>9}"
    )
    print(header, file=out)
    for principal, row in sorted(
        totals.items(), key=lambda kv: -kv[1].get("requests", 0.0)
    ):
        bytes_io = f"{row.get('bytes_in', 0.0):.0f}/{row.get('bytes_out', 0.0):.0f}"
        print(
            f"  {principal:<24} {row.get('requests', 0.0):>8.0f} "
            f"{row.get('errors', 0.0):>6.0f} {row.get('wall_time', 0.0):>9.3f} "
            f"{row.get('queue_wait', 0.0):>9.3f} "
            f"{row.get('rows_examined', 0.0):>9.0f} {bytes_io:>17} "
            f"{row.get('wal_bytes', 0.0):>9.0f}",
            file=out,
        )
    print(
        f"  top principals: "
        f"{_fmt_hitters(payload.get('top_principals', []), 'principal')}",
        file=out,
    )
    print(
        f"  hot prefixes:   "
        f"{_fmt_hitters(payload.get('top_prefixes', []), 'prefix')}",
        file=out,
    )


def _usage(args: argparse.Namespace, client: RLSClient, out) -> int:
    payload = client.usage()
    if not payload.get("enabled", True):
        print("usage accounting not enabled on server", file=out)
        return 1
    if args.json and args.watch is None:
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0
    _print_usage(payload, out)
    if args.watch is None:
        return 0
    previous = _principal_request_totals(payload)
    rounds = 0
    try:
        while args.iterations is None or rounds < args.iterations:
            time.sleep(args.watch)
            payload = client.usage()
            rounds += 1
            current = _principal_request_totals(payload)
            rates = sorted(
                (
                    ((count - previous.get(principal, 0.0)) / args.watch,
                     principal)
                    for principal, count in current.items()
                ),
                reverse=True,
            )
            previous = current
            detail = " ".join(
                f"{principal}={rate:.1f}/s"
                for rate, principal in rates[:4]
                if rate > 0
            )
            print(f"[{rounds}] req rate: {detail or 'idle'}", file=out)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    return 0


def _profile(args: argparse.Namespace, client: RLSClient, out) -> int:
    from repro.obs.profile import StackProfile

    payload = client.profile()
    if args.seconds is not None and payload.get("enabled"):
        # Window mode: two cumulative snapshots subtracted, same algebra
        # as the metrics delta in `rls stats --watch`.
        before = StackProfile.from_dict(payload.get("profile", {}))
        time.sleep(args.seconds)
        payload = client.profile()
        window = StackProfile.from_dict(payload.get("profile", {})).delta(before)
        payload = dict(
            payload,
            profile=window.to_dict(),
            samples=window.samples,
            roles=window.by_role(),
            window_seconds=args.seconds,
        )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0
    if not payload.get("enabled"):
        print(
            "profiler not enabled on server (set ServerConfig.profile_hz > 0)",
            file=out,
        )
        return 1
    profile = StackProfile.from_dict(payload.get("profile", {}))
    if args.folded:
        folded = profile.render_folded()
        if folded:
            print(folded, file=out)
        return 0
    window = (
        f" over {payload['window_seconds']:g}s"
        if "window_seconds" in payload
        else ""
    )
    print(
        f"profiler: {payload.get('hz', 0):g} Hz, "
        f"{payload.get('samples', 0)} samples{window}, "
        f"duty cycle {payload.get('duty_cycle', 0.0) * 100:.2f}%",
        file=out,
    )
    roles = payload.get("roles", {})
    if roles:
        detail = "  ".join(
            f"{role}={count}"
            for role, count in sorted(roles.items(), key=lambda kv: -kv[1])
        )
        print(f"samples by role: {detail}", file=out)
    hottest = profile.top(20)
    if not hottest:
        print("no samples", file=out)
        return 0
    print("hottest stacks:", file=out)
    for folded, count in hottest:
        print(f"{count:>8}  {folded}", file=out)
    return 0


def _threads(args: argparse.Namespace, client: RLSClient, out) -> int:
    payload = client.threads()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0
    threads = payload.get("threads", [])
    print(f"{len(threads)} threads:", file=out)
    for entry in threads:
        state = "idle" if entry.get("idle") else "busy"
        span = entry.get("span_id") or "-"
        frames = " < ".join(entry.get("frames", [])[:4]) or "?"
        print(
            f"  [{entry.get('ident')}] {entry.get('role', 'other'):<12} "
            f"{state:<5} span={span:<8} "
            f"run={entry.get('consecutive_top', 0):<4} {frames}",
            file=out,
        )
    detections = payload.get("detections", [])
    for detection in detections:
        print(
            f"DETECTION [{detection.get('severity', '?')}] "
            f"{detection.get('summary', '')}",
            file=out,
        )
    if not detections:
        print("no stuck threads detected", file=out)
    return 0


def _flight(args: argparse.Namespace, client: RLSClient, out) -> int:
    payload = client.flight(limit=args.limit)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0
    if not payload.get("enabled"):
        print(
            "flight recorder not enabled on server "
            "(set ServerConfig.flight_capacity > 0)",
            file=out,
        )
        return 1
    ring_stats = payload.get("stats", {})
    print(
        f"flight recorder: {ring_stats.get('recent', 0)} events retained of "
        f"{ring_stats.get('recorded', 0)} recorded "
        f"({ring_stats.get('errors', 0)} errors)",
        file=out,
    )
    events = payload.get("events", [])
    if not events:
        print("no recorded events", file=out)
        return 0
    for event in events:
        marker = "!" if event.get("error") else " "
        span = event.get("span_id") or "-"
        data = " ".join(
            f"{k}={v}" for k, v in sorted(event.get("data", {}).items())
        )
        print(
            f"{marker} #{event.get('seq'):<6} {event.get('kind', '?'):<16} "
            f"span={span:<8} {event.get('detail', '')} {data}".rstrip(),
            file=out,
        )
    dump = payload.get("last_dump")
    if dump:
        print(
            f"last error dump: {dump.get('reason', '?')} "
            f"({len(dump.get('events', []))} events frozen)",
            file=out,
        )
    return 0


def _top(args: argparse.Namespace, out) -> int:
    """``rls top``: live per-node and cluster rates from a ClusterCollector."""
    from repro.obs.collector import ClusterCollector, client_source

    specs = [spec.strip() for spec in args.servers.split(",") if spec.strip()]
    if not specs:
        print("no servers given", file=out)
        return 2
    clients: list[RLSClient] = []
    try:
        sources = []
        for spec in specs:
            client = _open_client(spec)
            clients.append(client)
            sources.append(client_source(spec, client))
        collector = ClusterCollector(sources, interval=args.interval)
        collector.scrape_once()  # priming round: baselines every node
        rounds = 0
        try:
            while args.iterations is None or rounds < args.iterations:
                time.sleep(args.interval)
                sample = collector.scrape_once()
                rounds += 1
                print(
                    f"round {rounds}: nodes up {sample.nodes_up}/"
                    f"{len(sample.nodes)}  cluster "
                    f"ops/s={sample.cluster_ops_rate:.1f}  "
                    f"wal queue={sum(n.wal_queue_depth for n in sample.nodes.values() if n.up):g}  "
                    f"staleness={max((n.rli_staleness_age for n in sample.nodes.values() if n.up), default=0.0):.1f}s",
                    file=out,
                )
                for name in specs:
                    node = sample.nodes[name]
                    if not node.up:
                        print(f"  {name:<24} DOWN ({node.error})", file=out)
                        continue
                    extra = ""
                    if node.rli_staleness_age:
                        extra = f"  staleness={node.rli_staleness_age:.1f}s"
                    if node.wal_queue_depth:
                        extra += f"  wal_queue={node.wal_queue_depth:g}"
                    print(
                        f"  {name:<24} ops/s={node.ops_rate:>8.1f}{extra}",
                        file=out,
                    )
                if args.principals or args.prefixes:
                    from repro.obs.usage import merge_usage_dicts

                    payloads = []
                    for client in clients:
                        try:
                            payloads.append(client.usage())
                        except Exception:
                            continue  # a down node loses its sketch rows
                    merged = merge_usage_dicts(payloads)
                    if args.principals:
                        print(
                            f"  top principals: "
                            f"{_fmt_hitters(merged.get('top_principals', []), 'principal')}",
                            file=out,
                        )
                    if args.prefixes:
                        print(
                            f"  hot prefixes:   "
                            f"{_fmt_hitters(merged.get('top_prefixes', []), 'prefix')}",
                            file=out,
                        )
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
        return 0
    finally:
        for client in clients:
            client.close()


def _stats(args: argparse.Namespace, client: RLSClient, out) -> int:
    if args.watch is not None:
        return _watch_stats(args, client, out)
    if args.format == "text":
        print(client.metrics_text(), file=out, end="")
        return 0
    stats = client.stats()
    if args.format == "json":
        print(json.dumps(stats, indent=2, sort_keys=True), file=out)
        return 0
    roles = "+".join(
        role for role, on in stats.get("roles", {}).items() if on
    ) or "none"
    print(f"server {stats.get('name')} ({roles}, "
          f"{stats.get('backend')} backend)", file=out)
    print(f"requests served: {stats.get('requests_served')}  "
          f"errors: {stats.get('errors_returned')}", file=out)
    for section in ("lrc", "rli", "updates"):
        if section in stats:
            fields = "  ".join(
                f"{k}={v}"
                for k, v in sorted(stats[section].items())
                if not isinstance(v, dict)
            )
            print(f"{section}: {fields}", file=out)
    for name, health in sorted(
        stats.get("updates", {}).get("targets", {}).items()
    ):
        status = "healthy" if health.get("healthy") else "UNHEALTHY"
        line = (f"  target {name}: {status}  backlog={health.get('backlog', 0)}"
                f"  retries={health.get('retries', 0)}")
        if health.get("needs_full"):
            line += "  needs_full"
        if health.get("last_error"):
            line += f"  last_error={health['last_error']}"
        print(line, file=out)
    _format_metrics_summary(stats.get("metrics", {}), out)
    return 0


def _workload(args: argparse.Namespace, client: RLSClient, out) -> int:
    from repro.obs.metrics import MetricsSnapshot
    from repro.workload.driver import LoadDriver
    from repro.workload.names import MappingSet, pfn_for

    names = MappingSet(
        count=args.count, prefix=args.prefix, seed=args.seed
    )
    driver = LoadDriver(
        server_name=args.server,
        clients=args.clients,
        threads_per_client=args.threads,
        total_operations=args.operations,
        connect_fn=lambda name, cred: _open_client(name),
    )
    if args.op == "add":
        lfns = names.lfns()
        if args.operations > len(lfns):
            print(
                f"--operations {args.operations} exceeds namespace size "
                f"{len(lfns)}; raise --count",
                file=out,
            )
            return 2
        operation = LoadDriver.add_op(lfns, pfn_for)
    elif args.op == "delete":
        operation = LoadDriver.delete_op(names.lfns(), pfn_for)
    elif args.op == "rli-query":
        operation = LoadDriver.rli_query_op(
            names.random_lfns(args.operations)
        )
    else:
        operation = LoadDriver.query_op(names.random_lfns(args.operations))
    before = None
    if args.metrics:
        before = MetricsSnapshot.from_dict(client.metrics())
    result = driver.run(operation)
    print(
        f"{result.operations} ops in {result.elapsed:.3f}s = "
        f"{result.rate:.1f} ops/s ({result.errors} errors, seed={args.seed})",
        file=out,
    )
    if args.metrics and before is not None:
        after = MetricsSnapshot.from_dict(client.metrics())
        delta = after.delta(before)
        _format_metrics_summary(delta.to_dict(), out)
    return 1 if result.errors else 0


def _shards(args: argparse.Namespace, client: RLSClient, out) -> int:
    """Print the server's shard map and its mirror delivery health."""
    info = client.shard_map()
    print(f"server: {info['self']}", file=out)
    if info.get("mirror_of"):
        print(f"role:   read-only mirror of {info['mirror_of']}", file=out)
    shard_map = info.get("shard_map")
    if not shard_map:
        print("no shard map configured (not a cluster member)", file=out)
        return 0
    mirrors = shard_map.get("mirrors", {})
    print(
        f"ring:   {len(shard_map['shards'])} shards, "
        f"{shard_map['vnodes']} vnodes/shard, "
        f"version {shard_map['version']}",
        file=out,
    )
    for shard in shard_map["shards"]:
        names = mirrors.get(shard, [])
        suffix = f" -> mirrors: {', '.join(names)}" if names else ""
        print(f"  shard {shard}{suffix}", file=out)
    delivery = client.mirror_list()
    if delivery:
        print("mirror delivery:", file=out)
        for name, state in delivery.items():
            status = "healthy" if state["healthy"] else "UNHEALTHY"
            print(
                f"  {name}: {status}, backlog={state['backlog']}, "
                f"retries={state['retries']}"
                + (
                    f", last_error={state['last_error']}"
                    if state["last_error"]
                    else ""
                ),
                file=out,
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
