"""Sharded LRC namespace: consistent-hash ring, mirrors, routing client.

The cluster package scales the RLS namespace horizontally (§6 of the
paper measures a single LRC saturating; this subsystem spreads that load):

- :mod:`repro.cluster.ring` — consistent-hash placement of LFNs onto
  shard masters (:class:`HashRing`) plus the declarative cluster topology
  (:class:`ShardMap`).
- :mod:`repro.cluster.mirror` — shard masters stream replica mappings to
  read-only mirror LRCs, reusing the soft-state delivery machinery.
- :mod:`repro.cluster.combined` — a DIRAC-style combined client routing
  writes to the owning shard master and fanning reads across mirrors
  with health-tracked failover.
"""

from repro.cluster.combined import RO_METHODS, WRITE_METHODS, CombinedClient
from repro.cluster.mirror import MirrorIngest, MirrorManager
from repro.cluster.ring import DEFAULT_VNODES, HashRing, ShardMap

__all__ = [
    "CombinedClient",
    "DEFAULT_VNODES",
    "HashRing",
    "MirrorIngest",
    "MirrorManager",
    "RO_METHODS",
    "ShardMap",
    "WRITE_METHODS",
]
