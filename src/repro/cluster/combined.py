"""Combined routing client for a sharded LRC namespace.

:class:`CombinedClient` presents one logical catalog over N shard masters
and their read-only mirrors, after the DIRAC
``LcgFileCatalogCombinedClient`` pattern: the client declares which
catalog methods are reads and which are writes, sends every write to the
shard master that owns the LFN (consistent-hash placement via
:class:`~repro.cluster.ring.HashRing`), and fans reads across the shard's
mirrors — shuffled once per client so load spreads — failing over to the
next mirror and ultimately back to the master when an endpoint dies.

Failover discipline: a *transport* failure (endpoint gone, RPC channel
broken) marks the endpoint unhealthy with a backoff and tries the next
one; a typed :class:`~repro.core.errors.RLSError` is a genuine answer
from a live server (e.g. ``MappingNotFoundError``) and propagates
immediately.  When every endpoint of a shard is down the client raises
:class:`~repro.core.errors.ShardRoutingError` naming the shard.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.cluster.ring import ShardMap
from repro.core.client import _objtype_wire
from repro.core.errors import RLSError, ShardRoutingError
from repro.obs import tracing
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

#: Scatter-gather methods with a direct RPC equivalent; used by the
#: pipelined fast path to put one request per shard in flight at once.
_SCATTER_RPC = {
    "get_lfns": "lrc_get_lfns",
    "query_wildcard": "lrc_query_wildcard",
    "lfn_count": "lrc_lfn_count",
    "mapping_count": "lrc_mapping_count",
    "query_by_attribute": "lrc_attr_query",
}

#: Catalog methods the client may serve from a read-only mirror.
RO_METHODS = (
    "get_mappings",
    "get_lfns",
    "query_wildcard",
    "bulk_query",
    "exists",
    "lfn_count",
    "mapping_count",
    "get_attributes",
    "query_by_attribute",
)

#: Catalog methods that must reach the owning shard master.
WRITE_METHODS = (
    "create",
    "add",
    "delete",
    "bulk_create",
    "bulk_add",
    "bulk_delete",
    "define_attribute",
    "undefine_attribute",
    "add_attribute",
    "modify_attribute",
    "remove_attribute",
    "bulk_add_attribute",
)

#: Seconds an endpoint stays benched after a transport failure before the
#: client tries it again (doubles per consecutive failure, capped).
_RETRY_BASE = 1.0
_RETRY_CAP = 30.0


@dataclass
class EndpointHealth:
    """Per-endpoint client-side failure bookkeeping."""

    name: str
    healthy: bool = True
    consecutive_failures: int = 0
    next_retry_at: float = 0.0
    failures: int = 0
    last_error: str | None = None

    def to_dict(self) -> dict:
        return {
            "healthy": self.healthy,
            "consecutive_failures": self.consecutive_failures,
            "failures": self.failures,
            "last_error": self.last_error,
        }


def _default_connect(name: str):
    from repro.core.client import connect

    return connect(name)


class CombinedClient:
    """One logical RLS catalog over shard masters plus mirror replicas."""

    def __init__(
        self,
        shard_map: ShardMap,
        connect_fn: Callable[[str], Any] | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
        rng: random.Random | None = None,
    ) -> None:
        if not shard_map.shards:
            raise ShardRoutingError("shard map is empty")
        self.map = shard_map
        self.ring = shard_map.ring()
        self.connect_fn = connect_fn or _default_connect
        self.clock = clock
        rng = rng or random.Random()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._clients: dict[str, Any] = {}
        self._health: dict[str, EndpointHealth] = {}
        # Per-shard read order: mirrors shuffled once per client (so a fleet
        # of clients spreads load), master always last as the fallback.
        self._read_order: dict[str, list[str]] = {}
        for shard in shard_map.shards:
            mirrors = list(shard_map.mirrors_of(shard))
            rng.shuffle(mirrors)
            self._read_order[shard] = mirrors + [shard]
            for name in self._read_order[shard]:
                self._health.setdefault(name, EndpointHealth(name=name))
        self._m_routes: dict[tuple[str, str], Any] = {}
        self._m_failovers: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Endpoint management
    # ------------------------------------------------------------------

    def _client(self, name: str):
        client = self._clients.get(name)
        if client is None:
            client = self._clients[name] = self.connect_fn(name)
        return client

    def _drop_client(self, name: str) -> None:
        client = self._clients.pop(name, None)
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    def _mark_failed(self, name: str, exc: BaseException) -> None:
        health = self._health[name]
        health.healthy = False
        health.failures += 1
        health.consecutive_failures += 1
        health.last_error = f"{type(exc).__name__}: {exc}"
        backoff = min(
            _RETRY_BASE * (2 ** (health.consecutive_failures - 1)), _RETRY_CAP
        )
        health.next_retry_at = self.clock() + backoff
        self._drop_client(name)

    def _mark_ok(self, name: str) -> None:
        health = self._health[name]
        health.healthy = True
        health.consecutive_failures = 0
        health.next_retry_at = 0.0

    def _count_route(self, shard: str, kind: str) -> None:
        key = (shard, kind)
        counter = self._m_routes.get(key)
        if counter is None:
            counter = self._m_routes[key] = self.metrics.counter(
                "cluster.routes", shard=shard, kind=kind
            )
        counter.inc()

    def _count_failover(self, shard: str) -> None:
        counter = self._m_failovers.get(shard)
        if counter is None:
            counter = self._m_failovers[shard] = self.metrics.counter(
                "cluster.failovers", shard=shard
            )
        counter.inc()

    # ------------------------------------------------------------------
    # Routing primitives
    # ------------------------------------------------------------------

    def _write(self, shard: str, method: str, *args: Any) -> Any:
        """Run a write on the shard master; no failover (mirrors reject)."""
        self._count_route(shard, "write")
        # Span tags mirror the counters exactly: endpoint= is the server
        # that answered, failover= the cluster.failovers increments this
        # call contributed — so a stitched trace and the metrics agree.
        with tracing.span(
            "cluster.write", method=method, shard=shard,
            endpoint=shard, failover=0,
        ):
            try:
                result = getattr(self._client(shard), method)(*args)
            except RLSError:
                raise  # genuine server answer (exists/not-found/read-only)
            except Exception as exc:
                self._mark_failed(shard, exc)
                raise ShardRoutingError(
                    f"shard master {shard!r} unreachable for {method}: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            self._mark_ok(shard)
            return result

    def _read(self, shard: str, method: str, *args: Any) -> Any:
        """Run a read on the shard, preferring mirrors, master as fallback.

        Benched endpoints (failed recently, backoff not expired) are
        skipped on the first pass but retried as a last resort — a stale
        bench must never fail a request that some endpoint could serve.
        """
        self._count_route(shard, "read")
        order = self._read_order[shard]
        now = self.clock()
        first = [
            n
            for n in order
            if self._health[n].healthy or now >= self._health[n].next_retry_at
        ]
        benched = [n for n in order if n not in first]
        last_exc: BaseException | None = None
        with tracing.span(
            "cluster.read", method=method, shard=shard
        ) as span:
            failovers = 0
            for name in first + benched:
                try:
                    result = getattr(self._client(name), method)(*args)
                except RLSError:
                    raise  # a live server answered; not a routing failure
                except Exception as exc:
                    last_exc = exc
                    self._mark_failed(name, exc)
                    self._count_failover(shard)
                    failovers += 1
                    continue
                self._mark_ok(name)
                span.set_tag("endpoint", name)
                span.set_tag("mirror", name != shard)
                span.set_tag("failover", failovers)
                return result
            span.set_tag("failover", failovers)
            raise ShardRoutingError(
                f"no endpoint of shard {shard!r} reachable for {method} "
                f"(tried {order})"
            ) from last_exc

    def _scatter(self, method: str, *args: Any) -> list[Any]:
        """Run a read on every shard (mirror-first each); list of results.

        Over pipelined (TCP v2) connections the per-shard requests go out
        together — submit to every shard, flush, then collect — so the
        scatter takes ~one round trip instead of one per shard.  Falls
        back to the serial mirror-failover path per shard (or wholesale,
        when an endpoint's client is not pipelined).
        """
        with tracing.span(
            "cluster.scatter", method=method, shards=len(self.map.shards)
        ) as span:
            results = self._scatter_pipelined(method, *args)
            span.set_tag("pipelined", results is not None)
            if results is None:
                results = []
                for shard in self.map.shards:
                    self._count_route(shard, "scatter")
                    results.append(self._read(shard, method, *args))
            return results

    def _scatter_pipelined(self, method: str, *args: Any) -> list[Any] | None:
        """One in-flight request per shard; ``None`` means fall back serial."""
        rpc_method = _SCATTER_RPC.get(method)
        if rpc_method is None or len(self.map.shards) <= 1:
            return None
        if method == "query_by_attribute":
            name, objtype, value, op = args
            rpc_args: tuple[Any, ...] = (name, _objtype_wire(objtype), value, op)
        else:
            rpc_args = args
        plan: list[tuple[str, str, Any]] = []
        now = self.clock()
        for shard in self.map.shards:
            # Same endpoint preference as _read: healthy (or retryable)
            # mirrors first, master last.
            order = self._read_order[shard]
            candidates = [
                n
                for n in order
                if self._health[n].healthy or now >= self._health[n].next_retry_at
            ] or list(order)
            endpoint = candidates[0]
            try:
                client = self._client(endpoint)
            except Exception:
                return None
            rpc = getattr(client, "rpc", None)
            if rpc is None or not getattr(rpc, "pipelined", False):
                return None
            plan.append((shard, endpoint, rpc))
        for shard, _, _ in plan:
            self._count_route(shard, "scatter")
        pendings = [
            rpc.call_async(rpc_method, *rpc_args) for _, _, rpc in plan
        ]
        for _, _, rpc in plan:
            try:
                rpc.flush()
            except Exception:
                # The failure is captured in that channel's pendings and
                # handled per shard below.
                pass
        results: list[Any] = []
        for (shard, endpoint, _), pending in zip(plan, pendings):
            try:
                results.append(pending.result())
            except RLSError:
                raise  # a live server answered; not a routing failure
            except Exception as exc:
                # Endpoint trouble: bench it and run this shard through
                # the full mirror-failover read path.
                self._mark_failed(endpoint, exc)
                self._count_failover(shard)
                results.append(self._read(shard, method, *args))
            else:
                self._mark_ok(endpoint)
        return results

    def _broadcast_write(self, method: str, *args: Any) -> list[Any]:
        """Run a write on every shard master (schema-like operations)."""
        return [self._write(shard, method, *args) for shard in self.map.shards]

    def _group_pairs(
        self, pairs: Sequence[tuple[str, str]]
    ) -> dict[str, list[tuple[str, str]]]:
        grouped: dict[str, list[tuple[str, str]]] = {}
        for lfn, pfn in pairs:
            grouped.setdefault(self.ring.owner(lfn), []).append((lfn, pfn))
        return grouped

    # ------------------------------------------------------------------
    # Mapping writes (owner-routed)
    # ------------------------------------------------------------------

    def create(self, lfn: str, pfn: str) -> None:
        self._write(self.ring.owner(lfn), "create", lfn, pfn)

    def add(self, lfn: str, pfn: str) -> None:
        self._write(self.ring.owner(lfn), "add", lfn, pfn)

    def delete(self, lfn: str, pfn: str) -> None:
        self._write(self.ring.owner(lfn), "delete", lfn, pfn)

    def _bulk_write(
        self, method: str, pairs: Sequence[tuple[str, str]]
    ) -> list[tuple[str, str, str]]:
        failures: list[tuple[str, str, str]] = []
        for shard, group in self._group_pairs(pairs).items():
            failures.extend(self._write(shard, method, group))
        return failures

    def bulk_create(self, pairs: Sequence[tuple[str, str]]) -> list[tuple[str, str, str]]:
        return self._bulk_write("bulk_create", pairs)

    def bulk_add(self, pairs: Sequence[tuple[str, str]]) -> list[tuple[str, str, str]]:
        return self._bulk_write("bulk_add", pairs)

    def bulk_delete(self, pairs: Sequence[tuple[str, str]]) -> list[tuple[str, str, str]]:
        return self._bulk_write("bulk_delete", pairs)

    # ------------------------------------------------------------------
    # Reads (mirror-first with failover)
    # ------------------------------------------------------------------

    def get_mappings(self, lfn: str) -> list[str]:
        return self._read(self.ring.owner(lfn), "get_mappings", lfn)

    def exists(self, lfn: str) -> bool:
        return self._read(self.ring.owner(lfn), "exists", lfn)

    def bulk_query(self, lfns: Sequence[str]) -> dict[str, list[str]]:
        merged: dict[str, list[str]] = {}
        for shard, group in self.ring.partition(lfns).items():
            merged.update(self._read(shard, "bulk_query", group))
        return merged

    def get_lfns(self, pfn: str) -> list[str]:
        """PFNs are not ring-placed: gather matches from every shard."""
        out: list[str] = []
        for part in self._scatter("get_lfns", pfn):
            out.extend(part)
        return out

    def query_wildcard(self, pattern: str) -> list[tuple[str, str]]:
        out: list[tuple[str, str]] = []
        for part in self._scatter("query_wildcard", pattern):
            out.extend(tuple(p) for p in part)
        return out

    def lfn_count(self) -> int:
        return sum(self._scatter("lfn_count"))

    def mapping_count(self) -> int:
        return sum(self._scatter("mapping_count"))

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------

    def define_attribute(self, name: str, objtype, attrtype: str) -> int:
        """Attribute definitions are schema: broadcast to every master."""
        return self._broadcast_write("define_attribute", name, objtype, attrtype)[0]

    def undefine_attribute(self, name: str, objtype) -> None:
        self._broadcast_write("undefine_attribute", name, objtype)

    def add_attribute(self, obj: str, name: str, objtype, value: Any) -> None:
        self._write(self.ring.owner(obj), "add_attribute", obj, name, objtype, value)

    def modify_attribute(self, obj: str, name: str, objtype, value: Any) -> None:
        self._write(self.ring.owner(obj), "modify_attribute", obj, name, objtype, value)

    def remove_attribute(self, obj: str, name: str, objtype) -> None:
        self._write(self.ring.owner(obj), "remove_attribute", obj, name, objtype)

    def get_attributes(self, obj: str, objtype) -> dict[str, Any]:
        return self._read(self.ring.owner(obj), "get_attributes", obj, objtype)

    def query_by_attribute(
        self, name: str, objtype, value: Any = None, op: str = "="
    ) -> list[tuple[str, Any]]:
        out: list[tuple[str, Any]] = []
        for part in self._scatter("query_by_attribute", name, objtype, value, op):
            out.extend(tuple(p) for p in part)
        return out

    def bulk_add_attribute(
        self, triples: Sequence[tuple[str, str, Any]], objtype
    ) -> list[tuple[str, str, str]]:
        grouped: dict[str, list[tuple[str, str, Any]]] = {}
        for obj, name, value in triples:
            grouped.setdefault(self.ring.owner(obj), []).append((obj, name, value))
        failures: list[tuple[str, str, str]] = []
        for shard, group in grouped.items():
            failures.extend(self._write(shard, "bulk_add_attribute", group, objtype))
        return failures

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def owner(self, lfn: str) -> str:
        """Shard master owning ``lfn`` under the current ring."""
        return self.ring.owner(lfn)

    def shard_map(self) -> ShardMap:
        return self.map

    def health(self) -> dict[str, dict]:
        """Client-side endpoint health, keyed by endpoint name."""
        return {
            name: h.to_dict() for name, h in sorted(self._health.items())
        }

    def close(self) -> None:
        for name in list(self._clients):
            self._drop_client(name)

    def __enter__(self) -> "CombinedClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def combined_from_server(client) -> CombinedClient:
    """Bootstrap a :class:`CombinedClient` from any cluster member.

    Asks the server for its ``admin_shard_map`` (every member carries the
    topology in its :class:`~repro.core.config.ServerConfig`) and builds a
    routing client from the answer.
    """
    info = client.shard_map()
    data = info.get("shard_map") if isinstance(info, dict) else None
    if not data:
        raise ShardRoutingError(
            "server has no shard map configured (not a cluster member?)"
        )
    return CombinedClient(ShardMap.from_dict(data))
