"""Shard-aware replication: master → read-only mirror LRC streaming.

Each shard master streams its (lfn, pfn) replica mappings to read-only
mirror LRCs, reusing the soft-state delivery machinery of
:mod:`repro.core.updates`: the same :class:`TargetDeliveryState` per-target
bookkeeping (health, backlog, ``needs_full``), the same merge-before-send
semantics (a failed push never loses changes that raced in behind it), and
the same :class:`~repro.net.retry.RetryPolicy` exponential backoff driven
from a background :class:`~repro.core.updates.UpdateThread`.

The differences from LRC→RLI updates are the payload and the freshness
contract: mirrors receive full ``(lfn, pfn)`` pairs (they answer queries
directly, not just "which LRC might know"), and they run much hotter —
mirror staleness is user-visible, so each mirror exports a
``mirror.staleness_age{shard=...}`` gauge using the same machinery as the
RLI's ``rli.staleness_age``, which means the staleness-burn detector in
:mod:`repro.obs.analyze` fires on a stalled mirror feed unchanged.

Master side: :class:`MirrorManager` (duck-type compatible with
``UpdateThread``).  Mirror side: :class:`MirrorIngest` applies the stream
idempotently — redelivery after a lost ack must not error.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Protocol, Sequence

from repro.core.errors import MappingExistsError, MappingNotFoundError
from repro.core.lrc import LocalReplicaCatalog
from repro.core.updates import TargetDeliveryState, UpdatePolicy
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

Pair = tuple[str, str]


class MirrorSink(Protocol):
    """Receiving side of a mirror feed (a mirror LRC, however reached)."""

    def full_sync(self, master: str, pairs: Sequence[Pair]) -> None: ...

    def incremental(
        self, master: str, added: Sequence[Pair], removed: Sequence[Pair]
    ) -> None: ...


class RPCMirrorSink:
    """Sink calling a mirror server through an :class:`~repro.net.rpc.RPCClient`."""

    def __init__(self, client) -> None:  # repro.net.rpc.RPCClient
        self.client = client

    def full_sync(self, master: str, pairs: Sequence[Pair]) -> None:
        self.client.call("mirror_full_sync", master, [list(p) for p in pairs])

    def incremental(
        self, master: str, added: Sequence[Pair], removed: Sequence[Pair]
    ) -> None:
        self.client.call(
            "mirror_incremental",
            master,
            [list(p) for p in added],
            [list(p) for p in removed],
        )


class DirectMirrorSink:
    """Sink writing straight into an in-process :class:`MirrorIngest`."""

    def __init__(self, ingest: "MirrorIngest") -> None:
        self.ingest = ingest

    def full_sync(self, master: str, pairs: Sequence[Pair]) -> None:
        self.ingest.apply_full(master, pairs)

    def incremental(
        self, master: str, added: Sequence[Pair], removed: Sequence[Pair]
    ) -> None:
        self.ingest.apply_incremental(master, added, removed)


def resolve_mirror_sink(name: str) -> MirrorSink:
    """Resolve a mirror name to a sink via static membership, falling back
    to the in-process transport registry (mirrors that never registered a
    membership entry)."""
    from repro.core.errors import UpdateTargetError
    from repro.core.membership import DEFAULT
    from repro.net.rpc import RPCClient
    from repro.net.transport import connect_local

    try:
        return RPCMirrorSink(DEFAULT.connect(name))
    except UpdateTargetError:
        return RPCMirrorSink(RPCClient(connect_local(name)))


@dataclass
class MirrorStats:
    """Counters for observability and the benchmarks."""

    full_syncs: int = 0
    incremental_pushes: int = 0
    pairs_sent: int = 0
    errors: int = 0
    retries: int = 0


class MirrorManager:
    """Master side: tracks mapping changes, streams them to mirror LRCs.

    Duck-type compatible with :class:`~repro.core.updates.UpdateThread`
    (``lrc``, ``tick()``, ``metrics``, ``_lock``, ``stats.errors``), so
    the server reuses the same background scheduler for both feeds.
    """

    def __init__(
        self,
        lrc: LocalReplicaCatalog,
        sink_resolver: Callable[[str], MirrorSink] | None = None,
        policy: UpdatePolicy | None = None,
        push_interval: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
        rng: Callable[[], float] = random.random,
        flight=None,
    ) -> None:
        self.lrc = lrc
        self.sink_resolver = sink_resolver or resolve_mirror_sink
        self.policy = policy or UpdatePolicy()
        self.push_interval = push_interval
        self.clock = clock
        self.rng = rng
        self.flight = flight
        self.stats = MirrorStats()
        self._lock = threading.RLock()
        self._pending_added: set[Pair] = set()
        self._pending_removed: set[Pair] = set()
        self._last_flush = clock()
        self._targets: dict[str, TargetDeliveryState] = {}
        registry = metrics if metrics is not None else NULL_REGISTRY
        self.metrics = registry
        self._m_sent = {
            kind: registry.counter("mirror.sent", kind=kind)
            for kind in ("full", "incremental")
        }
        self._m_errors = registry.counter("mirror.errors")
        self._m_retries = registry.counter("mirror.retries")
        self._m_pairs = registry.counter("mirror.pairs_sent")
        registry.register_gauge_fn(
            "mirror.pending_changes",
            lambda: float(
                len(self._pending_added) + len(self._pending_removed)
            ),
        )
        registry.register_gauge_fn("mirror.retry_backlog", self._total_backlog)
        registry.register_gauge_fn(
            "mirror.targets_unhealthy", self._unhealthy_count
        )
        lrc.add_mapping_listener(self._on_mapping_change)

    # ------------------------------------------------------------------
    # Mirror registry
    # ------------------------------------------------------------------

    def add_mirror(self, name: str) -> None:
        """Register a mirror; its first delivery is a full sync."""
        state = self._state(name)
        with self._lock:
            state.needs_full = True

    def remove_mirror(self, name: str) -> None:
        with self._lock:
            self._targets.pop(name, None)

    def mirrors(self) -> list[str]:
        with self._lock:
            return sorted(self._targets)

    def target_health(self) -> dict[str, dict]:
        with self._lock:
            return {
                name: state.to_dict()
                for name, state in sorted(self._targets.items())
            }

    def _state(self, name: str) -> TargetDeliveryState:
        with self._lock:
            state = self._targets.get(name)
            created = state is None
            if created:
                state = self._targets[name] = TargetDeliveryState(name=name)
        if created:
            self.metrics.register_gauge_fn(
                "mirror.target_healthy",
                lambda s=state: 1.0 if s.healthy else 0.0,
                target=name,
            )
        return state

    def _total_backlog(self) -> float:
        with self._lock:
            return float(sum(s.backlog for s in self._targets.values()))

    def _unhealthy_count(self) -> float:
        with self._lock:
            return float(
                sum(1 for s in self._targets.values() if not s.healthy)
            )

    # ------------------------------------------------------------------
    # Change tracking
    # ------------------------------------------------------------------

    def _on_mapping_change(self, lfn: str, pfn: str, added: bool) -> None:
        pair = (lfn, pfn)
        with self._lock:
            if not self._targets:
                return  # no mirrors registered: keep the write path cheap
            if added:
                self._pending_removed.discard(pair)
                self._pending_added.add(pair)
            else:
                self._pending_added.discard(pair)
                self._pending_removed.add(pair)

    def pending_changes(self) -> tuple[int, int]:
        with self._lock:
            return len(self._pending_added), len(self._pending_removed)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def _flight_record(self, kind: str, detail: str, error: bool = False, **data):
        if self.flight is not None:
            self.flight.record(kind, detail=detail, error=error, **data)

    def _record_failure(
        self,
        state: TargetDeliveryState,
        exc: BaseException,
        needs_full: bool = False,
    ) -> None:
        self._flight_record(
            "error",
            f"mirror push->{state.name}: {type(exc).__name__}",
            error=True,
            target=state.name,
        )
        with self._lock:
            state.healthy = False
            state.consecutive_failures += 1
            state.last_error = f"{type(exc).__name__}: {exc}"
            if needs_full:
                state.needs_full = True
            attempt = min(state.consecutive_failures - 1, 16)
            state.next_retry_at = self.clock() + self.policy.retry.backoff(
                attempt, self.rng
            )
            self.stats.errors += 1
        self._m_errors.inc()

    def _record_success(self, state: TargetDeliveryState) -> None:
        with self._lock:
            state.healthy = True
            state.consecutive_failures = 0
            state.last_error = None
            state.next_retry_at = 0.0

    def all_pairs(self) -> list[Pair]:
        """Every (lfn, pfn) mapping — the payload of a full sync."""
        return self.lrc.query_wildcard("*")

    def send_full_sync(self, name: str | None = None) -> int:
        """Full-sync one mirror (or all); returns pairs pushed per mirror.

        Like :meth:`UpdateManager.send_full_update`, a failing mirror does
        not abort the fan-out: it is marked unhealthy + ``needs_full`` and
        ``tick()`` re-pushes it after backoff.
        """
        names = [name] if name is not None else self.mirrors()
        pairs = self.all_pairs()
        pushed = 0
        for target_name in names:
            state = self._state(target_name)
            self._flight_record(
                "mirror.attempt", f"full->{target_name}", target=target_name
            )
            try:
                sink = self.sink_resolver(target_name)
                sink.full_sync(self.lrc.name, pairs)
            except Exception as exc:
                self._record_failure(state, exc, needs_full=True)
                continue
            with self._lock:
                # The full sync replaces the mirror's state wholesale: any
                # backlog from earlier incremental failures is subsumed.
                state.pending_added.clear()
                state.pending_removed.clear()
                state.needs_full = False
                self.stats.full_syncs += 1
                self.stats.pairs_sent += len(pairs)
            self._m_sent["full"].inc()
            self._m_pairs.inc(len(pairs))
            self._record_success(state)
            pushed = len(pairs)
        return pushed

    def _push_incremental_to(
        self,
        state: TargetDeliveryState,
        added: Iterable[Pair],
        removed: Iterable[Pair],
    ) -> bool:
        """Deliver backlog + new delta to one mirror; False on failure.

        Same merge-before-send contract as the RLI update path: nothing
        leaves the backlog until the sink call returns.
        """
        with self._lock:
            for pair in added:
                state.pending_removed.discard(pair)
                state.pending_added.add(pair)
            for pair in removed:
                state.pending_added.discard(pair)
                state.pending_removed.add(pair)
            send_added = sorted(state.pending_added)
            send_removed = sorted(state.pending_removed)
        if not send_added and not send_removed:
            return True
        self._flight_record(
            "mirror.attempt",
            f"incremental->{state.name}",
            target=state.name,
            added=len(send_added),
            removed=len(send_removed),
        )
        try:
            sink = self.sink_resolver(state.name)
            sink.incremental(self.lrc.name, send_added, send_removed)
        except Exception as exc:
            self._record_failure(state, exc)
            return False
        with self._lock:
            state.pending_added.difference_update(send_added)
            state.pending_removed.difference_update(send_removed)
            self.stats.incremental_pushes += 1
            self.stats.pairs_sent += len(send_added) + len(send_removed)
        self._m_sent["incremental"].inc()
        self._m_pairs.inc(len(send_added) + len(send_removed))
        self._record_success(state)
        return True

    def flush(self) -> int:
        """Push the pending delta to every registered mirror now."""
        with self._lock:
            added = sorted(self._pending_added)
            removed = sorted(self._pending_removed)
            self._pending_added.clear()
            self._pending_removed.clear()
            self._last_flush = self.clock()
            states = list(self._targets.values())
        for state in states:
            if state.needs_full:
                # The pending delta is folded into the backlog so the
                # retry path (full sync) subsumes it.
                with self._lock:
                    for pair in added:
                        state.pending_removed.discard(pair)
                        state.pending_added.add(pair)
                    for pair in removed:
                        state.pending_added.discard(pair)
                        state.pending_removed.add(pair)
                continue
            self._push_incremental_to(state, added, removed)
        return len(added) + len(removed)

    def tick(self) -> list[str]:
        """Run due pushes plus redeliveries; returns action markers."""
        performed: list[str] = []
        now = self.clock()
        with self._lock:
            pending = len(self._pending_added) + len(self._pending_removed)
            due_flush = pending > 0 and (
                now - self._last_flush >= self.push_interval
                or pending >= self.policy.immediate_count_threshold
            )
            retry_candidates = [
                state
                for state in self._targets.values()
                if (not state.healthy or state.needs_full or state.backlog)
                and now >= state.next_retry_at
            ]
        if due_flush:
            self.flush()
            performed.append("incremental")
        for state in retry_candidates:
            with self._lock:
                self.stats.retries += 1
                state.retries += 1
            self._m_retries.inc()
            performed.append(f"retry:{state.name}")
            self._flight_record(
                "mirror.retry",
                state.name,
                target=state.name,
                consecutive_failures=state.consecutive_failures,
            )
            if state.needs_full:
                self.send_full_sync(state.name)
            else:
                self._push_incremental_to(state, (), ())
        return performed


class MirrorIngest:
    """Mirror side: applies a master's replica stream to the local LRC.

    Application is **idempotent** — redelivery after a lost acknowledgement
    replays pairs the mirror already holds, so "exists" errors are
    swallowed rather than surfaced back to the master.

    Freshness bookkeeping mirrors the RLI's ``staleness_age`` machinery:
    a per-master last-update clock exported as the
    ``mirror.staleness_age{shard=...}`` gauge, which the PR 2
    staleness-burn detector consumes unchanged.
    """

    def __init__(
        self,
        lrc: LocalReplicaCatalog,
        master: str,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.lrc = lrc
        self.master = master
        self.clock = clock
        self._lock = threading.Lock()
        self._last_update_at: dict[str, float] = {}
        self.full_syncs = 0
        self.incremental_applied = 0
        self.pairs_applied = 0
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_applied = {
            kind: registry.counter("mirror.applied", kind=kind)
            for kind in ("full", "incremental")
        }
        registry.register_gauge_fn(
            "mirror.staleness_age", self.staleness_age, shard=master
        )

    def staleness_age(self) -> float:
        """Seconds since the stalest master feed delivered (0 before any)."""
        with self._lock:
            if not self._last_update_at:
                return 0.0
            return max(0.0, self.clock() - min(self._last_update_at.values()))

    def staleness_ages(self) -> dict[str, float]:
        now = self.clock()
        with self._lock:
            return {
                master: max(0.0, now - at)
                for master, at in sorted(self._last_update_at.items())
            }

    def _record_apply(self, kind: str, master: str) -> None:
        with self._lock:
            self._last_update_at[master] = self.clock()
        self._m_applied[kind].inc()

    def _apply_add(self, lfn: str, pfn: str) -> bool:
        try:
            self.lrc.create_mapping(lfn, pfn)
            return True
        except MappingExistsError:
            pass  # LFN exists: this pfn may still be new
        try:
            self.lrc.add_mapping(lfn, pfn)
            return True
        except MappingExistsError:
            return False  # replayed pair: already applied

    def _apply_remove(self, lfn: str, pfn: str) -> bool:
        try:
            self.lrc.delete_mapping(lfn, pfn)
            return True
        except MappingNotFoundError:
            return False  # replayed removal: already applied

    def apply_full(self, master: str, pairs: Sequence[Pair]) -> int:
        """Converge the local catalog onto exactly ``pairs``; returns the
        number of mappings changed."""
        want = {tuple(p) for p in pairs}
        have = {tuple(p) for p in self.lrc.query_wildcard("*")}
        changed = 0
        for lfn, pfn in sorted(want - have):
            if self._apply_add(lfn, pfn):
                changed += 1
        for lfn, pfn in sorted(have - want):
            if self._apply_remove(lfn, pfn):
                changed += 1
        self.full_syncs += 1
        self.pairs_applied += changed
        self._record_apply("full", master)
        return changed

    def apply_incremental(
        self, master: str, added: Sequence[Pair], removed: Sequence[Pair]
    ) -> tuple[int, int]:
        """Apply a delta; returns (adds applied, removes applied)."""
        applied_adds = sum(
            1 for lfn, pfn in added if self._apply_add(lfn, pfn)
        )
        applied_removes = sum(
            1 for lfn, pfn in removed if self._apply_remove(lfn, pfn)
        )
        self.incremental_applied += 1
        self.pairs_applied += applied_adds + applied_removes
        self._record_apply("incremental", master)
        return applied_adds, applied_removes

    def to_dict(self) -> dict:
        return {
            "master": self.master,
            "staleness_age": self.staleness_age(),
            "staleness_ages": self.staleness_ages(),
            "full_syncs": self.full_syncs,
            "incremental_applied": self.incremental_applied,
            "pairs_applied": self.pairs_applied,
        }
