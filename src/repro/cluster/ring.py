"""Consistent-hash ring: LFN → shard placement for a sharded namespace.

`core/partition.py` routes by operator-written regexes — fine for a
handful of RLIs, but a namespace split across N LRC *shards* needs
placement that is deterministic everywhere (every client and server must
agree with no coordination), balanced without hand-tuning, and stable
under resharding (adding a shard must move ~K/N keys, not reshuffle the
world).  A consistent-hash ring with virtual nodes gives all three.

Hashing uses SHA-1 prefixes, never Python's ``hash()``: the builtin is
salted per process (``PYTHONHASHSEED``), and two processes disagreeing on
``owner(lfn)`` would silently split the namespace.

:class:`ShardMap` is the serializable description of a cluster — shard
names, per-shard mirror lists, virtual-node count, and a version — which
servers exchange over the ``admin_shard_map`` RPC and clients use to
build their routing ring.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

#: Virtual nodes per shard.  64 keeps the worst shard within ~25% of the
#: mean for realistic shard counts while the ring stays tiny (N*64 points).
DEFAULT_VNODES = 64


def _point(key: str) -> int:
    """Position of ``key`` on the ring: first 8 bytes of SHA-1.

    SHA-1 here is a placement function, not a security boundary; what
    matters is that it is uniform and identical across processes.
    """
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Deterministic LFN → shard mapping with virtual nodes.

    Rings are immutable; :meth:`with_shard` / :meth:`without_shard` return
    new rings, which keeps the bounded-movement property easy to test and
    rules out concurrent-mutation races in clients.
    """

    def __init__(self, shards: Sequence[str], vnodes: int = DEFAULT_VNODES) -> None:
        names = sorted(set(shards))
        if not names:
            raise ValueError("a hash ring needs at least one shard")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.shards: tuple[str, ...] = tuple(names)
        self.vnodes = vnodes
        points = sorted(
            (_point(f"{shard}#{replica}"), shard)
            for shard in names
            for replica in range(vnodes)
        )
        self._points = points
        self._keys = [p for p, _ in points]

    def owner(self, lfn: str) -> str:
        """The shard responsible for ``lfn`` (first vnode clockwise)."""
        index = bisect.bisect_right(self._keys, _point(lfn))
        if index == len(self._keys):
            index = 0  # wrap past the highest point
        return self._points[index][1]

    def partition(self, lfns: Iterable[str]) -> dict[str, list[str]]:
        """Group ``lfns`` by owning shard (order within a group preserved)."""
        groups: dict[str, list[str]] = {}
        for lfn in lfns:
            groups.setdefault(self.owner(lfn), []).append(lfn)
        return groups

    def spread(self, lfns: Iterable[str]) -> dict[str, int]:
        """Keys per shard over a sample — the balance diagnostic."""
        counts = {shard: 0 for shard in self.shards}
        for lfn in lfns:
            counts[self.owner(lfn)] += 1
        return counts

    def with_shard(self, shard: str) -> "HashRing":
        """A new ring with ``shard`` joined (moves ~K/N keys to it)."""
        return HashRing((*self.shards, shard), vnodes=self.vnodes)

    def without_shard(self, shard: str) -> "HashRing":
        """A new ring with ``shard`` removed (its keys spread to the rest)."""
        remaining = [s for s in self.shards if s != shard]
        return HashRing(remaining, vnodes=self.vnodes)

    def __len__(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HashRing(shards={self.shards!r}, vnodes={self.vnodes})"


@dataclass(frozen=True)
class ShardMap:
    """Serializable cluster topology: shards, their mirrors, ring sizing.

    The single source of truth a deployment shares: every server carries
    one (``ServerConfig.cluster``) and answers ``admin_shard_map`` with
    it, so a client can bootstrap a :class:`CombinedClient` from any node.
    """

    shards: tuple[str, ...]
    #: Read-only mirror LRCs per shard master (may be empty).
    mirrors: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    vnodes: int = DEFAULT_VNODES
    version: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "shards", tuple(self.shards))
        object.__setattr__(
            self,
            "mirrors",
            {shard: tuple(names) for shard, names in dict(self.mirrors).items()},
        )
        unknown = set(self.mirrors) - set(self.shards)
        if unknown:
            raise ValueError(f"mirrors listed for unknown shards: {sorted(unknown)}")

    def ring(self) -> HashRing:
        return HashRing(self.shards, vnodes=self.vnodes)

    def mirrors_of(self, shard: str) -> tuple[str, ...]:
        return tuple(self.mirrors.get(shard, ()))

    def all_servers(self) -> list[str]:
        """Every server in the cluster: masters first, then mirrors."""
        names = list(self.shards)
        for shard in self.shards:
            names.extend(self.mirrors_of(shard))
        return names

    def to_dict(self) -> dict:
        return {
            "shards": list(self.shards),
            "mirrors": {shard: list(names) for shard, names in self.mirrors.items()},
            "vnodes": self.vnodes,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ShardMap":
        return cls(
            shards=tuple(payload["shards"]),
            mirrors={
                shard: tuple(names)
                for shard, names in dict(payload.get("mirrors", {})).items()
            },
            vnodes=int(payload.get("vnodes", DEFAULT_VNODES)),
            version=int(payload.get("version", 1)),
        )

    def with_shard(
        self, shard: str, mirrors: Sequence[str] = ()
    ) -> "ShardMap":
        """A new map with ``shard`` joined and the version bumped."""
        if shard in self.shards:
            raise ValueError(f"shard already present: {shard!r}")
        merged = dict(self.mirrors)
        if mirrors:
            merged[shard] = tuple(mirrors)
        return ShardMap(
            shards=(*self.shards, shard),
            mirrors=merged,
            vnodes=self.vnodes,
            version=self.version + 1,
        )

    def without_shard(self, shard: str) -> "ShardMap":
        remaining = tuple(s for s in self.shards if s != shard)
        return ShardMap(
            shards=remaining,
            mirrors={s: m for s, m in self.mirrors.items() if s != shard},
            vnodes=self.vnodes,
            version=self.version + 1,
        )
