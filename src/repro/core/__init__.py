"""The Replica Location Service itself.

Public entry points:

* :class:`~repro.core.server.RLSServer` — the common LRC/RLI server
  (Figure 2), configured by :class:`~repro.core.config.ServerConfig`;
* :func:`~repro.core.client.connect` /
  :class:`~repro.core.client.RLSClient` — the client library (Table 1);
* :class:`~repro.core.membership.StaticMembership` — static deployment
  configuration (§3.6);
* the service internals: :class:`~repro.core.lrc.LocalReplicaCatalog`,
  :class:`~repro.core.rli.ReplicaLocationIndex`,
  :class:`~repro.core.updates.UpdateManager`,
  :class:`~repro.core.bloom.BloomFilter`.
"""

from repro.core.bloom import (
    BloomFilter,
    BloomParameters,
    CountingBloomFilter,
)
from repro.core.client import RLSClient, connect, connect_tcp_server
from repro.core.config import Backend, ServerConfig, ServerRole
from repro.core.errors import (
    AttributeExistsError,
    AttributeNotFoundError,
    InvalidAttributeError,
    InvalidNameError,
    MappingExistsError,
    MappingNotFoundError,
    NotConfiguredError,
    RLSError,
    UpdateTargetError,
    WildcardNotSupportedError,
)
from repro.core.discovery import DiscoveryResult, ReplicaDiscovery
from repro.core.hierarchy import HierarchicalUpdater, HierarchyThread
from repro.core.lrc import AttrType, LocalReplicaCatalog, ObjType, RLITarget
from repro.core.membership import MemberAddress, StaticMembership
from repro.core.partition import PartitionRouter
from repro.core.rli import ExpireThread, ReplicaLocationIndex
from repro.core.server import RLSServer
from repro.core.updates import (
    DirectSink,
    RPCSink,
    UpdateManager,
    UpdatePolicy,
    UpdateThread,
)

__all__ = [
    "AttrType",
    "AttributeExistsError",
    "AttributeNotFoundError",
    "Backend",
    "BloomFilter",
    "BloomParameters",
    "CountingBloomFilter",
    "DirectSink",
    "DiscoveryResult",
    "ExpireThread",
    "HierarchicalUpdater",
    "HierarchyThread",
    "InvalidAttributeError",
    "InvalidNameError",
    "LocalReplicaCatalog",
    "MappingExistsError",
    "MappingNotFoundError",
    "MemberAddress",
    "NotConfiguredError",
    "ObjType",
    "PartitionRouter",
    "RLITarget",
    "RLSClient",
    "RLSError",
    "RLSServer",
    "ReplicaDiscovery",
    "ReplicaLocationIndex",
    "RPCSink",
    "ServerConfig",
    "ServerRole",
    "StaticMembership",
    "UpdateManager",
    "UpdatePolicy",
    "UpdateTargetError",
    "UpdateThread",
    "WildcardNotSupportedError",
    "connect",
    "connect_tcp_server",
]
