"""Bloom filters for compressed soft-state updates (§3.4).

The paper's parameters: the filter is sized at ~10 bits per LRC mapping
(e.g. 10 million bits for ~1 million entries) and each logical name sets 3
bits, giving a false-positive rate of about 1 %.

Implementation notes (per the HPC guides: vectorize the hot path):

* bitmaps are packed NumPy ``uint8`` arrays, so a 10 Mbit filter is 1.25 MB
  — the object that actually travels over the (simulated) WAN;
* per-name hashing uses BLAKE2b digests split into two 64-bit values,
  expanded to ``k`` probe positions by Kirsch–Mitzenmacher double hashing
  ``h_i = h1 + i*h2 (mod m)`` — deterministic across processes, so an RLI
  can test membership in a bitmap built by a remote LRC;
* batch add/query paths accumulate positions into NumPy arrays and use
  ``np.bitwise_or.at`` / vectorized bit tests instead of per-bit Python.

:class:`CountingBloomFilter` is the LRC-side structure: it tracks per-bit
reference counts so mappings can be *removed* as well as added — "subsequent
updates to LRC mappings can be reflected by setting or unsetting the
corresponding bits" — and it emits the plain packed bitmap to send to RLIs.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

#: Paper defaults: ~10 bits per mapping, 3 hash functions, ≈1% false positives.
DEFAULT_BITS_PER_ENTRY = 10
DEFAULT_NUM_HASHES = 3
_MIN_BITS = 1024


def _base_hashes(name: str) -> tuple[int, int]:
    """Two independent 64-bit hashes of ``name`` (BLAKE2b, stable)."""
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=16).digest()
    return (
        int.from_bytes(digest[:8], "little"),
        int.from_bytes(digest[8:], "little"),
    )


def probe_positions(name: str, num_bits: int, num_hashes: int) -> list[int]:
    """Bit positions set for ``name`` in a filter of ``num_bits`` bits."""
    h1, h2 = _base_hashes(name)
    # Force h2 odd so the probe sequence cycles through the whole table
    # even when num_bits is even.
    h2 |= 1
    return [(h1 + i * h2) % num_bits for i in range(num_hashes)]


def size_for_entries(
    expected_entries: int, bits_per_entry: int = DEFAULT_BITS_PER_ENTRY
) -> int:
    """Filter size in bits for an expected LRC mapping count (paper §3.4).

    Rounded up to a whole byte so the packed array is exact.
    """
    bits = max(_MIN_BITS, expected_entries * bits_per_entry)
    return (bits + 7) & ~7


def false_positive_rate(num_bits: int, num_hashes: int, num_entries: int) -> float:
    """Analytic FP estimate ``(1 - e^(-kn/m))^k``."""
    if num_entries <= 0:
        return 0.0
    return (1.0 - math.exp(-num_hashes * num_entries / num_bits)) ** num_hashes


@dataclass(frozen=True)
class BloomParameters:
    """Size and hash-count parameters shared by sender and receiver."""

    num_bits: int
    num_hashes: int = DEFAULT_NUM_HASHES

    def __post_init__(self) -> None:
        if self.num_bits <= 0 or self.num_bits % 8 != 0:
            raise ValueError("num_bits must be a positive multiple of 8")
        if self.num_hashes <= 0:
            raise ValueError("num_hashes must be positive")

    @classmethod
    def for_entries(
        cls,
        expected_entries: int,
        bits_per_entry: int = DEFAULT_BITS_PER_ENTRY,
        num_hashes: int = DEFAULT_NUM_HASHES,
    ) -> "BloomParameters":
        return cls(size_for_entries(expected_entries, bits_per_entry), num_hashes)


class BloomFilter:
    """Immutable-size packed-bit Bloom filter."""

    __slots__ = ("params", "bits", "approx_entries")

    def __init__(
        self, params: BloomParameters, bits: np.ndarray | None = None
    ) -> None:
        self.params = params
        nbytes = params.num_bits // 8
        if bits is None:
            self.bits = np.zeros(nbytes, dtype=np.uint8)
        else:
            if bits.dtype != np.uint8 or bits.shape != (nbytes,):
                raise ValueError("bitmap shape/dtype mismatch")
            self.bits = bits
        self.approx_entries = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def from_names(
        cls, names: Iterable[str], params: BloomParameters
    ) -> "BloomFilter":
        """Build a filter from scratch — the paper's one-time generation cost."""
        bf = cls(params)
        bf.add_batch(names)
        return bf

    def add(self, name: str) -> None:
        for pos in probe_positions(name, self.params.num_bits, self.params.num_hashes):
            self.bits[pos >> 3] |= 1 << (pos & 7)
        self.approx_entries += 1

    def add_batch(self, names: Iterable[str]) -> None:
        """Vectorized bulk insert (one fancy-indexed OR over all positions)."""
        positions = self._positions_array(names)
        if positions.size == 0:
            return
        np.bitwise_or.at(
            self.bits, positions >> 3, (1 << (positions & 7)).astype(np.uint8)
        )
        self.approx_entries += positions.size // self.params.num_hashes

    def _positions_array(self, names: Iterable[str]) -> np.ndarray:
        nbits = self.params.num_bits
        k = self.params.num_hashes
        flat: list[int] = []
        extend = flat.extend
        for name in names:
            h1, h2 = _base_hashes(name)
            h2 |= 1
            extend((h1 + i * h2) % nbits for i in range(k))
        return np.asarray(flat, dtype=np.int64)

    # -- queries ------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        bits = self.bits
        for pos in probe_positions(name, self.params.num_bits, self.params.num_hashes):
            if not (bits[pos >> 3] >> (pos & 7)) & 1:
                return False
        return True

    def contains_batch(self, names: Sequence[str]) -> np.ndarray:
        """Vectorized membership test; returns a bool array."""
        positions = self._positions_array(names)
        k = self.params.num_hashes
        if positions.size == 0:
            return np.zeros(0, dtype=bool)
        bit_set = (
            (self.bits[positions >> 3] >> (positions & 7).astype(np.uint8)) & 1
        ).astype(bool)
        return bit_set.reshape(-1, k).all(axis=1)

    def estimated_fp_rate(self) -> float:
        return false_positive_rate(
            self.params.num_bits, self.params.num_hashes, self.approx_entries
        )

    # -- set algebra -----------------------------------------------------------

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise OR — used by hierarchical RLIs aggregating child state."""
        if self.params != other.params:
            raise ValueError("cannot union filters with different parameters")
        merged = BloomFilter(self.params, np.bitwise_or(self.bits, other.bits))
        merged.approx_entries = self.approx_entries + other.approx_entries
        return merged

    # -- serialization ----------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.bits.nbytes

    def to_bytes(self) -> bytes:
        return self.bits.tobytes()

    @classmethod
    def from_bytes(
        cls, data: bytes, params: BloomParameters, approx_entries: int = 0
    ) -> "BloomFilter":
        array = np.frombuffer(data, dtype=np.uint8).copy()
        bf = cls(params, array)
        bf.approx_entries = approx_entries
        return bf

    def fill_ratio(self) -> float:
        """Fraction of bits set (diagnostic)."""
        return float(np.unpackbits(self.bits).mean()) if self.bits.size else 0.0


class CountingBloomFilter:
    """Reference-counted Bloom filter supporting removal.

    Kept at the LRC so incremental mapping changes are O(k) instead of a
    full filter rebuild; :meth:`snapshot` produces the plain packed bitmap
    that goes on the wire.  Counters saturate at 65535 (uint16) — beyond any
    realistic per-bit load at 10 bits/entry.
    """

    __slots__ = ("params", "counts", "entries")

    def __init__(self, params: BloomParameters) -> None:
        self.params = params
        self.counts = np.zeros(params.num_bits, dtype=np.uint16)
        self.entries = 0

    def add(self, name: str) -> None:
        for pos in probe_positions(name, self.params.num_bits, self.params.num_hashes):
            if self.counts[pos] < np.iinfo(np.uint16).max:
                self.counts[pos] += 1
        self.entries += 1

    def remove(self, name: str) -> None:
        """Unset ``name``'s bits (decrement counts).

        Removing a name that was never added corrupts the filter, exactly
        as with the real structure; callers (the LRC) only remove names
        they previously added.
        """
        for pos in probe_positions(name, self.params.num_bits, self.params.num_hashes):
            if self.counts[pos] > 0:
                self.counts[pos] -= 1
        self.entries = max(0, self.entries - 1)

    def add_batch(self, names: Iterable[str]) -> None:
        for name in names:
            self.add(name)

    def __contains__(self, name: str) -> bool:
        return all(
            self.counts[pos] > 0
            for pos in probe_positions(
                name, self.params.num_bits, self.params.num_hashes
            )
        )

    def snapshot(self) -> BloomFilter:
        """Packed bitmap of currently-set bits (what gets sent to an RLI)."""
        bitmap = np.packbits((self.counts > 0).astype(np.uint8), bitorder="little")
        bf = BloomFilter(self.params, bitmap)
        bf.approx_entries = self.entries
        return bf
