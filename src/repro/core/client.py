"""RLS client library.

A typed wrapper around the RPC protocol covering every operation in the
paper's Table 1 (the C client / Java wrapper equivalent).  Obtain one with
:func:`connect` (in-process endpoint), :func:`connect_tcp_server`, or via
:class:`~repro.core.membership.StaticMembership`.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.lrc import ObjType
from repro.net.retry import RetryPolicy
from repro.net.rpc import RPCClient
from repro.net.transport import connect_local, connect_tcp


def _objtype_wire(objtype: ObjType | str) -> int:
    return int(ObjType.parse(objtype))


class RLSClient:
    """Client handle to one RLS server (LRC and/or RLI operations)."""

    def __init__(self, rpc: RPCClient) -> None:
        self.rpc = rpc

    # ------------------------------------------------------------------
    # LRC: mapping management
    # ------------------------------------------------------------------

    def create(self, lfn: str, pfn: str) -> None:
        """Register a new logical name with its first replica mapping."""
        self.rpc.call("lrc_create_mapping", lfn, pfn)

    def add(self, lfn: str, pfn: str) -> None:
        """Register an additional replica for an existing logical name."""
        self.rpc.call("lrc_add_mapping", lfn, pfn)

    def delete(self, lfn: str, pfn: str) -> None:
        """Remove one replica mapping."""
        self.rpc.call("lrc_delete_mapping", lfn, pfn)

    def bulk_create(self, pairs: Sequence[tuple[str, str]]) -> list[tuple[str, str, str]]:
        """Create many mappings in one request; returns per-pair failures."""
        return [tuple(t) for t in self.rpc.call("lrc_bulk_create", [list(p) for p in pairs])]

    def bulk_add(self, pairs: Sequence[tuple[str, str]]) -> list[tuple[str, str, str]]:
        return [tuple(t) for t in self.rpc.call("lrc_bulk_add", [list(p) for p in pairs])]

    def bulk_delete(self, pairs: Sequence[tuple[str, str]]) -> list[tuple[str, str, str]]:
        return [tuple(t) for t in self.rpc.call("lrc_bulk_delete", [list(p) for p in pairs])]

    # ------------------------------------------------------------------
    # LRC: queries
    # ------------------------------------------------------------------

    def get_mappings(self, lfn: str) -> list[str]:
        """Target names (replica locations) for one logical name."""
        return self.rpc.call("lrc_get_mappings", lfn)

    def get_lfns(self, pfn: str) -> list[str]:
        """Logical names mapped to one target name."""
        return self.rpc.call("lrc_get_lfns", pfn)

    def query_wildcard(self, pattern: str) -> list[tuple[str, str]]:
        """(lfn, pfn) pairs whose LFN matches ``*``/``?`` wildcards."""
        return [tuple(t) for t in self.rpc.call("lrc_query_wildcard", pattern)]

    def bulk_query(self, lfns: Sequence[str]) -> dict[str, list[str]]:
        """Mappings for many logical names (absent names omitted)."""
        return self.rpc.call("lrc_bulk_query", list(lfns))

    def exists(self, lfn: str) -> bool:
        return self.rpc.call("lrc_exists", lfn)

    def lfn_count(self) -> int:
        return self.rpc.call("lrc_lfn_count")

    def mapping_count(self) -> int:
        return self.rpc.call("lrc_mapping_count")

    # ------------------------------------------------------------------
    # LRC: attributes
    # ------------------------------------------------------------------

    def define_attribute(
        self, name: str, objtype: ObjType | str, attrtype: str
    ) -> int:
        return self.rpc.call("lrc_attr_define", name, _objtype_wire(objtype), attrtype)

    def undefine_attribute(self, name: str, objtype: ObjType | str) -> None:
        self.rpc.call("lrc_attr_undefine", name, _objtype_wire(objtype))

    def add_attribute(
        self, obj: str, name: str, objtype: ObjType | str, value: Any
    ) -> None:
        self.rpc.call("lrc_attr_add", obj, name, _objtype_wire(objtype), value)

    def modify_attribute(
        self, obj: str, name: str, objtype: ObjType | str, value: Any
    ) -> None:
        self.rpc.call("lrc_attr_modify", obj, name, _objtype_wire(objtype), value)

    def remove_attribute(self, obj: str, name: str, objtype: ObjType | str) -> None:
        self.rpc.call("lrc_attr_remove", obj, name, _objtype_wire(objtype))

    def get_attributes(self, obj: str, objtype: ObjType | str) -> dict[str, Any]:
        return self.rpc.call("lrc_attr_get", obj, _objtype_wire(objtype))

    def query_by_attribute(
        self,
        name: str,
        objtype: ObjType | str,
        value: Any = None,
        op: str = "=",
    ) -> list[tuple[str, Any]]:
        return [
            tuple(t)
            for t in self.rpc.call(
                "lrc_attr_query", name, _objtype_wire(objtype), value, op
            )
        ]

    def bulk_add_attribute(
        self, triples: Sequence[tuple[str, str, Any]], objtype: ObjType | str
    ) -> list[tuple[str, str, str]]:
        return [
            tuple(t)
            for t in self.rpc.call(
                "lrc_attr_bulk_add", [list(t) for t in triples], _objtype_wire(objtype)
            )
        ]

    # ------------------------------------------------------------------
    # LRC: RLI update-target management
    # ------------------------------------------------------------------

    def add_rli(
        self, name: str, bloom: bool = False, patterns: Sequence[str] = ()
    ) -> None:
        """Register an RLI this LRC should send soft-state updates to."""
        self.rpc.call("lrc_rli_add", name, bloom, list(patterns))

    def remove_rli(self, name: str) -> None:
        self.rpc.call("lrc_rli_remove", name)

    def list_rlis(self) -> list[dict[str, Any]]:
        return self.rpc.call("lrc_rli_list")

    # ------------------------------------------------------------------
    # LRC: mirror management (sharded cluster)
    # ------------------------------------------------------------------

    def mirror_add(self, name: str) -> None:
        """Register a read-only mirror this LRC streams mappings to."""
        self.rpc.call("lrc_mirror_add", name)

    def mirror_remove(self, name: str) -> None:
        self.rpc.call("lrc_mirror_remove", name)

    def mirror_list(self) -> dict[str, Any]:
        """Per-mirror delivery health (empty when no mirrors registered)."""
        return self.rpc.call("lrc_mirror_list")

    def mirror_sync(self) -> int:
        """Force a full sync to every mirror; returns pairs pushed."""
        return self.rpc.call("admin_mirror_sync")

    def shard_map(self) -> dict[str, Any]:
        """Cluster topology as seen by this server (``None`` fields when
        the server is not a cluster member)."""
        return self.rpc.call("admin_shard_map")

    # ------------------------------------------------------------------
    # RLI operations
    # ------------------------------------------------------------------

    def rli_query(self, lfn: str) -> list[str]:
        """Names of LRCs that (probably) hold mappings for ``lfn``."""
        return self.rpc.call("rli_query", lfn)

    def rli_bulk_query(self, lfns: Sequence[str]) -> dict[str, list[str]]:
        return self.rpc.call("rli_bulk_query", list(lfns))

    def rli_query_wildcard(self, pattern: str) -> list[tuple[str, str]]:
        return [tuple(t) for t in self.rpc.call("rli_query_wildcard", pattern)]

    def rli_lrc_list(self) -> list[str]:
        return self.rpc.call("rli_lrc_list")

    # ------------------------------------------------------------------
    # Admin
    # ------------------------------------------------------------------

    def ping(self) -> str:
        return self.rpc.call("admin_ping")

    def stats(self) -> dict[str, Any]:
        return self.rpc.call("admin_stats")

    def metrics(self) -> dict[str, Any]:
        """Raw metrics snapshot (counters, gauges, histogram buckets)."""
        return self.rpc.call("admin_metrics")

    def metrics_text(self) -> str:
        """Metrics snapshot rendered in Prometheus text exposition format."""
        return self.rpc.call("admin_metrics_text")

    def traces(self, limit: int = 100) -> dict[str, Any]:
        """Tail-retained spans (errors + slow) from the server's span sink.

        Returns ``{"enabled": bool, "stats": {...}, "spans": [...]}``;
        ``enabled`` is False when the server runs without a tracer.
        """
        return self.rpc.call("admin_traces", limit)

    def trace(self, trace_id: str) -> dict[str, Any]:
        """Cluster-stitched view of one trace (tree + critical path).

        Accepts a trace id or a span id (``rls slowlog`` prints both).
        Returns ``{"enabled": bool, "trace_id": str, "spans": [...],
        "tree": [...], "critical_path": [...], "nodes": {...},
        "missing": {...}, ...}``; on a cluster member the server gathers
        fragments from every endpoint in its shard map, tolerating
        unreachable nodes (listed under ``missing``).
        """
        return self.rpc.call("admin_trace", trace_id)

    def trace_fragments(self, trace_id: str) -> dict[str, Any]:
        """This server's raw span fragments for one trace.

        Returns ``{"enabled": bool, "node": str, "trace_id": str,
        "spans": [...]}`` — the feed a client-side
        :class:`~repro.obs.assemble.TraceAssembler` stitches across
        endpoints.
        """
        return self.rpc.call("admin_trace_fragments", trace_id)

    def slo(self) -> dict[str, Any]:
        """SLO state: per-class SLIs, burn rates, budget and alerts.

        Returns ``{"enabled": True, "shard": str, "endpoint": str,
        "policy": {...}, "classes": {...}, "alerts": [...]}``.
        """
        return self.rpc.call("admin_slo")

    def usage(self) -> dict[str, Any]:
        """Per-principal usage accounting table and heavy-hitter sketches.

        Returns ``{"enabled": bool, "fields": [...], "principals":
        {principal: {op_class: {field: value}}}, "top_principals": [...],
        "top_prefixes": [...], "overflowed": int, ...}``; ``enabled`` is
        False when the server runs with ``usage_accounting=False``.
        """
        return self.rpc.call("admin_usage")

    def slow_queries(self, limit: int = 50) -> dict[str, Any]:
        """Tail-retained slow/error statements from the engine's query log.

        Returns ``{"enabled": bool, "stats": {...}, "queries": [...]}``;
        ``enabled`` is False when the server runs with query profiling
        disabled.
        """
        return self.rpc.call("admin_slow_queries", limit)

    def profile(self) -> dict[str, Any]:
        """Cumulative sampling-profiler state (folded stacks + meters).

        Returns ``{"enabled": bool, "hz": float, "samples": int,
        "duty_cycle": float, "roles": {...}, "profile": {...}}``;
        ``enabled`` is False when the server runs with ``profile_hz=0``.
        """
        return self.rpc.call("admin_profile")

    def threads(self) -> dict[str, Any]:
        """Point-in-time thread dump with roles, spans, and top frames.

        Returns ``{"enabled": True, "threads": [...], "detections":
        [...]}``; detections list stuck-thread findings (if any).
        """
        return self.rpc.call("admin_threads")

    def flight(self, limit: int = 100) -> dict[str, Any]:
        """Flight-recorder snapshot: stats, event tail, last error dump.

        Returns ``{"enabled": bool, "stats": {...}, "events": [...],
        "last_dump": ...}``; ``enabled`` is False when the server runs
        with ``flight_capacity=0``.
        """
        return self.rpc.call("admin_flight", limit)

    def trigger_full_update(self) -> float:
        """Force an immediate full soft-state update; returns duration (s)."""
        return self.rpc.call("admin_trigger_full_update")

    def trigger_incremental_update(self) -> int:
        return self.rpc.call("admin_trigger_incremental_update")

    def expire_once(self) -> int:
        return self.rpc.call("admin_expire_once")

    def rebuild_bloom(self) -> float:
        return self.rpc.call("admin_rebuild_bloom")

    def verify(self) -> list[str]:
        """Run the catalog integrity checker; returns problems (empty = ok)."""
        return self.rpc.call("admin_verify")

    def close(self) -> None:
        self.rpc.close()

    def __enter__(self) -> "RLSClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def connect(
    name: str,
    credential: bytes | None = None,
    retry: RetryPolicy | None = None,
    principal: str | None = None,
) -> RLSClient:
    """Connect to an in-process server endpoint by name.

    With ``retry``, transport-level call failures reconnect to the
    endpoint and retry with the policy's backoff.  ``principal`` is the
    declared usage-accounting identity for unauthenticated connections
    (ignored when a credential authenticates — the gridmap wins).
    """
    reconnect = None
    if retry is not None:
        reconnect = lambda: connect_local(  # noqa: E731
            name, credential, principal=principal
        )
    return RLSClient(
        RPCClient(
            connect_local(name, credential, principal=principal),
            retry=retry,
            reconnect=reconnect,
        )
    )


def connect_tcp_server(
    host: str,
    port: int,
    credential: bytes | None = None,
    retry: RetryPolicy | None = None,
    principal: str | None = None,
) -> RLSClient:
    """Connect to a TCP server.

    With ``retry``, both the initial connect and later calls are retried
    with backoff; failed calls re-dial the server first.  ``principal``
    declares the usage-accounting identity (see :func:`connect`).
    """
    channel = connect_tcp(host, port, credential, retry=retry, principal=principal)
    reconnect = None
    if retry is not None:
        reconnect = lambda: connect_tcp(  # noqa: E731
            host, port, credential, retry=retry, principal=principal
        )
    return RLSClient(RPCClient(channel, retry=retry, reconnect=reconnect))
