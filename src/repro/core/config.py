"""Server configuration.

One :class:`ServerConfig` describes a single RLS server process: its roles
(LRC, RLI, or both — the implementation is a common server, §3.1), its
database back end and flush policy, its security policy, and its
soft-state update behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cluster.ring import ShardMap
from repro.core.updates import UpdatePolicy
from repro.security.authorizer import SecurityPolicy


class ServerRole(enum.Flag):
    """Which services this server hosts (Figure 2: a common server)."""

    LRC = enum.auto()
    RLI = enum.auto()
    BOTH = LRC | RLI


class Backend(enum.Enum):
    """Relational back end flavour (§5.1 vs §5.2)."""

    MYSQL = "mysql"
    POSTGRESQL = "postgresql"

    @classmethod
    def parse(cls, value: "Backend | str") -> "Backend":
        if isinstance(value, cls):
            return value
        for member in cls:
            if member.value == value.lower():
                return member
        raise ValueError(f"unknown backend {value!r}")


@dataclass
class ServerConfig:
    """Complete configuration for one RLS server."""

    name: str = "rls"
    role: ServerRole = ServerRole.BOTH
    backend: Backend | str = Backend.MYSQL
    #: MySQL: flush transaction log on every commit (paper recommends off).
    flush_on_commit: bool = False
    #: Modelled disk write-barrier latency for the WAL device.
    sync_latency: float = 0.011
    #: RLI soft-state timeout (seconds) before un-refreshed entries expire.
    rli_timeout: float = 30 * 60.0
    #: Period of the RLI expire thread.
    expire_interval: float = 60.0
    #: How often the update scheduler checks for due soft-state pushes.
    update_poll_interval: float = 1.0
    security: SecurityPolicy = field(default_factory=SecurityPolicy.open)
    updates: UpdatePolicy = field(default_factory=UpdatePolicy)
    #: Start a TCP listener in addition to the in-process endpoint.
    tcp: bool = False
    tcp_host: str = "127.0.0.1"
    tcp_port: int = 0  # 0 = ephemeral
    #: Record per-statement query profiles into the engine's slow-query
    #: log (``admin_slow_queries`` / ``rls slowlog``).
    profile_queries: bool = True
    #: Statements at or above this duration (seconds) are retained as
    #: "slow" and counted in ``db.slow_statements``.
    slow_query_threshold: float = 0.050
    #: Capacity of the slow/error statement ring kept per engine.
    query_log_capacity: int = 256
    #: Wall-clock sampling profiler rate (samples/second); 0 disables the
    #: sampler thread entirely (``admin_profile`` / ``rls profile``).
    profile_hz: float = 0.0
    #: Capacity of the flight-recorder event ring; 0 disables recording
    #: (``admin_flight`` / ``rls flight``).
    flight_capacity: int = 256
    #: Sharded-namespace topology this server belongs to (answers
    #: ``admin_shard_map``); ``None`` outside cluster deployments.
    cluster: ShardMap | None = None
    #: Run this LRC as a read-only mirror of the named shard master:
    #: mapping/attribute writes are rejected with
    #: :class:`~repro.core.errors.ReadOnlyCatalogError`, and the
    #: ``mirror_full_sync``/``mirror_incremental`` ingest RPCs apply the
    #: master's replica stream.
    mirror_of: str | None = None
    #: Mirror LRCs this shard master streams replica mappings to (more
    #: can be registered at runtime via ``lrc_mirror_add``).
    mirrors: tuple[str, ...] = ()
    #: Seconds between mirror incremental pushes (mirror feeds run much
    #: hotter than the 30 s RLI soft-state interval: a mirror serves
    #: reads directly, so its staleness is user-visible).
    mirror_push_interval: float = 5.0
    #: Modeled per-request service time (seconds) for the in-process
    #: transport: requests serialize through one stage of this duration,
    #: capping the endpoint at ~1/service_latency ops/s.  Used by
    #: multi-server capacity experiments; 0 disables the model.
    service_latency: float = 0.0
    #: Availability SLO target per operation class (``admin_slo``).
    slo_availability_target: float = 0.999
    #: Latency SLO target: the fraction of requests that must complete
    #: under the class threshold.
    slo_latency_target: float = 0.99
    #: Default latency threshold (seconds) for classes without a
    #: per-class override in :data:`repro.obs.slo.DEFAULT_LATENCY_THRESHOLDS`.
    slo_latency_threshold: float = 0.050
    #: Seconds between background SLI recorder passes; 0 (the default)
    #: runs no thread and ticks on demand at ``admin_slo`` time — the
    #: window arithmetic is identical, only the gauge export lags.
    slo_tick_interval: float = 0.0
    #: Per-principal usage accounting (``admin_usage`` / ``rls usage``):
    #: charge every request's cost vector — wall time, queue wait, rows
    #: examined, bytes, WAL bytes — to ``(principal, op_class)``.
    usage_accounting: bool = True
    #: Capacity of the heavy-hitter sketches (top-K principals and LFN
    #: prefixes); per-entry error is bounded by N/capacity.
    usage_top_k: int = 32
    #: Distinct principals given exact accounting rows and metric labels;
    #: later arrivals aggregate under the bounded ``<other>`` label.
    usage_max_principals: int = 64

    def __post_init__(self) -> None:
        self.backend = Backend.parse(self.backend)
        self.mirrors = tuple(self.mirrors)
        if self.mirror_of and self.mirrors:
            raise ValueError("a mirror cannot itself have mirrors")

    @property
    def is_lrc(self) -> bool:
        return bool(self.role & ServerRole.LRC)

    @property
    def is_rli(self) -> bool:
        return bool(self.role & ServerRole.RLI)
