"""Robust two-step replica discovery (the §3.2 client pattern as an API).

"Thus, a query to an RLI may return stale information. ... An application
program must be sufficiently robust to recover from this situation and
query for another replica of the logical name."  Bloom-filter results add
a ~1% false-positive rate on top (§3.4).

:class:`ReplicaDiscovery` encapsulates the robust pattern: query one or
more RLIs, merge the candidate LRC lists, query each candidate LRC,
tolerate stale pointers / false positives / dead servers, and return every
replica found, with per-source diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.client import RLSClient
from repro.core.errors import MappingNotFoundError
from repro.core.membership import StaticMembership
from repro.net.retry import RetryPolicy


@dataclass
class DiscoveryResult:
    """Replicas found for one logical name, with provenance."""

    lfn: str
    replicas: list[str] = field(default_factory=list)
    #: LRC name -> its replica list (only LRCs that actually had mappings).
    by_lrc: dict[str, list[str]] = field(default_factory=dict)
    #: Candidate LRCs that had no mapping (stale RLI data / Bloom FPs).
    false_candidates: list[str] = field(default_factory=list)
    #: Candidate LRCs that could not be contacted.
    unreachable: list[str] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return bool(self.replicas)


class ReplicaDiscovery:
    """Discovers replicas through RLIs with the robust recovery pattern."""

    def __init__(
        self,
        membership: StaticMembership,
        rli_names: Sequence[str],
        retry: RetryPolicy | None = None,
    ) -> None:
        if not rli_names:
            raise ValueError("at least one RLI is required")
        self.membership = membership
        self.rli_names = list(rli_names)
        #: Optional retry policy for RLI/LRC connections and queries; a
        #: briefly-flapping server then costs a backoff instead of being
        #: misreported as unreachable / skipped.
        self.retry = retry

    def _open(self, name: str) -> RLSClient:
        return RLSClient(self.membership.connect(name, retry=self.retry))

    def candidate_lrcs(self, lfn: str) -> list[str]:
        """Union of LRC candidates across every reachable RLI."""
        candidates: list[str] = []
        for rli_name in self.rli_names:
            try:
                client = self._open(rli_name)
            except Exception:
                continue
            try:
                for lrc_name in client.rli_query(lfn):
                    if lrc_name not in candidates:
                        candidates.append(lrc_name)
            except MappingNotFoundError:
                continue
            except Exception:
                continue
            finally:
                client.close()
        return candidates

    def discover(self, lfn: str) -> DiscoveryResult:
        """Find every replica of ``lfn``, tolerating stale index data."""
        result = DiscoveryResult(lfn=lfn)
        for lrc_name in self.candidate_lrcs(lfn):
            try:
                client = self._open(lrc_name)
            except Exception:
                result.unreachable.append(lrc_name)
                continue
            try:
                pfns = client.get_mappings(lfn)
            except MappingNotFoundError:
                # Stale RLI entry or Bloom false positive: recover by
                # simply moving on to the next candidate (§3.2).
                result.false_candidates.append(lrc_name)
                continue
            except Exception:
                result.unreachable.append(lrc_name)
                continue
            finally:
                client.close()
            result.by_lrc[lrc_name] = pfns
            for pfn in pfns:
                if pfn not in result.replicas:
                    result.replicas.append(pfn)
        return result

    def discover_any(self, lfn: str) -> str:
        """First replica found; raises MappingNotFoundError if none."""
        result = self.discover(lfn)
        if not result.found:
            raise MappingNotFoundError(
                f"no replica of {lfn!r} reachable "
                f"(false candidates: {result.false_candidates}, "
                f"unreachable: {result.unreachable})"
            )
        return result.replicas[0]

    def discover_bulk(self, lfns: Sequence[str]) -> dict[str, DiscoveryResult]:
        """Discover many names; unfound names map to empty results."""
        return {lfn: self.discover(lfn) for lfn in lfns}
