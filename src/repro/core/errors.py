"""RLS error types (mirroring the globus_rls_client error codes).

Every class is registered with the RPC layer so a server-side raise
arrives at the client as the same type.
"""

from __future__ import annotations

from repro.net.rpc import register_error_type


class RLSError(Exception):
    """Base class for Replica Location Service errors."""


@register_error_type
class InvalidNameError(RLSError):
    """A logical or target name failed validation."""


@register_error_type
class MappingExistsError(RLSError):
    """create/add attempted for a mapping that already exists."""


@register_error_type
class MappingNotFoundError(RLSError):
    """The requested logical/target name or mapping does not exist."""


@register_error_type
class AttributeExistsError(RLSError):
    """Attribute definition or value already exists."""


@register_error_type
class AttributeNotFoundError(RLSError):
    """The requested attribute (or value) does not exist."""


@register_error_type
class InvalidAttributeError(RLSError):
    """Attribute type/object-type mismatch or bad value."""


@register_error_type
class NotConfiguredError(RLSError):
    """Operation requires a role (LRC/RLI) this server is not running."""


@register_error_type
class UpdateTargetError(RLSError):
    """Bad RLI update-target registration (unknown/duplicate RLI)."""


@register_error_type
class WildcardNotSupportedError(RLSError):
    """Wildcard query sent to an RLI that only holds Bloom filters (§5.4)."""


@register_error_type
class ReadOnlyCatalogError(RLSError):
    """Write sent to a read-only mirror LRC; route it to the shard master."""


@register_error_type
class ShardRoutingError(RLSError):
    """Sharded-cluster routing failure (no shard map, no reachable endpoint)."""


register_error_type(RLSError)
