"""Hierarchical RLI propagation (paper §7, "Ongoing and Future Work").

"The latest RLS version includes support for a hierarchy of RLI servers
that update one another."  This module implements that extension: an RLI
forwards its aggregated soft state to higher-level RLIs, preserving
per-LRC attribution so a top-level query still answers "which LRCs hold
this name".

* Bloom-mode state forwards each stored per-LRC filter upward unchanged
  (a union would lose attribution).
* Relational state forwards, per contributing LRC, the list of logical
  names currently mapped to it, as an ordinary full update.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.rli import ReplicaLocationIndex
from repro.core.updates import UpdateSink


@dataclass
class HierarchyStats:
    forward_passes: int = 0
    bloom_filters_forwarded: int = 0
    names_forwarded: int = 0
    last_duration: float = 0.0
    extra: dict = field(default_factory=dict)


class HierarchicalUpdater:
    """Forwards one RLI's aggregated state to parent RLIs."""

    def __init__(
        self,
        rli: ReplicaLocationIndex,
        sink_resolver: Callable[[str], UpdateSink],
        parents: Sequence[str],
    ) -> None:
        self.rli = rli
        self.sink_resolver = sink_resolver
        self.parents = list(parents)
        self.stats = HierarchyStats()

    def forward_once(self) -> None:
        """Push current state to every parent RLI."""
        start = time.perf_counter()
        relational = self._relational_state()
        bloom_state = self._bloom_state()
        for parent in self.parents:
            sink = self.sink_resolver(parent)
            for lrc_name, lfns in relational.items():
                sink.full_update(lrc_name, lfns)
                self.stats.names_forwarded += len(lfns)
            for lrc_name, (bitmap, nbits, k, entries) in bloom_state.items():
                sink.bloom_update(lrc_name, bitmap, nbits, k, entries)
                self.stats.bloom_filters_forwarded += 1
        self.stats.forward_passes += 1
        self.stats.last_duration = time.perf_counter() - start

    def _relational_state(self) -> dict[str, list[str]]:
        """Per-LRC logical-name lists from the relational store."""
        rows = self.rli.conn.execute(
            "SELECT c.name, l.name FROM t_map m "
            "JOIN t_lrc c ON m.pfn_id = c.id "
            "JOIN t_lfn l ON m.lfn_id = l.id"
        ).rows
        state: dict[str, list[str]] = {}
        for lrc_name, lfn in rows:
            state.setdefault(lrc_name, []).append(lfn)
        return state

    def _bloom_state(self) -> dict[str, tuple[bytes, int, int, int]]:
        """Per-LRC packed filters from the Bloom store."""
        with self.rli._bloom_lock:
            return {
                name: (
                    entry.bloom.to_bytes(),
                    entry.bloom.params.num_bits,
                    entry.bloom.params.num_hashes,
                    entry.bloom.approx_entries,
                )
                for name, entry in self.rli._bloom.items()
            }


class HierarchyThread:
    """Background daemon forwarding RLI state upward on an interval.

    This is the soft-state refresh for the RLI→RLI tier: parents expire
    forwarded entries exactly like LRC-fed ones, so the forwarder must
    re-push periodically (interval < parent timeout).
    """

    def __init__(self, updater: HierarchicalUpdater, interval: float = 60.0):
        self.updater = updater
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop,
            name=f"rli-hierarchy-{self.updater.rli.name}",
            daemon=True,
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.updater.forward_once()
            except Exception:  # pragma: no cover - keep the daemon alive
                pass

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
