"""Local Replica Catalog (LRC).

Maintains logical-name → target-name mappings and typed attributes in a
relational back end reached through the ODBC layer, using the exact table
structure of the paper's Figure 3:

* ``t_lfn`` / ``t_pfn`` — logical and target names with reference counts;
* ``t_map`` — (lfn_id, pfn_id) associations;
* ``t_attribute`` + one value table per attribute type
  (``t_str_attr``, ``t_int_attr``, ``t_flt_attr``, ``t_date_attr``);
* ``t_rli`` — RLIs this LRC updates, and ``t_rlipartition`` — namespace
  partitioning regexes per RLI.

Every public operation in the paper's Table 1 is implemented, including
the bulk variants used by large scientific workflows (§5.4).

Mutations fire change callbacks so the soft-state update manager
(:mod:`repro.core.updates`) can maintain its counting Bloom filter and
immediate-mode change log without polling the database.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.core.errors import (
    AttributeExistsError,
    AttributeNotFoundError,
    InvalidAttributeError,
    MappingExistsError,
    MappingNotFoundError,
    UpdateTargetError,
)
from repro.core.naming import validate_name, wildcard_to_like
from repro.db.errors import DuplicateKeyError
from repro.db.odbc import Connection
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY


class ObjType(enum.IntEnum):
    """Which namespace an attribute attaches to."""

    LFN = 0
    PFN = 1

    @classmethod
    def parse(cls, value: "ObjType | int | str") -> "ObjType":
        if isinstance(value, cls):
            return value
        if isinstance(value, int):
            return cls(value)
        text = value.lower()
        if text in ("lfn", "logical"):
            return cls.LFN
        if text in ("pfn", "target", "physical"):
            return cls.PFN
        raise InvalidAttributeError(f"unknown object type {value!r}")


class AttrType(enum.IntEnum):
    """Attribute value type, one relational table per type (Figure 3)."""

    STR = 0
    INT = 1
    FLOAT = 2
    DATE = 3

    @classmethod
    def parse(cls, value: "AttrType | int | str") -> "AttrType":
        if isinstance(value, cls):
            return value
        if isinstance(value, int):
            return cls(value)
        text = value.lower()
        mapping = {
            "str": cls.STR, "string": cls.STR,
            "int": cls.INT, "integer": cls.INT,
            "float": cls.FLOAT, "double": cls.FLOAT,
            "date": cls.DATE, "timestamp": cls.DATE,
        }
        if text in mapping:
            return mapping[text]
        raise InvalidAttributeError(f"unknown attribute type {value!r}")


_ATTR_TABLE = {
    AttrType.STR: "t_str_attr",
    AttrType.INT: "t_int_attr",
    AttrType.FLOAT: "t_flt_attr",
    AttrType.DATE: "t_date_attr",
}

# Fixed IN-list chunk sizes for the vectorized bulk operations.  Keeping
# the placeholder count constant keeps the SQL text constant, so the
# executor's LRU statement cache hits instead of re-parsing per call;
# short lists pad by repeating the last element (IN dedups, so padding is
# semantically free).
_IN_CHUNK = 256
_SMALL_IN_CHUNK = 16
# Multi-row INSERT chunk (rows per statement).
_INSERT_CHUNK = 64


def _in_chunks(values: Sequence[Any]) -> "Iterable[list[Any]]":
    """Fixed-size chunks of ``values``, padded by repeating the last one."""
    if not values:
        return
    size = _SMALL_IN_CHUNK if len(values) <= _SMALL_IN_CHUNK else _IN_CHUNK
    for start in range(0, len(values), size):
        chunk = list(values[start : start + size])
        if len(chunk) < size:
            chunk.extend(chunk[-1:] * (size - len(chunk)))
        yield chunk

# DDL matching Figure 3 of the paper.
_SCHEMA_STATEMENTS = [
    """CREATE TABLE t_lfn (
        id INT(11) NOT NULL AUTO_INCREMENT,
        name VARCHAR(250) NOT NULL,
        ref INT(11) NOT NULL,
        PRIMARY KEY (id),
        UNIQUE (name))""",
    "CREATE INDEX t_lfn_name_prefix ON t_lfn (name) USING BTREE",
    """CREATE TABLE t_pfn (
        id INT(11) NOT NULL AUTO_INCREMENT,
        name VARCHAR(250) NOT NULL,
        ref INT(11) NOT NULL,
        PRIMARY KEY (id),
        UNIQUE (name))""",
    "CREATE INDEX t_pfn_name_prefix ON t_pfn (name) USING BTREE",
    """CREATE TABLE t_map (
        lfn_id INT(11) NOT NULL,
        pfn_id INT(11) NOT NULL,
        PRIMARY KEY (lfn_id, pfn_id))""",
    "CREATE INDEX t_map_lfn ON t_map (lfn_id)",
    "CREATE INDEX t_map_pfn ON t_map (pfn_id)",
    """CREATE TABLE t_attribute (
        id INT(11) NOT NULL AUTO_INCREMENT,
        name VARCHAR(250) NOT NULL,
        objtype INT(11) NOT NULL,
        type INT(11) NOT NULL,
        PRIMARY KEY (id),
        UNIQUE (name, objtype))""",
    """CREATE TABLE t_str_attr (
        obj_id INT(11) NOT NULL,
        attr_id INT(11) NOT NULL,
        value VARCHAR(250),
        PRIMARY KEY (obj_id, attr_id))""",
    "CREATE INDEX t_str_attr_attr ON t_str_attr (attr_id)",
    """CREATE TABLE t_int_attr (
        obj_id INT(11) NOT NULL,
        attr_id INT(11) NOT NULL,
        value INT(11),
        PRIMARY KEY (obj_id, attr_id))""",
    "CREATE INDEX t_int_attr_attr ON t_int_attr (attr_id)",
    """CREATE TABLE t_flt_attr (
        obj_id INT(11) NOT NULL,
        attr_id INT(11) NOT NULL,
        value FLOAT,
        PRIMARY KEY (obj_id, attr_id))""",
    "CREATE INDEX t_flt_attr_attr ON t_flt_attr (attr_id)",
    """CREATE TABLE t_date_attr (
        obj_id INT(11) NOT NULL,
        attr_id INT(11) NOT NULL,
        value TIMESTAMP,
        PRIMARY KEY (obj_id, attr_id))""",
    "CREATE INDEX t_date_attr_attr ON t_date_attr (attr_id)",
    """CREATE TABLE t_rli (
        id INT(11) NOT NULL AUTO_INCREMENT,
        flags INT(11) NOT NULL,
        name VARCHAR(250) NOT NULL,
        PRIMARY KEY (id),
        UNIQUE (name))""",
    """CREATE TABLE t_rlipartition (
        rli_id INT(11) NOT NULL,
        pattern VARCHAR(250) NOT NULL,
        PRIMARY KEY (rli_id, pattern))""",
]

#: t_rli.flags bit: this RLI receives Bloom-filter updates (else full LFN lists).
FLAG_BLOOMFILTER = 0x1


@dataclass(frozen=True)
class RLITarget:
    """One row of ``t_rli``: an index server this LRC must update."""

    name: str
    flags: int = 0
    patterns: tuple[str, ...] = ()

    @property
    def bloom(self) -> bool:
        return bool(self.flags & FLAG_BLOOMFILTER)


class LocalReplicaCatalog:
    """The LRC service logic, independent of any RPC front end."""

    def __init__(
        self,
        connection: Connection,
        name: str = "lrc",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.conn = connection
        self.name = name
        self._write_lock = threading.RLock()
        # Callbacks: fn(lfn, present) — present=True when the LFN gained its
        # first mapping, False when it lost its last one.
        self._lfn_listeners: list[Callable[[str, bool], None]] = []
        # Callbacks: fn(lfn, pfn, added) — one call per mapping change.
        # LFN listeners carry enough for the RLI index (which only tracks
        # logical names); mirror replication needs the full (lfn, pfn)
        # pair, hence the separate channel.
        self._mapping_listeners: list[Callable[[str, str, bool], None]] = []
        registry = metrics if metrics is not None else NULL_REGISTRY
        self.metrics = registry
        self._m_created = registry.counter("lrc.mappings_created")
        self._m_added = registry.counter("lrc.mappings_added")
        self._m_deleted = registry.counter("lrc.mappings_deleted")
        self._m_bulk_loaded = registry.counter("lrc.mappings_bulk_loaded")
        registry.register_gauge_fn("lrc.lfns", self.lfn_count)
        registry.register_gauge_fn("lrc.mappings", self.mapping_count)

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def init_schema(self) -> None:
        """Create the Figure 3 tables (idempotent)."""
        db = self.conn.database
        for statement in _SCHEMA_STATEMENTS:
            first_word_table = statement.split("(")[0].split()
            if first_word_table[1].upper() == "TABLE" and db.has_table(
                first_word_table[2]
            ):
                continue
            if first_word_table[1].upper() == "INDEX":
                table_name = statement.split(" ON ")[1].split()[0]
                index_name = first_word_table[2]
                try:
                    db.table(table_name).get_index(index_name)
                    continue
                except Exception:
                    pass
            self.conn.execute(statement)

    def add_lfn_listener(self, listener: Callable[[str, bool], None]) -> None:
        """Subscribe to LFN presence changes (used by the update manager)."""
        self._lfn_listeners.append(listener)

    def _notify(self, lfn: str, present: bool) -> None:
        for listener in self._lfn_listeners:
            listener(lfn, present)

    def add_mapping_listener(
        self, listener: Callable[[str, str, bool], None]
    ) -> None:
        """Subscribe to (lfn, pfn, added) mapping changes (mirror feeds)."""
        self._mapping_listeners.append(listener)

    def _notify_mapping(self, lfn: str, pfn: str, added: bool) -> None:
        for listener in self._mapping_listeners:
            listener(lfn, pfn, added)

    # ------------------------------------------------------------------
    # Mapping management (Table 1: create, add, delete + bulk)
    # ------------------------------------------------------------------

    def create_mapping(self, lfn: str, pfn: str) -> None:
        """Register a brand-new logical name with its first replica.

        Fails with :class:`MappingExistsError` if the logical name already
        exists (use :meth:`add_mapping` to register additional replicas).
        """
        validate_name(lfn, "logical name")
        validate_name(pfn, "target name")
        with self._write_lock, self.conn.transaction():
            if self._lfn_id(lfn) is not None:
                raise MappingExistsError(f"logical name exists: {lfn}")
            lfn_id = self._insert_lfn(lfn)
            pfn_id = self._get_or_insert_pfn(pfn)
            self.conn.execute(
                "INSERT INTO t_map (lfn_id, pfn_id) VALUES (?, ?)",
                [lfn_id, pfn_id],
            )
            self._bump_ref("t_pfn", pfn_id, +1)
        self._m_created.inc()
        self._notify(lfn, True)
        self._notify_mapping(lfn, pfn, True)

    def add_mapping(self, lfn: str, pfn: str) -> None:
        """Register an additional replica for an existing logical name."""
        validate_name(lfn, "logical name")
        validate_name(pfn, "target name")
        with self._write_lock, self.conn.transaction():
            lfn_id = self._lfn_id(lfn)
            if lfn_id is None:
                raise MappingNotFoundError(f"logical name does not exist: {lfn}")
            pfn_id = self._get_or_insert_pfn(pfn)
            try:
                self.conn.execute(
                    "INSERT INTO t_map (lfn_id, pfn_id) VALUES (?, ?)",
                    [lfn_id, pfn_id],
                )
            except DuplicateKeyError:
                raise MappingExistsError(
                    f"mapping exists: {lfn} -> {pfn}"
                ) from None
            self._bump_ref("t_lfn", lfn_id, +1)
            self._bump_ref("t_pfn", pfn_id, +1)
        self._m_added.inc()
        self._notify_mapping(lfn, pfn, True)

    def delete_mapping(self, lfn: str, pfn: str) -> None:
        """Remove one replica mapping; prunes orphaned LFN/PFN rows."""
        with self._write_lock, self.conn.transaction():
            lfn_row = self._name_row("t_lfn", lfn)
            pfn_row = self._name_row("t_pfn", pfn)
            if lfn_row is None or pfn_row is None:
                raise MappingNotFoundError(f"mapping does not exist: {lfn} -> {pfn}")
            lfn_id, lfn_ref = lfn_row
            pfn_id, pfn_ref = pfn_row
            deleted = self.conn.execute(
                "DELETE FROM t_map WHERE lfn_id = ? AND pfn_id = ?",
                [lfn_id, pfn_id],
            ).rowcount
            if deleted == 0:
                raise MappingNotFoundError(f"mapping does not exist: {lfn} -> {pfn}")
            last_for_lfn = lfn_ref <= 1
            if last_for_lfn:
                self.conn.execute("DELETE FROM t_lfn WHERE id = ?", [lfn_id])
                self._delete_attr_values(lfn_id, ObjType.LFN)
            else:
                self._bump_ref("t_lfn", lfn_id, -1)
            if pfn_ref <= 1:
                self.conn.execute("DELETE FROM t_pfn WHERE id = ?", [pfn_id])
                self._delete_attr_values(pfn_id, ObjType.PFN)
            else:
                self._bump_ref("t_pfn", pfn_id, -1)
        self._m_deleted.inc()
        if last_for_lfn:
            self._notify(lfn, False)
        self._notify_mapping(lfn, pfn, False)

    # -- bulk variants ----------------------------------------------------
    #
    # The bulk mutations are *vectorized*: instead of replaying the
    # single-pair code path per element (~6-8 statements each), they probe
    # existence with chunked IN lists, write with multi-row INSERTs, and
    # batch the orphan pruning — the amortization behind the paper's
    # Figure 11 bulk-rate lift.  Observable behavior matches the serial
    # path exactly: per-pair failure strings, change notifications in pair
    # order, and reference counts.  The whole batch commits in one
    # transaction (a crash mid-batch rolls back cleanly instead of leaving
    # a prefix applied).

    def bulk_create(self, pairs: Sequence[tuple[str, str]]) -> list[tuple[str, str, str]]:
        """Create many mappings; returns per-pair failures (empty = all ok)."""
        pairs = [(lfn, pfn) for lfn, pfn in pairs]
        if len(pairs) <= 1:
            return self._bulk_apply(pairs, self.create_mapping)
        failures_at: dict[int, str] = {}
        valid: list[tuple[int, str, str]] = []
        for i, (lfn, pfn) in enumerate(pairs):
            try:
                validate_name(lfn, "logical name")
                validate_name(pfn, "target name")
            except Exception as exc:
                failures_at[i] = f"{type(exc).__name__}: {exc}"
                continue
            valid.append((i, lfn, pfn))
        creations: list[tuple[int, str, str]] = []
        with self._write_lock, self.conn.transaction():
            taken = set(
                self._name_rows_in("t_lfn", [lfn for _, lfn, _ in valid])
            )
            for i, lfn, pfn in valid:
                # A duplicate inside the batch fails the same way a
                # pre-existing name does, matching serial order semantics.
                if lfn in taken:
                    failures_at[i] = (
                        f"MappingExistsError: logical name exists: {lfn}"
                    )
                    continue
                taken.add(lfn)
                creations.append((i, lfn, pfn))
            if creations:
                pfn_rows = self._name_rows_in(
                    "t_pfn", [pfn for _, _, pfn in creations]
                )
                new_pfn_refs: dict[str, int] = {}
                bumps: dict[str, int] = {}
                for _, _, pfn in creations:
                    if pfn in pfn_rows:
                        bumps[pfn] = bumps.get(pfn, 0) + 1
                    else:
                        new_pfn_refs[pfn] = new_pfn_refs.get(pfn, 0) + 1
                if new_pfn_refs:
                    # New target names arrive with their final refcount —
                    # no per-row bump statements afterwards.
                    self._insert_rows(
                        "t_pfn", ("name", "ref"), list(new_pfn_refs.items())
                    )
                    pfn_rows.update(
                        self._name_rows_in("t_pfn", list(new_pfn_refs))
                    )
                # Every created logical name has exactly one mapping.
                self._insert_rows(
                    "t_lfn", ("name", "ref"), [(lfn, 1) for _, lfn, _ in creations]
                )
                lfn_rows = self._name_rows_in(
                    "t_lfn", [lfn for _, lfn, _ in creations]
                )
                self._insert_rows(
                    "t_map",
                    ("lfn_id", "pfn_id"),
                    [
                        (lfn_rows[lfn][0], pfn_rows[pfn][0])
                        for _, lfn, pfn in creations
                    ],
                )
                for pfn, delta in bumps.items():
                    pfn_id, ref = pfn_rows[pfn]
                    self.conn.execute(
                        "UPDATE t_pfn SET ref = ? WHERE id = ?",
                        [ref + delta, pfn_id],
                    )
        if creations:
            self._m_created.inc(len(creations))
            for _, lfn, pfn in creations:
                self._notify(lfn, True)
                self._notify_mapping(lfn, pfn, True)
        return [
            (pairs[i][0], pairs[i][1], failures_at[i])
            for i in sorted(failures_at)
        ]

    def bulk_add(self, pairs: Sequence[tuple[str, str]]) -> list[tuple[str, str, str]]:
        return self._bulk_apply(pairs, self.add_mapping)

    def bulk_delete(self, pairs: Sequence[tuple[str, str]]) -> list[tuple[str, str, str]]:
        pairs = [(lfn, pfn) for lfn, pfn in pairs]
        if len(pairs) <= 1:
            return self._bulk_apply(pairs, self.delete_mapping)
        failures_at: dict[int, str] = {}
        deletions: list[tuple[int, str, str, int, int]] = []
        lfn_ref_left: dict[str, int] = {}
        pfn_ref_left: dict[str, int] = {}
        with self._write_lock, self.conn.transaction():
            lfn_rows = self._name_rows_in("t_lfn", [l for l, _ in pairs])
            pfn_rows = self._name_rows_in("t_pfn", [p for _, p in pairs])
            lfn_ref_left = {name: ref for name, (_, ref) in lfn_rows.items()}
            pfn_ref_left = {name: ref for name, (_, ref) in pfn_rows.items()}
            # Which (lfn_id, pfn_id) associations actually exist, probed
            # once for all involved logical names.
            present: set[tuple[int, int]] = set()
            lfn_ids = [row[0] for row in lfn_rows.values()]
            for chunk in _in_chunks(lfn_ids):
                qs = ", ".join("?" * len(chunk))
                for a, b in self.conn.execute(
                    f"SELECT lfn_id, pfn_id FROM t_map WHERE lfn_id IN ({qs})",
                    chunk,
                ).rows:
                    present.add((a, b))
            for i, (lfn, pfn) in enumerate(pairs):
                lrow = lfn_rows.get(lfn)
                prow = pfn_rows.get(pfn)
                if (
                    lrow is None
                    or prow is None
                    or (lrow[0], prow[0]) not in present
                ):
                    failures_at[i] = (
                        "MappingNotFoundError: "
                        f"mapping does not exist: {lfn} -> {pfn}"
                    )
                    continue
                # Discarding makes a duplicate pair later in the batch
                # fail, exactly like the serial second delete would.
                present.discard((lrow[0], prow[0]))
                lfn_ref_left[lfn] -= 1
                pfn_ref_left[pfn] -= 1
                deletions.append((i, lfn, pfn, lrow[0], prow[0]))
            if deletions:
                touched_lfns = {d[1] for d in deletions}
                touched_pfns = {d[2] for d in deletions}
                # t_map: logical names losing *all* replicas batch into IN
                # deletes; partial deletes stay per-pair.
                full_wipe_ids = [
                    lfn_rows[n][0]
                    for n in touched_lfns
                    if lfn_ref_left[n] <= 0
                ]
                full_wipe = set(full_wipe_ids)
                for chunk in _in_chunks(full_wipe_ids):
                    qs = ", ".join("?" * len(chunk))
                    self.conn.execute(
                        f"DELETE FROM t_map WHERE lfn_id IN ({qs})", chunk
                    )
                for _, _, _, lfn_id, pfn_id in deletions:
                    if lfn_id not in full_wipe:
                        self.conn.execute(
                            "DELETE FROM t_map WHERE lfn_id = ? AND pfn_id = ?",
                            [lfn_id, pfn_id],
                        )
                # Prune orphaned name rows in batches; survivors get their
                # final refcount in one UPDATE each.
                self._prune_names(
                    "t_lfn", ObjType.LFN, lfn_rows, lfn_ref_left, touched_lfns
                )
                self._prune_names(
                    "t_pfn", ObjType.PFN, pfn_rows, pfn_ref_left, touched_pfns
                )
        if deletions:
            self._m_deleted.inc(len(deletions))
            last_for_lfn = {lfn: i for i, lfn, _, _, _ in deletions}
            for i, lfn, pfn, _, _ in deletions:
                if lfn_ref_left[lfn] <= 0 and last_for_lfn[lfn] == i:
                    self._notify(lfn, False)
                self._notify_mapping(lfn, pfn, False)
        return [
            (pairs[i][0], pairs[i][1], failures_at[i])
            for i in sorted(failures_at)
        ]

    def _name_rows_in(
        self, table: str, names: Sequence[str]
    ) -> dict[str, tuple[int, int]]:
        """``name -> (id, ref)`` for every existing row among ``names``."""
        out: dict[str, tuple[int, int]] = {}
        unique = list(dict.fromkeys(names))
        for chunk in _in_chunks(unique):
            qs = ", ".join("?" * len(chunk))
            for row_id, name, ref in self.conn.execute(
                f"SELECT id, name, ref FROM {table} WHERE name IN ({qs})",
                chunk,
            ).rows:
                out[name] = (row_id, ref)
        return out

    def _insert_rows(
        self,
        table: str,
        columns: tuple[str, str],
        rows: Sequence[tuple[Any, Any]],
    ) -> None:
        """Multi-row INSERT in fixed-size chunks (statement-cache friendly)."""
        start = 0
        while start < len(rows):
            chunk = rows[start : start + _INSERT_CHUNK]
            placeholders = ", ".join(["(?, ?)"] * len(chunk))
            params: list[Any] = []
            for a, b in chunk:
                params.append(a)
                params.append(b)
            self.conn.execute(
                f"INSERT INTO {table} ({columns[0]}, {columns[1]}) "
                f"VALUES {placeholders}",
                params,
            )
            start += len(chunk)

    def _prune_names(
        self,
        table: str,
        objtype: "ObjType",
        rows: dict[str, tuple[int, int]],
        ref_left: dict[str, int],
        touched: set[str],
    ) -> None:
        orphan_ids = [rows[n][0] for n in touched if ref_left[n] <= 0]
        for chunk in _in_chunks(orphan_ids):
            qs = ", ".join("?" * len(chunk))
            self.conn.execute(
                f"DELETE FROM {table} WHERE id IN ({qs})", chunk
            )
        self._delete_attr_values_bulk(orphan_ids, objtype)
        for name in touched:
            if ref_left[name] > 0:
                self.conn.execute(
                    f"UPDATE {table} SET ref = ? WHERE id = ?",
                    [ref_left[name], rows[name][0]],
                )

    def _delete_attr_values_bulk(
        self, obj_ids: Sequence[int], objtype: "ObjType"
    ) -> None:
        if not obj_ids:
            return
        attr_ids = [
            row[0]
            for row in self.conn.execute(
                "SELECT id FROM t_attribute WHERE objtype = ?", [int(objtype)]
            ).rows
        ]
        if not attr_ids:
            return
        for table in _ATTR_TABLE.values():
            for attr_id in attr_ids:
                for chunk in _in_chunks(obj_ids):
                    qs = ", ".join("?" * len(chunk))
                    self.conn.execute(
                        f"DELETE FROM {table} "
                        f"WHERE attr_id = ? AND obj_id IN ({qs})",
                        [attr_id, *chunk],
                    )

    def _bulk_apply(
        self,
        pairs: Sequence[tuple[str, str]],
        op: Callable[[str, str], None],
    ) -> list[tuple[str, str, str]]:
        failures: list[tuple[str, str, str]] = []
        for lfn, pfn in pairs:
            try:
                op(lfn, pfn)
            except Exception as exc:
                failures.append((lfn, pfn, f"{type(exc).__name__}: {exc}"))
        return failures

    def bulk_load(self, pairs: Iterable[tuple[str, str]]) -> int:
        """Out-of-band initialization: load many mappings fast.

        Bypasses the SQL layer and writes the Figure 3 tables directly —
        the equivalent of the paper's §4 setup step where "a server is
        loaded with a predefined number of mappings" before measuring.
        Assumes a quiescent server and fresh (lfn, pfn) pairs; duplicate
        LFNs get additional replica mappings.  Change listeners are
        notified so Bloom filters stay coherent.  Returns mappings loaded.
        """
        db = self.conn.database
        t_lfn = db.table("t_lfn")
        t_pfn = db.table("t_pfn")
        t_map = db.table("t_map")
        count = 0
        new_lfns: list[str] = []
        # Only buffer the pair list when someone (a mirror feed) listens.
        loaded_pairs: list[tuple[str, str]] | None = (
            [] if self._mapping_listeners else None
        )
        with self._write_lock:
            lfn_ids: dict[str, int] = {}
            pfn_ids: dict[str, int] = {}
            for lfn, pfn in pairs:
                validate_name(lfn, "logical name")
                validate_name(pfn, "target name")
                lfn_id = lfn_ids.get(lfn)
                if lfn_id is None:
                    existing = t_lfn.lookup_equal(("name",), (lfn,))
                    if existing:
                        lfn_id = existing[0][1][0]
                    else:
                        _rid, row = t_lfn.insert({"name": lfn, "ref": 0})
                        lfn_id = row[0]
                        new_lfns.append(lfn)
                    lfn_ids[lfn] = lfn_id
                pfn_id = pfn_ids.get(pfn)
                if pfn_id is None:
                    existing = t_pfn.lookup_equal(("name",), (pfn,))
                    if existing:
                        pfn_id = existing[0][1][0]
                    else:
                        _rid, row = t_pfn.insert({"name": pfn, "ref": 0})
                        pfn_id = row[0]
                    pfn_ids[pfn] = pfn_id
                t_map.insert({"lfn_id": lfn_id, "pfn_id": pfn_id})
                if loaded_pairs is not None:
                    loaded_pairs.append((lfn, pfn))
                count += 1
            # Fix up reference counts in one pass.
            for name, lfn_id in lfn_ids.items():
                refs = len(t_map.lookup_equal(("lfn_id",), (lfn_id,)))
                for rid, _row in t_lfn.lookup_equal(("id",), (lfn_id,)):
                    t_lfn.update_rid(rid, {"ref": refs})
            for name, pfn_id in pfn_ids.items():
                refs = len(t_map.lookup_equal(("pfn_id",), (pfn_id,)))
                for rid, _row in t_pfn.lookup_equal(("id",), (pfn_id,)):
                    t_pfn.update_rid(rid, {"ref": refs})
        self._m_bulk_loaded.inc(count)
        for lfn in new_lfns:
            self._notify(lfn, True)
        if loaded_pairs is not None:
            for lfn, pfn in loaded_pairs:
                self._notify_mapping(lfn, pfn, True)
        return count

    # ------------------------------------------------------------------
    # Queries (Table 1: by logical/target name, wildcard, bulk, attribute)
    # ------------------------------------------------------------------

    def get_mappings(self, lfn: str) -> list[str]:
        """Target names for ``lfn``; raises if none exist."""
        rows = self.conn.execute(
            "SELECT p.name FROM t_lfn l "
            "JOIN t_map m ON l.id = m.lfn_id "
            "JOIN t_pfn p ON m.pfn_id = p.id "
            "WHERE l.name = ?",
            [lfn],
        ).rows
        if not rows:
            raise MappingNotFoundError(f"logical name does not exist: {lfn}")
        return [r[0] for r in rows]

    def get_lfns(self, pfn: str) -> list[str]:
        """Logical names mapped to target name ``pfn``."""
        rows = self.conn.execute(
            "SELECT l.name FROM t_pfn p "
            "JOIN t_map m ON p.id = m.pfn_id "
            "JOIN t_lfn l ON m.lfn_id = l.id "
            "WHERE p.name = ?",
            [pfn],
        ).rows
        if not rows:
            raise MappingNotFoundError(f"target name does not exist: {pfn}")
        return [r[0] for r in rows]

    def query_wildcard(self, pattern: str) -> list[tuple[str, str]]:
        """(lfn, pfn) pairs whose logical name matches an RLS wildcard."""
        like = wildcard_to_like(pattern)
        rows = self.conn.execute(
            "SELECT l.name, p.name FROM t_lfn l "
            "JOIN t_map m ON l.id = m.lfn_id "
            "JOIN t_pfn p ON m.pfn_id = p.id "
            "WHERE l.name LIKE ?",
            [like],
        ).rows
        return [(r[0], r[1]) for r in rows]

    def bulk_query(self, lfns: Sequence[str]) -> dict[str, list[str]]:
        """Mappings for many logical names; absent names are omitted.

        Vectorized: one 3-way join per IN-list chunk instead of one per
        name, which is where the Figure 11 bulk-query rate comes from.
        """
        lfns = list(lfns)
        if len(lfns) <= 2:
            result: dict[str, list[str]] = {}
            for lfn in lfns:
                try:
                    result[lfn] = self.get_mappings(lfn)
                except MappingNotFoundError:
                    continue
            return result
        found: dict[str, list[str]] = {}
        for chunk in _in_chunks(list(dict.fromkeys(lfns))):
            qs = ", ".join("?" * len(chunk))
            rows = self.conn.execute(
                "SELECT l.name, p.name FROM t_lfn l "
                "JOIN t_map m ON l.id = m.lfn_id "
                "JOIN t_pfn p ON m.pfn_id = p.id "
                f"WHERE l.name IN ({qs})",
                chunk,
            ).rows
            for lname, pname in rows:
                if lname in found:
                    found[lname].append(pname)
                else:
                    found[lname] = [pname]
        # Preserve the serial path's key order (input order, found only).
        return {lfn: found[lfn] for lfn in lfns if lfn in found}

    def exists(self, lfn: str) -> bool:
        return self._lfn_id(lfn) is not None

    def lfn_count(self) -> int:
        return int(self.conn.execute("SELECT COUNT(*) FROM t_lfn").scalar())

    def mapping_count(self) -> int:
        return int(self.conn.execute("SELECT COUNT(*) FROM t_map").scalar())

    def all_lfns(self) -> list[str]:
        """Every logical name (the payload of a full soft-state update)."""
        return [r[0] for r in self.conn.execute("SELECT name FROM t_lfn").rows]

    # ------------------------------------------------------------------
    # Attribute management (Table 1)
    # ------------------------------------------------------------------

    def define_attribute(
        self, name: str, objtype: ObjType | str, attrtype: AttrType | str
    ) -> int:
        """Create an attribute definition; returns its id."""
        objtype = ObjType.parse(objtype)
        attrtype = AttrType.parse(attrtype)
        with self._write_lock:
            try:
                result = self.conn.execute(
                    "INSERT INTO t_attribute (name, objtype, type) VALUES (?, ?, ?)",
                    [name, int(objtype), int(attrtype)],
                )
            except DuplicateKeyError:
                raise AttributeExistsError(
                    f"attribute exists: {name} ({objtype.name.lower()})"
                ) from None
            assert result.lastrowid is not None
            return result.lastrowid

    def undefine_attribute(self, name: str, objtype: ObjType | str) -> None:
        """Drop an attribute definition and all of its values."""
        objtype = ObjType.parse(objtype)
        with self._write_lock:
            attr_id, attrtype = self._attr_def(name, objtype)
            self.conn.execute(
                f"DELETE FROM {_ATTR_TABLE[attrtype]} WHERE attr_id = ?", [attr_id]
            )
            self.conn.execute("DELETE FROM t_attribute WHERE id = ?", [attr_id])

    def add_attribute(
        self, object_name: str, attr_name: str, objtype: ObjType | str, value: Any
    ) -> None:
        """Attach an attribute value to an LFN or PFN."""
        objtype = ObjType.parse(objtype)
        with self._write_lock:
            attr_id, attrtype = self._attr_def(attr_name, objtype)
            obj_id = self._object_id(object_name, objtype)
            value = _coerce_attr_value(attrtype, value)
            try:
                self.conn.execute(
                    f"INSERT INTO {_ATTR_TABLE[attrtype]} (obj_id, attr_id, value) "
                    "VALUES (?, ?, ?)",
                    [obj_id, attr_id, value],
                )
            except DuplicateKeyError:
                raise AttributeExistsError(
                    f"attribute {attr_name} already set on {object_name}"
                ) from None

    def modify_attribute(
        self, object_name: str, attr_name: str, objtype: ObjType | str, value: Any
    ) -> None:
        objtype = ObjType.parse(objtype)
        with self._write_lock:
            attr_id, attrtype = self._attr_def(attr_name, objtype)
            obj_id = self._object_id(object_name, objtype)
            value = _coerce_attr_value(attrtype, value)
            updated = self.conn.execute(
                f"UPDATE {_ATTR_TABLE[attrtype]} SET value = ? "
                "WHERE obj_id = ? AND attr_id = ?",
                [value, obj_id, attr_id],
            ).rowcount
            if updated == 0:
                raise AttributeNotFoundError(
                    f"attribute {attr_name} not set on {object_name}"
                )

    def remove_attribute(
        self, object_name: str, attr_name: str, objtype: ObjType | str
    ) -> None:
        objtype = ObjType.parse(objtype)
        with self._write_lock:
            attr_id, attrtype = self._attr_def(attr_name, objtype)
            obj_id = self._object_id(object_name, objtype)
            deleted = self.conn.execute(
                f"DELETE FROM {_ATTR_TABLE[attrtype]} "
                "WHERE obj_id = ? AND attr_id = ?",
                [obj_id, attr_id],
            ).rowcount
            if deleted == 0:
                raise AttributeNotFoundError(
                    f"attribute {attr_name} not set on {object_name}"
                )

    def get_attributes(
        self, object_name: str, objtype: ObjType | str
    ) -> dict[str, Any]:
        """All attribute name → value pairs on an object."""
        objtype = ObjType.parse(objtype)
        obj_id = self._object_id(object_name, objtype)
        result: dict[str, Any] = {}
        for attrtype, table in _ATTR_TABLE.items():
            rows = self.conn.execute(
                f"SELECT a.name, v.value FROM t_attribute a "
                f"JOIN {table} v ON a.id = v.attr_id "
                "WHERE v.obj_id = ? AND a.objtype = ?",
                [obj_id, int(objtype)],
            ).rows
            for attr_name, value in rows:
                result[attr_name] = value
        return result

    def query_by_attribute(
        self,
        attr_name: str,
        objtype: ObjType | str,
        value: Any = None,
        op: str = "=",
    ) -> list[tuple[str, Any]]:
        """Objects carrying attribute ``attr_name`` (optionally filtered).

        Returns (object name, attribute value) pairs.  ``op`` is one of
        ``= != < <= > >=`` applied to ``value`` when given.
        """
        objtype = ObjType.parse(objtype)
        attr_id, attrtype = self._attr_def(attr_name, objtype)
        name_table = "t_lfn" if objtype is ObjType.LFN else "t_pfn"
        sql = (
            f"SELECT n.name, v.value FROM {_ATTR_TABLE[attrtype]} v "
            f"JOIN {name_table} n ON v.obj_id = n.id "
            "WHERE v.attr_id = ?"
        )
        params: list[Any] = [attr_id]
        if value is not None:
            if op not in ("=", "!=", "<", "<=", ">", ">="):
                raise InvalidAttributeError(f"bad attribute comparison {op!r}")
            sql += f" AND v.value {op} ?"
            params.append(_coerce_attr_value(attrtype, value))
        rows = self.conn.execute(sql, params).rows
        return [(r[0], r[1]) for r in rows]

    def bulk_add_attribute(
        self, triples: Sequence[tuple[str, str, Any]], objtype: ObjType | str
    ) -> list[tuple[str, str, str]]:
        """Bulk attach: (object, attribute, value) triples; returns failures."""
        failures = []
        for object_name, attr_name, value in triples:
            try:
                self.add_attribute(object_name, attr_name, objtype, value)
            except Exception as exc:
                failures.append(
                    (object_name, attr_name, f"{type(exc).__name__}: {exc}")
                )
        return failures

    # ------------------------------------------------------------------
    # RLI update-target management (Table 1: LRC management)
    # ------------------------------------------------------------------

    def add_rli(
        self,
        rli_name: str,
        bloom: bool = False,
        patterns: Iterable[str] = (),
    ) -> None:
        """Register an RLI this LRC must send soft-state updates to."""
        flags = FLAG_BLOOMFILTER if bloom else 0
        with self._write_lock:
            try:
                result = self.conn.execute(
                    "INSERT INTO t_rli (flags, name) VALUES (?, ?)",
                    [flags, rli_name],
                )
            except DuplicateKeyError:
                raise UpdateTargetError(f"RLI already registered: {rli_name}") from None
            rli_id = result.lastrowid
            for pattern in patterns:
                self.conn.execute(
                    "INSERT INTO t_rlipartition (rli_id, pattern) VALUES (?, ?)",
                    [rli_id, pattern],
                )

    def remove_rli(self, rli_name: str) -> None:
        with self._write_lock:
            row = self.conn.execute(
                "SELECT id FROM t_rli WHERE name = ?", [rli_name]
            ).rows
            if not row:
                raise UpdateTargetError(f"RLI not registered: {rli_name}")
            rli_id = row[0][0]
            self.conn.execute("DELETE FROM t_rlipartition WHERE rli_id = ?", [rli_id])
            self.conn.execute("DELETE FROM t_rli WHERE id = ?", [rli_id])

    def rli_targets(self) -> list[RLITarget]:
        """Every registered RLI with its flags and partition patterns."""
        targets = []
        for rli_id, flags, name in self.conn.execute(
            "SELECT id, flags, name FROM t_rli"
        ).rows:
            patterns = tuple(
                r[0]
                for r in self.conn.execute(
                    "SELECT pattern FROM t_rlipartition WHERE rli_id = ?",
                    [rli_id],
                ).rows
            )
            targets.append(RLITarget(name=name, flags=flags, patterns=patterns))
        return targets

    # ------------------------------------------------------------------
    # Integrity verification (rls admin verify)
    # ------------------------------------------------------------------

    def verify_integrity(self) -> list[str]:
        """Catalog-level fsck: check cross-table invariants.

        * every ``t_map`` row references existing ``t_lfn``/``t_pfn`` rows;
        * ``ref`` counts equal the actual mapping counts;
        * no orphaned names (a name row with zero mappings);
        * attribute values reference existing objects and definitions;
        * the storage engine's own index integrity holds.

        Returns a list of problem descriptions (empty = healthy).
        """
        problems: list[str] = []
        with self._write_lock:
            db = self.conn.database
            for table_name in ("t_lfn", "t_pfn", "t_map", "t_attribute"):
                problems.extend(db.table(table_name).check_integrity())

            lfn_rows = {r[0]: (r[1], r[2]) for r in self.conn.execute(
                "SELECT id, name, ref FROM t_lfn").rows}
            pfn_rows = {r[0]: (r[1], r[2]) for r in self.conn.execute(
                "SELECT id, name, ref FROM t_pfn").rows}
            maps = self.conn.execute("SELECT lfn_id, pfn_id FROM t_map").rows

            lfn_counts: dict[int, int] = {}
            pfn_counts: dict[int, int] = {}
            for lfn_id, pfn_id in maps:
                if lfn_id not in lfn_rows:
                    problems.append(f"t_map references missing lfn id {lfn_id}")
                if pfn_id not in pfn_rows:
                    problems.append(f"t_map references missing pfn id {pfn_id}")
                lfn_counts[lfn_id] = lfn_counts.get(lfn_id, 0) + 1
                pfn_counts[pfn_id] = pfn_counts.get(pfn_id, 0) + 1

            for rows, counts, label in (
                (lfn_rows, lfn_counts, "lfn"),
                (pfn_rows, pfn_counts, "pfn"),
            ):
                for row_id, (name, ref) in rows.items():
                    actual = counts.get(row_id, 0)
                    if actual == 0:
                        problems.append(
                            f"orphaned {label} {name!r} (id {row_id})"
                        )
                    elif ref != actual:
                        problems.append(
                            f"{label} {name!r}: ref={ref} but has "
                            f"{actual} mappings"
                        )

            attr_ids = {
                r[0]
                for r in self.conn.execute("SELECT id FROM t_attribute").rows
            }
            for table in _ATTR_TABLE.values():
                for obj_id, attr_id in self.conn.execute(
                    f"SELECT obj_id, attr_id FROM {table}"
                ).rows:
                    if attr_id not in attr_ids:
                        problems.append(
                            f"{table}: value references missing attribute "
                            f"definition {attr_id}"
                        )
                    if obj_id not in lfn_rows and obj_id not in pfn_rows:
                        problems.append(
                            f"{table}: value references missing object "
                            f"{obj_id}"
                        )
        return problems

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _lfn_id(self, lfn: str) -> int | None:
        rows = self.conn.execute(
            "SELECT id FROM t_lfn WHERE name = ?", [lfn]
        ).rows
        return rows[0][0] if rows else None

    def _name_row(self, table: str, name: str) -> tuple[int, int] | None:
        rows = self.conn.execute(
            f"SELECT id, ref FROM {table} WHERE name = ?", [name]
        ).rows
        return (rows[0][0], rows[0][1]) if rows else None

    def _insert_lfn(self, lfn: str) -> int:
        result = self.conn.execute(
            "INSERT INTO t_lfn (name, ref) VALUES (?, ?)", [lfn, 1]
        )
        assert result.lastrowid is not None
        return result.lastrowid

    def _get_or_insert_pfn(self, pfn: str) -> int:
        row = self._name_row("t_pfn", pfn)
        if row is not None:
            return row[0]
        result = self.conn.execute(
            "INSERT INTO t_pfn (name, ref) VALUES (?, ?)", [pfn, 0]
        )
        assert result.lastrowid is not None
        return result.lastrowid

    def _bump_ref(self, table: str, row_id: int, delta: int) -> None:
        current = self.conn.execute(
            f"SELECT ref FROM {table} WHERE id = ?", [row_id]
        ).scalar()
        self.conn.execute(
            f"UPDATE {table} SET ref = ? WHERE id = ?", [current + delta, row_id]
        )

    def _object_id(self, name: str, objtype: ObjType) -> int:
        table = "t_lfn" if objtype is ObjType.LFN else "t_pfn"
        row = self._name_row(table, name)
        if row is None:
            raise MappingNotFoundError(
                f"{'logical' if objtype is ObjType.LFN else 'target'} "
                f"name does not exist: {name}"
            )
        return row[0]

    def _delete_attr_values(self, obj_id: int, objtype: ObjType) -> None:
        """Drop every attribute value attached to a pruned LFN/PFN row.

        Only values whose attribute definition matches the object's
        namespace are removed — an LFN and a PFN sharing a surrogate id in
        their respective tables must not clobber each other's attributes.
        """
        attr_ids = [
            row[0]
            for row in self.conn.execute(
                "SELECT id FROM t_attribute WHERE objtype = ?", [int(objtype)]
            ).rows
        ]
        if not attr_ids:
            return
        for table in _ATTR_TABLE.values():
            for attr_id in attr_ids:
                self.conn.execute(
                    f"DELETE FROM {table} WHERE obj_id = ? AND attr_id = ?",
                    [obj_id, attr_id],
                )

    def _attr_def(self, name: str, objtype: ObjType) -> tuple[int, AttrType]:
        rows = self.conn.execute(
            "SELECT id, type FROM t_attribute WHERE name = ? AND objtype = ?",
            [name, int(objtype)],
        ).rows
        if not rows:
            raise AttributeNotFoundError(
                f"attribute not defined: {name} ({objtype.name.lower()})"
            )
        return rows[0][0], AttrType(rows[0][1])


def _coerce_attr_value(attrtype: AttrType, value: Any) -> Any:
    try:
        if attrtype is AttrType.STR:
            if not isinstance(value, str):
                raise TypeError("expected str")
            return value
        if attrtype is AttrType.INT:
            return int(value)
        if attrtype is AttrType.FLOAT:
            return float(value)
        if attrtype is AttrType.DATE:
            if isinstance(value, (int, float)):
                return float(value)
            import datetime as _dt

            if isinstance(value, _dt.datetime):
                return value.timestamp()
            return _dt.datetime.fromisoformat(str(value)).timestamp()
    except (TypeError, ValueError) as exc:
        raise InvalidAttributeError(
            f"bad {attrtype.name.lower()} attribute value {value!r}: {exc}"
        ) from None
    raise InvalidAttributeError(f"unknown attribute type {attrtype!r}")
