"""Static membership configuration (§3.6).

The paper's implementation "does not include a membership service ...
Instead, we use a simple static configuration of LRCs and RLIs."  This
module is that static configuration: a process-wide registry mapping
server names to the way they are reached (in-process endpoint or TCP
address), used by update managers to resolve RLI names to sinks and by
applications to open client connections by name.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.errors import UpdateTargetError
from repro.core.updates import RPCSink, UpdateSink
from repro.net.retry import RetryPolicy
from repro.net.rpc import RPCClient
from repro.net.transport import connect_local, connect_tcp


@dataclass(frozen=True)
class MemberAddress:
    """How to reach one RLS server."""

    name: str
    kind: str = "local"  # "local" (in-process endpoint) or "tcp"
    host: str = "127.0.0.1"
    port: int = 0


class StaticMembership:
    """Name → address registry for a deployment."""

    def __init__(self) -> None:
        self._members: dict[str, MemberAddress] = {}
        self._lock = threading.Lock()

    def register(self, address: MemberAddress) -> None:
        with self._lock:
            self._members[address.name] = address

    def register_local(self, name: str) -> None:
        self.register(MemberAddress(name=name, kind="local"))

    def register_tcp(self, name: str, host: str, port: int) -> None:
        self.register(MemberAddress(name=name, kind="tcp", host=host, port=port))

    def unregister(self, name: str) -> None:
        with self._lock:
            self._members.pop(name, None)

    def members(self) -> list[MemberAddress]:
        with self._lock:
            return sorted(self._members.values(), key=lambda m: m.name)

    def lookup(self, name: str) -> MemberAddress:
        with self._lock:
            address = self._members.get(name)
        if address is None:
            raise UpdateTargetError(f"unknown RLS member: {name!r}")
        return address

    def connect(
        self,
        name: str,
        credential: bytes | None = None,
        retry: RetryPolicy | None = None,
    ) -> RPCClient:
        """Open an RPC client to a member by name.

        With ``retry``, transport failures re-dial the member (via a fresh
        address lookup, so re-registration at a new port is picked up) and
        retry the call with the policy's backoff.
        """
        address = self.lookup(name)
        reconnect = None
        if retry is not None:
            reconnect = lambda: self._dial(self.lookup(name), credential, retry)  # noqa: E731
        return RPCClient(
            self._dial(address, credential, retry),
            retry=retry,
            reconnect=reconnect,
        )

    def _dial(
        self,
        address: MemberAddress,
        credential: bytes | None,
        retry: RetryPolicy | None = None,
    ):
        if address.kind == "local":
            return connect_local(address.name, credential)
        return connect_tcp(address.host, address.port, credential, retry=retry)

    def resolve_sink(
        self,
        name: str,
        credential: bytes | None = None,
        retry: RetryPolicy | None = None,
    ) -> UpdateSink:
        """Update sink for an RLI member (a fresh RPC connection)."""
        # Members registered only as in-process servers can also be reached
        # directly through the local transport registry even without an
        # explicit membership entry — see the module-level resolve_sink().
        return RPCSink(self.connect(name, credential, retry=retry))


#: Default process-wide membership, used when no explicit one is supplied.
DEFAULT = StaticMembership()


def resolve_sink(name: str, retry: RetryPolicy | None = None) -> UpdateSink:
    """Resolve ``name`` via the default membership, falling back to the
    in-process transport registry (covers servers that never registered
    a membership entry explicitly)."""
    try:
        return DEFAULT.resolve_sink(name, retry=retry)
    except UpdateTargetError:
        reconnect = None
        if retry is not None:
            reconnect = lambda: connect_local(name)  # noqa: E731
        return RPCSink(
            RPCClient(connect_local(name), retry=retry, reconnect=reconnect)
        )
