"""Logical/target name validation and wildcard handling.

Logical names (LFNs) are unique identifiers for data content; target names
(usually physical file names, PFNs) are replica locations.  The RLS client
interface supports wildcard queries using ``*`` (any run) and ``?`` (any
single character), which map onto SQL ``LIKE``'s ``%`` and ``_``.
"""

from __future__ import annotations

import re

from repro.core.errors import InvalidNameError

#: Maximum name length, from the ``varchar(250)`` columns in Figure 3.
MAX_NAME_LENGTH = 250

_WILDCARD_CHARS = ("*", "?")


def validate_name(name: str, kind: str = "name") -> str:
    """Validate an LFN/PFN; returns it unchanged or raises InvalidNameError."""
    if not isinstance(name, str):
        raise InvalidNameError(f"{kind} must be a string, got {type(name).__name__}")
    if not name:
        raise InvalidNameError(f"{kind} must not be empty")
    if len(name) > MAX_NAME_LENGTH:
        raise InvalidNameError(
            f"{kind} exceeds {MAX_NAME_LENGTH} characters ({len(name)})"
        )
    if "\x00" in name:
        raise InvalidNameError(f"{kind} must not contain NUL")
    return name


def has_wildcard(pattern: str) -> bool:
    """True if ``pattern`` contains RLS wildcard characters."""
    return any(ch in pattern for ch in _WILDCARD_CHARS)


def wildcard_to_like(pattern: str) -> str:
    """Translate an RLS wildcard pattern to a SQL LIKE pattern.

    ``*`` → ``%`` and ``?`` → ``_``; literal ``%``/``_`` in names cannot be
    escaped in this dialect (they do not occur in grid file names).
    """
    return pattern.replace("*", "%").replace("?", "_")


_REGEX_CACHE: dict[str, re.Pattern[str]] = {}


def wildcard_to_regex(pattern: str) -> re.Pattern[str]:
    """Compile an RLS wildcard pattern to an anchored regex."""
    compiled = _REGEX_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for ch in pattern:
            if ch == "*":
                parts.append(".*")
            elif ch == "?":
                parts.append(".")
            else:
                parts.append(re.escape(ch))
        compiled = re.compile("".join(parts) + r"\Z", re.DOTALL)
        if len(_REGEX_CACHE) < 4096:
            _REGEX_CACHE[pattern] = compiled
    return compiled
