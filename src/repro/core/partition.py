"""Namespace partitioning of soft-state updates (§3.5).

When partitioning is enabled, logical names are matched against regular
expressions and updates for different subsets of the namespace go to
different RLIs.  A target with no patterns receives the whole namespace.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from repro.core.lrc import RLITarget


class PartitionRouter:
    """Routes logical names to the RLI targets whose patterns match."""

    def __init__(self, targets: Sequence[RLITarget]) -> None:
        self.targets = list(targets)
        self._compiled: dict[str, list[re.Pattern[str]]] = {
            t.name: [re.compile(p) for p in t.patterns] for t in self.targets
        }

    def matches(self, target: RLITarget, lfn: str) -> bool:
        """True if ``target`` should receive updates about ``lfn``.

        Patterns use ``re.search`` semantics, like Globus partition
        regexes; no patterns means "everything".
        """
        patterns = self._compiled[target.name]
        if not patterns:
            return True
        return any(p.search(lfn) for p in patterns)

    def filter_names(self, target: RLITarget, lfns: Iterable[str]) -> list[str]:
        """Subset of ``lfns`` that ``target`` should receive."""
        patterns = self._compiled[target.name]
        if not patterns:
            return list(lfns)
        return [lfn for lfn in lfns if any(p.search(lfn) for p in patterns)]

    def route(self, lfn: str) -> list[RLITarget]:
        """Every target that should hear about ``lfn``."""
        return [t for t in self.targets if self.matches(t, lfn)]
