"""Namespace partitioning of soft-state updates (§3.5).

When partitioning is enabled, logical names are matched against regular
expressions and updates for different subsets of the namespace go to
different RLIs.  A target with no patterns receives the whole namespace.

``route`` sits on the hot update path — it runs once per changed LFN —
so each target's pattern list is pre-joined into a single compiled
alternation (``(?:p1)|(?:p2)|...``): one C-level ``search`` per target
instead of a Python-level ``any()`` over k patterns.  Patterns containing
backreferences cannot be joined safely (group numbers shift inside an
alternation), so those targets keep the per-pattern path.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from repro.core.lrc import RLITarget

#: Backreference forms (``\1`` ... ``\99``, ``(?P=name)``) whose meaning
#: would change inside a joined alternation.
_BACKREF = re.compile(r"\\[1-9]|\(\?P=")


def _combine(patterns: Sequence[str]) -> re.Pattern[str] | None:
    """One alternation matching iff any pattern matches, or ``None`` when
    the patterns cannot be combined without changing semantics."""
    if any(_BACKREF.search(p) for p in patterns):
        return None
    return re.compile("|".join(f"(?:{p})" for p in patterns))


class PartitionRouter:
    """Routes logical names to the RLI targets whose patterns match."""

    def __init__(self, targets: Sequence[RLITarget]) -> None:
        self.targets = list(targets)
        self._compiled: dict[str, list[re.Pattern[str]]] = {
            t.name: [re.compile(p) for p in t.patterns] for t in self.targets
        }
        # Fast path: (target, combined-alternation-or-None); None marks a
        # match-all target (no patterns).  Targets whose patterns cannot
        # be combined fall back to the per-pattern list.
        self._route_plan: list[
            tuple[RLITarget, re.Pattern[str] | None, list[re.Pattern[str]]]
        ] = []
        for t in self.targets:
            if not t.patterns:
                self._route_plan.append((t, None, []))
            else:
                combined = _combine(t.patterns)
                fallback = self._compiled[t.name] if combined is None else []
                self._route_plan.append((t, combined, fallback))

    def matches(self, target: RLITarget, lfn: str) -> bool:
        """True if ``target`` should receive updates about ``lfn``.

        Patterns use ``re.search`` semantics, like Globus partition
        regexes; no patterns means "everything".
        """
        patterns = self._compiled[target.name]
        if not patterns:
            return True
        return any(p.search(lfn) for p in patterns)

    def filter_names(self, target: RLITarget, lfns: Iterable[str]) -> list[str]:
        """Subset of ``lfns`` that ``target`` should receive."""
        patterns = self._compiled[target.name]
        if not patterns:
            return list(lfns)
        combined = _combine([p.pattern for p in patterns])
        if combined is not None:
            search = combined.search
            return [lfn for lfn in lfns if search(lfn)]
        return [lfn for lfn in lfns if any(p.search(lfn) for p in patterns)]

    def route(self, lfn: str) -> list[RLITarget]:
        """Every target that should hear about ``lfn``."""
        matched: list[RLITarget] = []
        for target, combined, fallback in self._route_plan:
            if combined is not None:
                if combined.search(lfn):
                    matched.append(target)
            elif not fallback:
                matched.append(target)  # match-all target
            elif any(p.search(lfn) for p in fallback):
                matched.append(target)
        return matched
