"""Replica Location Index (RLI).

An RLI aggregates soft state from one or more LRCs and answers the
question "which LRCs hold mappings for this logical name?".  Following the
paper's v2.0.9 behaviour it keeps two stores:

* **Relational store** for full/incremental (uncompressed) updates — the
  three tables on the right of Figure 3: ``t_lfn``, ``t_lrc`` and a
  ``t_map`` whose rows carry an ``updatetime`` timestamp.  An expire pass
  discards mappings older than the soft-state timeout.
* **Bloom store** for compressed updates — one in-memory Bloom filter per
  sending LRC, no database at all, "which provides fast soft state update
  and query performance" (§3.4).  Wildcard queries are impossible against
  Bloom filters and raise :class:`WildcardNotSupportedError` (§5.4).

A query consults both stores, since different LRCs may update the same RLI
in different modes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.bloom import BloomFilter, BloomParameters
from repro.core.errors import (
    MappingNotFoundError,
    WildcardNotSupportedError,
)
from repro.core.naming import has_wildcard, wildcard_to_like
from repro.db.errors import DuplicateKeyError
from repro.db.odbc import Connection
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

#: Default soft-state lifetime.  The Globus default full-update interval is
#: much shorter; entries must survive a few missed updates.
DEFAULT_TIMEOUT = 30 * 60.0

_RLI_SCHEMA = [
    """CREATE TABLE t_lfn (
        id INT(11) NOT NULL AUTO_INCREMENT,
        name VARCHAR(250) NOT NULL,
        ref INT(11) NOT NULL,
        PRIMARY KEY (id),
        UNIQUE (name))""",
    "CREATE INDEX t_lfn_name_prefix ON t_lfn (name) USING BTREE",
    """CREATE TABLE t_lrc (
        id INT(11) NOT NULL AUTO_INCREMENT,
        name VARCHAR(250) NOT NULL,
        ref INT(11) NOT NULL,
        PRIMARY KEY (id),
        UNIQUE (name))""",
    """CREATE TABLE t_map (
        lfn_id INT(11) NOT NULL,
        pfn_id INT(11) NOT NULL,
        updatetime TIMESTAMP NOT NULL,
        PRIMARY KEY (lfn_id, pfn_id))""",
    "CREATE INDEX t_map_lfn ON t_map (lfn_id)",
    "CREATE INDEX t_map_lrc ON t_map (pfn_id)",
]
# Note: the paper's RLI t_map column is named pfn_id even though it holds
# an LRC id (Figure 3); we keep the name for fidelity.


@dataclass
class _BloomEntry:
    bloom: BloomFilter
    received_at: float
    updates_received: int = 1


class ReplicaLocationIndex:
    """The RLI service logic, independent of any RPC front end."""

    def __init__(
        self,
        connection: Connection,
        name: str = "rli",
        timeout: float = DEFAULT_TIMEOUT,
        clock: Callable[[], float] = time.time,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.conn = connection
        self.name = name
        self.timeout = timeout
        self.clock = clock
        self._bloom_lock = threading.RLock()
        self._bloom: dict[str, _BloomEntry] = {}
        self._write_lock = threading.RLock()
        self.updates_applied = 0
        # Wall-clock receipt time of the newest soft-state update per LRC
        # (both stores), for the rli.staleness_age gauge.
        self._last_update_at: dict[str, float] = {}
        registry = metrics if metrics is not None else NULL_REGISTRY
        self.metrics = registry
        self._m_apply = {
            kind: (
                registry.counter("rli.updates_applied", kind=kind),
                registry.histogram("rli.update_apply_latency", kind=kind),
            )
            for kind in ("full", "incremental", "bloom")
        }
        self._m_expired = registry.counter("rli.entries_expired")
        registry.register_gauge_fn("rli.mappings", self.mapping_count)
        registry.register_gauge_fn("rli.bloom_filters", self.bloom_filter_count)
        registry.register_gauge_fn("rli.staleness_age", self.staleness_age)

    def _record_apply(self, kind: str, lrc_name: str, elapsed: float) -> None:
        """Count one applied update and refresh the per-LRC staleness clock."""
        counter, histogram = self._m_apply[kind]
        counter.inc()
        if not histogram.noop:
            histogram.observe(elapsed)
        self._last_update_at[lrc_name] = self.clock()

    def staleness_age(self) -> float:
        """Seconds since the least-recently-updated LRC sent soft state.

        This is the worst-case age of the index's view of any contributing
        LRC — the paper's soft-state consistency measure.  Zero when no
        updates have been received yet.
        """
        if not self._last_update_at:
            return 0.0
        now = self.clock()
        return max(0.0, now - min(self._last_update_at.values()))

    def staleness_ages(self) -> dict[str, float]:
        """Per-LRC soft-state age in seconds (``rls top`` drill-down)."""
        now = self.clock()
        return {
            lrc: max(0.0, now - at)
            for lrc, at in sorted(self._last_update_at.items())
        }

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def init_schema(self) -> None:
        db = self.conn.database
        for statement in _RLI_SCHEMA:
            head = statement.split("(")[0].split()
            if head[1].upper() == "TABLE" and db.has_table(head[2]):
                continue
            if head[1].upper() == "INDEX":
                table_name = statement.split(" ON ")[1].split()[0]
                try:
                    db.table(table_name).get_index(head[2])
                    continue
                except Exception:
                    pass
            self.conn.execute(statement)

    # ------------------------------------------------------------------
    # Soft-state ingest: uncompressed
    # ------------------------------------------------------------------

    def apply_full_update(self, lrc_name: str, lfns: Iterable[str]) -> int:
        """Apply a full uncompressed update: refresh every listed LFN.

        Mappings from this LRC that are *not* in the list simply age out at
        the soft-state timeout — full updates never delete eagerly.
        Returns the number of mappings refreshed.
        """
        now = self.clock()
        count = 0
        start = time.perf_counter()
        with self._write_lock:
            lrc_id = self._get_or_insert_lrc(lrc_name)
            for lfn in lfns:
                self._upsert_mapping(lfn, lrc_id, now)
                count += 1
            self.updates_applied += 1
        self._record_apply("full", lrc_name, time.perf_counter() - start)
        return count

    def apply_incremental_update(
        self,
        lrc_name: str,
        added: Sequence[str],
        removed: Sequence[str],
    ) -> int:
        """Apply an immediate-mode delta (§3.3). Returns mappings touched."""
        now = self.clock()
        start = time.perf_counter()
        with self._write_lock:
            lrc_id = self._get_or_insert_lrc(lrc_name)
            for lfn in added:
                self._upsert_mapping(lfn, lrc_id, now)
            for lfn in removed:
                self._remove_mapping(lfn, lrc_id)
            self.updates_applied += 1
        self._record_apply("incremental", lrc_name, time.perf_counter() - start)
        return len(added) + len(removed)

    def _upsert_mapping(self, lfn: str, lrc_id: int, now: float) -> None:
        lfn_id = self._get_or_insert_lfn(lfn)
        updated = self.conn.execute(
            "UPDATE t_map SET updatetime = ? WHERE lfn_id = ? AND pfn_id = ?",
            [now, lfn_id, lrc_id],
        ).rowcount
        if updated == 0:
            try:
                self.conn.execute(
                    "INSERT INTO t_map (lfn_id, pfn_id, updatetime) VALUES (?, ?, ?)",
                    [lfn_id, lrc_id, now],
                )
            except DuplicateKeyError:  # pragma: no cover - racing writers
                pass

    def _remove_mapping(self, lfn: str, lrc_id: int) -> None:
        rows = self.conn.execute(
            "SELECT id FROM t_lfn WHERE name = ?", [lfn]
        ).rows
        if not rows:
            return
        lfn_id = rows[0][0]
        self.conn.execute(
            "DELETE FROM t_map WHERE lfn_id = ? AND pfn_id = ?",
            [lfn_id, lrc_id],
        )
        remaining = self.conn.execute(
            "SELECT COUNT(*) FROM t_map WHERE lfn_id = ?", [lfn_id]
        ).scalar()
        if remaining == 0:
            self.conn.execute("DELETE FROM t_lfn WHERE id = ?", [lfn_id])

    def bulk_load(self, lrc_name: str, lfns: Iterable[str]) -> int:
        """Out-of-band initialization of the relational store (§4 setup).

        Writes the index tables directly, skipping the SQL layer; used by
        the benchmark harness to pre-populate an RLI before measuring.
        """
        now = self.clock()
        db = self.conn.database
        t_lfn = db.table("t_lfn")
        t_map = db.table("t_map")
        count = 0
        with self._write_lock:
            lrc_id = self._get_or_insert_lrc(lrc_name)
            for lfn in lfns:
                existing = t_lfn.lookup_equal(("name",), (lfn,))
                if existing:
                    lfn_id = existing[0][1][0]
                else:
                    _rid, row = t_lfn.insert({"name": lfn, "ref": 1})
                    lfn_id = row[0]
                if not t_map.lookup_equal(
                    ("lfn_id", "pfn_id"), (lfn_id, lrc_id)
                ):
                    t_map.insert(
                        {"lfn_id": lfn_id, "pfn_id": lrc_id, "updatetime": now}
                    )
                count += 1
        return count

    # ------------------------------------------------------------------
    # Soft-state ingest: Bloom filters
    # ------------------------------------------------------------------

    def apply_bloom_update(
        self,
        lrc_name: str,
        bitmap: bytes,
        num_bits: int,
        num_hashes: int,
        approx_entries: int = 0,
    ) -> None:
        """Store/replace the in-memory Bloom filter for ``lrc_name``."""
        start = time.perf_counter()
        params = BloomParameters(num_bits=num_bits, num_hashes=num_hashes)
        bloom = BloomFilter.from_bytes(bitmap, params, approx_entries)
        now = self.clock()
        with self._bloom_lock:
            entry = self._bloom.get(lrc_name)
            if entry is None:
                self._bloom[lrc_name] = _BloomEntry(bloom, now)
            else:
                entry.bloom = bloom
                entry.received_at = now
                entry.updates_received += 1
            self.updates_applied += 1
        self._record_apply("bloom", lrc_name, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, lfn: str) -> list[str]:
        """LRC names that (probably) hold mappings for ``lfn``.

        Results from Bloom filters carry the ~1 % false-positive caveat;
        clients recover by querying the returned LRCs (§3.2).  Raises
        :class:`MappingNotFoundError` when no LRC matches.
        """
        results = self._query_relational(lfn)
        bits_hits = self._query_bloom(lfn)
        combined = list(dict.fromkeys(results + bits_hits))
        if not combined:
            raise MappingNotFoundError(f"logical name not indexed: {lfn}")
        return combined

    def _query_relational(self, lfn: str) -> list[str]:
        rows = self.conn.execute(
            "SELECT c.name FROM t_lfn l "
            "JOIN t_map m ON l.id = m.lfn_id "
            "JOIN t_lrc c ON m.pfn_id = c.id "
            "WHERE l.name = ?",
            [lfn],
        ).rows
        return [r[0] for r in rows]

    def _query_bloom(self, lfn: str) -> list[str]:
        with self._bloom_lock:
            entries = list(self._bloom.items())
        return [name for name, entry in entries if lfn in entry.bloom]

    def bulk_query(self, lfns: Sequence[str]) -> dict[str, list[str]]:
        """Query many LFNs; names with no hits are omitted from the result."""
        result: dict[str, list[str]] = {}
        for lfn in lfns:
            try:
                result[lfn] = self.query(lfn)
            except MappingNotFoundError:
                continue
        return result

    def query_wildcard(self, pattern: str) -> list[tuple[str, str]]:
        """(lfn, lrc) pairs matching an RLS wildcard pattern.

        Only possible against the relational store; if this RLI holds any
        Bloom filters the operation fails, because filter contents cannot
        be enumerated (§5.4: wildcard searches "are not possible when using
        Bloom filter compression").
        """
        with self._bloom_lock:
            if self._bloom:
                raise WildcardNotSupportedError(
                    "RLI holds Bloom-filter state; wildcard queries are "
                    "not supported"
                )
        like = wildcard_to_like(pattern) if has_wildcard(pattern) else pattern
        rows = self.conn.execute(
            "SELECT l.name, c.name FROM t_lfn l "
            "JOIN t_map m ON l.id = m.lfn_id "
            "JOIN t_lrc c ON m.pfn_id = c.id "
            "WHERE l.name LIKE ?",
            [like],
        ).rows
        return [(r[0], r[1]) for r in rows]

    # ------------------------------------------------------------------
    # Management / introspection
    # ------------------------------------------------------------------

    def lrc_list(self) -> list[str]:
        """Every LRC currently contributing state (both stores)."""
        relational = [
            r[0] for r in self.conn.execute("SELECT name FROM t_lrc").rows
        ]
        with self._bloom_lock:
            blooms = list(self._bloom)
        return sorted(set(relational) | set(blooms))

    def mapping_count(self) -> int:
        return int(self.conn.execute("SELECT COUNT(*) FROM t_map").scalar())

    def bloom_filter_count(self) -> int:
        with self._bloom_lock:
            return len(self._bloom)

    def bloom_stats(self) -> dict[str, dict[str, float]]:
        with self._bloom_lock:
            return {
                name: {
                    "size_bytes": entry.bloom.size_bytes,
                    "received_at": entry.received_at,
                    "updates_received": entry.updates_received,
                    "fill_ratio": entry.bloom.fill_ratio(),
                }
                for name, entry in self._bloom.items()
            }

    # ------------------------------------------------------------------
    # Soft-state expiry
    # ------------------------------------------------------------------

    def expire_once(self, now: float | None = None) -> int:
        """Discard state older than the timeout; returns entries dropped.

        This is the body of the paper's "expire thread [that] runs
        periodically and examines timestamps in the RLI mapping table".
        """
        current = self.clock() if now is None else now
        cutoff = current - self.timeout
        dropped = 0
        with self._write_lock:
            stale = self.conn.execute(
                "SELECT lfn_id, pfn_id FROM t_map WHERE updatetime < ?",
                [cutoff],
            ).rows
            for lfn_id, lrc_id in stale:
                self.conn.execute(
                    "DELETE FROM t_map WHERE lfn_id = ? AND pfn_id = ?",
                    [lfn_id, lrc_id],
                )
                remaining = self.conn.execute(
                    "SELECT COUNT(*) FROM t_map WHERE lfn_id = ?", [lfn_id]
                ).scalar()
                if remaining == 0:
                    self.conn.execute("DELETE FROM t_lfn WHERE id = ?", [lfn_id])
                dropped += 1
        with self._bloom_lock:
            stale_blooms = [
                name
                for name, entry in self._bloom.items()
                if entry.received_at < cutoff
            ]
            for name in stale_blooms:
                del self._bloom[name]
                dropped += 1
        if dropped:
            self._m_expired.inc(dropped)
        return dropped

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _get_or_insert_lfn(self, lfn: str) -> int:
        rows = self.conn.execute(
            "SELECT id FROM t_lfn WHERE name = ?", [lfn]
        ).rows
        if rows:
            return rows[0][0]
        result = self.conn.execute(
            "INSERT INTO t_lfn (name, ref) VALUES (?, ?)", [lfn, 1]
        )
        assert result.lastrowid is not None
        return result.lastrowid

    def _get_or_insert_lrc(self, lrc_name: str) -> int:
        rows = self.conn.execute(
            "SELECT id FROM t_lrc WHERE name = ?", [lrc_name]
        ).rows
        if rows:
            return rows[0][0]
        result = self.conn.execute(
            "INSERT INTO t_lrc (name, ref) VALUES (?, ?)", [lrc_name, 1]
        )
        assert result.lastrowid is not None
        return result.lastrowid


class ExpireThread:
    """Background thread running :meth:`ReplicaLocationIndex.expire_once`."""

    def __init__(self, rli: ReplicaLocationIndex, interval: float = 60.0) -> None:
        self.rli = rli
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name=f"rli-expire-{self.rli.name}", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.rli.expire_once()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
