"""The common LRC/RLI server (Figure 2).

One :class:`RLSServer` hosts an LRC, an RLI, or both, over a relational
back end reached through the ODBC layer, fronted by the RPC substrate with
GSI-style authentication and per-operation ACL checks.  Every operation in
the paper's Table 1 is exposed as an RPC method.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.cluster.mirror import MirrorIngest, MirrorManager, MirrorSink
from repro.core.config import Backend, ServerConfig
from repro.core.errors import NotConfiguredError, ReadOnlyCatalogError
from repro.core.lrc import LocalReplicaCatalog
from repro.core.rli import ExpireThread, ReplicaLocationIndex
from repro.core.updates import (
    DirectSink,
    UpdateManager,
    UpdateSink,
    UpdateThread,
)
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection, register_dsn, unregister_dsn
from repro.db.postgres_engine import PostgresEngine
from repro.net.rpc import ConnectionContext, RPCServer
from repro.net.transport import LocalTransport, TCPServerTransport
from repro.obs import tracing
from repro.obs.assemble import TraceAssembler, TraceSource, tracer_source
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SamplingProfiler
from repro.obs.slo import SLIRecorder, SLOPolicy
from repro.obs.usage import UsageAccountant
from repro.security.acl import Privilege
from repro.security.authorizer import Authorizer


class RLSServer:
    """A running RLS server instance."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        sink_resolver: Callable[[str], UpdateSink] | None = None,
        metrics: MetricsRegistry | None = None,
        mirror_sink_resolver: Callable[[str], MirrorSink] | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.authorizer = Authorizer(self.config.security)
        self._started = False
        self._lock = threading.Lock()
        # Every component shares this registry, so one snapshot covers the
        # whole server: RPC dispatch, transports, WAL, LRC/RLI, updates.
        self.metrics = metrics if metrics is not None else MetricsRegistry()

        # --- database back end (Figure 2: server -> ODBC -> engine) ---
        if self.config.backend is Backend.MYSQL:
            self.engine: Any = MySQLEngine(
                name=f"{self.config.name}-db",
                flush_on_commit=self.config.flush_on_commit,
                sync_latency=self.config.sync_latency,
                metrics=self.metrics,
            )
        else:
            self.engine = PostgresEngine(
                name=f"{self.config.name}-db",
                fsync=self.config.flush_on_commit,
                sync_latency=self.config.sync_latency,
                metrics=self.metrics,
            )
        self.engine.profiler.configure(
            enabled=self.config.profile_queries,
            slow_threshold=self.config.slow_query_threshold,
            capacity=self.config.query_log_capacity,
        )

        # --- flight recorder + sampling profiler ---
        self.flight: FlightRecorder | None = (
            FlightRecorder(capacity=self.config.flight_capacity)
            if self.config.flight_capacity > 0
            else None
        )
        if self.flight is not None and self.engine.wal is not None:
            # WAL flushes land in the same ring as RPC and update events.
            self.engine.wal.flight = self.flight
        self.profiler = SamplingProfiler(
            hz=self.config.profile_hz,
            metrics=self.metrics,
            inflight=self._rpc_inflight,
        )
        self.dsn = f"{self.config.name}-dsn"
        register_dsn(self.dsn, self.engine)
        self.connection = Connection(self.engine, self.dsn)

        # --- services ---
        self.lrc: LocalReplicaCatalog | None = None
        self.rli: ReplicaLocationIndex | None = None
        self.update_manager: UpdateManager | None = None
        if self.config.is_lrc:
            self.lrc = LocalReplicaCatalog(
                self.connection, name=self.config.name, metrics=self.metrics
            )
            self.lrc.init_schema()
            resolver = sink_resolver or self._default_sink_resolver
            self.update_manager = UpdateManager(
                self.lrc, resolver, policy=self.config.updates,
                metrics=self.metrics, flight=self.flight,
            )
        # --- sharded-cluster roles (mirror master / read-only mirror) ---
        self._mirror_sink_resolver = mirror_sink_resolver
        self.mirror_manager: MirrorManager | None = None
        self.mirror_ingest: MirrorIngest | None = None
        if self.config.mirror_of:
            self.mirror_ingest = MirrorIngest(
                self._need_lrc(),
                master=self.config.mirror_of,
                metrics=self.metrics,
            )
        if self.config.mirrors:
            manager = self._ensure_mirror_manager()
            for mirror_name in self.config.mirrors:
                manager.add_mirror(mirror_name)
        if self.config.is_rli:
            # The RLI tables live in their own engine when the server is
            # also an LRC, since both schemas define t_lfn/t_map.
            if self.config.is_lrc:
                rli_engine = MySQLEngine(
                    name=f"{self.config.name}-rli-db",
                    flush_on_commit=False,
                    sync_latency=self.config.sync_latency,
                )
                rli_conn = Connection(rli_engine, f"{self.config.name}-rli")
            else:
                rli_conn = self.connection
            self.rli = ReplicaLocationIndex(
                rli_conn, name=self.config.name, timeout=self.config.rli_timeout,
                metrics=self.metrics,
            )
            self.rli.init_schema()

        # --- service-level objectives (admin_slo / rls slo) ---
        self.slo = SLIRecorder(
            self.metrics,
            policy=SLOPolicy(
                availability_target=self.config.slo_availability_target,
                latency_target=self.config.slo_latency_target,
                latency_threshold=self.config.slo_latency_threshold,
            ),
            shard=self.config.mirror_of or (
                self.config.name if self.config.cluster is not None else ""
            ),
            endpoint=self.config.name,
        )

        # --- per-principal usage accounting (admin_usage / rls usage) ---
        self.usage: UsageAccountant | None = (
            UsageAccountant(
                metrics=self.metrics,
                top_k=self.config.usage_top_k,
                max_principals=self.config.usage_max_principals,
            )
            if self.config.usage_accounting
            else None
        )

        # --- RPC front end ---
        self.rpc = RPCServer(
            authenticator=self.authorizer.authenticate,
            metrics=self.metrics,
            flight=self.flight,
            name=self.config.name,
            usage=self.usage,
            principal_mapper=self.authorizer.account_principal,
        )
        self._register_methods()
        self.local_transport = LocalTransport(
            self.rpc,
            name=self.config.name,
            service_time=self.config.service_latency,
        )
        self.tcp_transport: TCPServerTransport | None = None
        if self.config.tcp:
            self.tcp_transport = TCPServerTransport(
                self.rpc, self.config.tcp_host, self.config.tcp_port
            )

        # --- daemons ---
        self._expire_thread: ExpireThread | None = None
        self._update_thread: UpdateThread | None = None
        self._mirror_thread: UpdateThread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "RLSServer":
        """Start background daemons (expire thread, update scheduler)."""
        with self._lock:
            if self._started:
                return self
            if self.rli is not None:
                self._expire_thread = ExpireThread(
                    self.rli, interval=self.config.expire_interval
                )
                self._expire_thread.start()
            if self.update_manager is not None:
                self._update_thread = UpdateThread(
                    self.update_manager,
                    poll_interval=self.config.update_poll_interval,
                )
                self._update_thread.start()
            if self.mirror_manager is not None:
                self._mirror_thread = UpdateThread(
                    self.mirror_manager,
                    poll_interval=self.config.update_poll_interval,
                )
                self._mirror_thread.start()
            if self.profiler.enabled:
                self.profiler.start()
            # Prime the SLI recorder so its first real tick (on demand at
            # admin_slo time, or the background thread's) attributes all
            # traffic since start instead of swallowing it as baseline.
            self.slo.tick()
            if self.config.slo_tick_interval > 0:
                self.slo.start(self.config.slo_tick_interval)
            self._started = True
        return self

    def stop(self) -> None:
        with self._lock:
            if self._expire_thread is not None:
                self._expire_thread.stop()
                self._expire_thread = None
            if self._update_thread is not None:
                self._update_thread.stop()
                self._update_thread = None
            if self._mirror_thread is not None:
                self._mirror_thread.stop()
                self._mirror_thread = None
            self.profiler.stop()
            self.slo.stop()
            self.local_transport.close()
            if self.tcp_transport is not None:
                self.tcp_transport.close()
            unregister_dsn(self.dsn)
            self._started = False

    def __enter__(self) -> "RLSServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def tcp_address(self) -> tuple[str, int] | None:
        if self.tcp_transport is None:
            return None
        return (self.tcp_transport.host, self.tcp_transport.port)

    # ------------------------------------------------------------------
    # Method table
    # ------------------------------------------------------------------

    def _ensure_mirror_manager(self) -> MirrorManager:
        """Create the mirror delivery manager lazily (first mirror added).

        When the server is already started, the manager gets its own
        background scheduler immediately; otherwise :meth:`start` will
        launch it.
        """
        if self.mirror_manager is None:
            if self.config.mirror_of:
                raise ReadOnlyCatalogError(
                    f"server {self.config.name!r} is a read-only mirror of "
                    f"{self.config.mirror_of!r}; it cannot have mirrors"
                )
            self.mirror_manager = MirrorManager(
                self._need_lrc(),
                sink_resolver=self._mirror_sink_resolver,
                policy=self.config.updates,
                push_interval=self.config.mirror_push_interval,
                metrics=self.metrics,
                flight=self.flight,
            )
            with self._lock:
                if self._started and self._mirror_thread is None:
                    self._mirror_thread = UpdateThread(
                        self.mirror_manager,
                        poll_interval=self.config.update_poll_interval,
                    )
                    self._mirror_thread.start()
        return self.mirror_manager

    def _default_sink_resolver(self, name: str) -> UpdateSink:
        """Resolve an RLI name to a sink via the in-process registry."""
        if self.rli is not None and name == self.config.name:
            return DirectSink(self.rli)
        from repro.core.membership import resolve_sink

        return resolve_sink(name)

    def _need_lrc(self) -> LocalReplicaCatalog:
        if self.lrc is None:
            raise NotConfiguredError(
                f"server {self.config.name!r} is not configured as an LRC"
            )
        return self.lrc

    def _need_rli(self) -> ReplicaLocationIndex:
        if self.rli is None:
            raise NotConfiguredError(
                f"server {self.config.name!r} is not configured as an RLI"
            )
        return self.rli

    def _register_methods(self) -> None:
        def guarded(privilege: Privilege, fn: Callable[..., Any]):
            privilege_name = privilege.name.lower()

            def handler(ctx: ConnectionContext, args: tuple) -> Any:
                if tracing.active():
                    with tracing.span("acl.check", privilege=privilege_name):
                        self.authorizer.check(privilege, ctx.principal)
                else:
                    self.authorizer.check(privilege, ctx.principal)
                return fn(*args)

            return handler

        lrc_read = Privilege.LRC_READ
        lrc_write = Privilege.LRC_WRITE
        rli_read = Privilege.RLI_READ
        rli_write = Privilege.RLI_WRITE
        admin = Privilege.ADMIN
        r = self.rpc.register

        # -- LRC mapping management --
        r("lrc_create_mapping", guarded(lrc_write, lambda lfn, pfn: self._need_lrc().create_mapping(lfn, pfn)))
        r("lrc_add_mapping", guarded(lrc_write, lambda lfn, pfn: self._need_lrc().add_mapping(lfn, pfn)))
        r("lrc_delete_mapping", guarded(lrc_write, lambda lfn, pfn: self._need_lrc().delete_mapping(lfn, pfn)))
        r("lrc_bulk_create", guarded(lrc_write, lambda pairs: self._need_lrc().bulk_create([tuple(p) for p in pairs])))
        r("lrc_bulk_add", guarded(lrc_write, lambda pairs: self._need_lrc().bulk_add([tuple(p) for p in pairs])))
        r("lrc_bulk_delete", guarded(lrc_write, lambda pairs: self._need_lrc().bulk_delete([tuple(p) for p in pairs])))

        # -- LRC queries --
        r("lrc_get_mappings", guarded(lrc_read, lambda lfn: self._need_lrc().get_mappings(lfn)))
        r("lrc_get_lfns", guarded(lrc_read, lambda pfn: self._need_lrc().get_lfns(pfn)))
        r("lrc_query_wildcard", guarded(lrc_read, lambda pat: [list(t) for t in self._need_lrc().query_wildcard(pat)]))
        r("lrc_bulk_query", guarded(lrc_read, lambda lfns: self._need_lrc().bulk_query(lfns)))
        r("lrc_exists", guarded(lrc_read, lambda lfn: self._need_lrc().exists(lfn)))
        r("lrc_lfn_count", guarded(lrc_read, lambda: self._need_lrc().lfn_count()))
        r("lrc_mapping_count", guarded(lrc_read, lambda: self._need_lrc().mapping_count()))

        # -- LRC attributes --
        r("lrc_attr_define", guarded(lrc_write, lambda name, objtype, attrtype: self._need_lrc().define_attribute(name, objtype, attrtype)))
        r("lrc_attr_undefine", guarded(lrc_write, lambda name, objtype: self._need_lrc().undefine_attribute(name, objtype)))
        r("lrc_attr_add", guarded(lrc_write, lambda obj, name, objtype, value: self._need_lrc().add_attribute(obj, name, objtype, value)))
        r("lrc_attr_modify", guarded(lrc_write, lambda obj, name, objtype, value: self._need_lrc().modify_attribute(obj, name, objtype, value)))
        r("lrc_attr_remove", guarded(lrc_write, lambda obj, name, objtype: self._need_lrc().remove_attribute(obj, name, objtype)))
        r("lrc_attr_get", guarded(lrc_read, lambda obj, objtype: self._need_lrc().get_attributes(obj, objtype)))
        r("lrc_attr_query", guarded(lrc_read, lambda name, objtype, value, op: [list(t) for t in self._need_lrc().query_by_attribute(name, objtype, value, op)]))
        r("lrc_attr_bulk_add", guarded(lrc_write, lambda triples, objtype: self._need_lrc().bulk_add_attribute([tuple(t) for t in triples], objtype)))

        # -- LRC management --
        r("lrc_rli_add", guarded(admin, lambda name, bloom, patterns: self._need_lrc().add_rli(name, bloom, patterns)))
        r("lrc_rli_remove", guarded(admin, lambda name: self._need_lrc().remove_rli(name)))
        r("lrc_rli_list", guarded(lrc_read, lambda: [
            {"name": t.name, "bloom": t.bloom, "patterns": list(t.patterns)}
            for t in self._need_lrc().rli_targets()
        ]))

        # -- RLI queries --
        r("rli_query", guarded(rli_read, lambda lfn: self._need_rli().query(lfn)))
        r("rli_bulk_query", guarded(rli_read, lambda lfns: self._need_rli().bulk_query(lfns)))
        r("rli_query_wildcard", guarded(rli_read, lambda pat: [list(t) for t in self._need_rli().query_wildcard(pat)]))
        r("rli_lrc_list", guarded(rli_read, lambda: self._need_rli().lrc_list()))

        # -- RLI soft-state ingest --
        r("rli_full_update", guarded(rli_write, lambda lrc, lfns: self._need_rli().apply_full_update(lrc, lfns)))
        r("rli_incremental_update", guarded(rli_write, lambda lrc, added, removed: self._need_rli().apply_incremental_update(lrc, added, removed)))
        r("rli_bloom_update", guarded(rli_write, lambda lrc, bitmap, nbits, k, entries: self._need_rli().apply_bloom_update(lrc, bitmap, nbits, k, entries)))

        # -- admin --
        r("admin_ping", lambda ctx, args: "pong")
        r("admin_stats", guarded(admin, self._stats))
        r("admin_metrics", guarded(admin, lambda: self.metrics.snapshot().to_dict()))
        r("admin_metrics_text", guarded(admin, lambda: self.metrics.render_text()))
        r("admin_traces", guarded(admin, self._traces))
        r("admin_trace", guarded(admin, self._trace))
        r("admin_trace_fragments", guarded(admin, self._trace_fragments))
        r("admin_slo", guarded(admin, self._slo))
        r("admin_usage", guarded(admin, self._usage))
        r("admin_slow_queries", guarded(admin, self._slow_queries))
        r("admin_profile", guarded(admin, self._profile))
        r("admin_threads", guarded(admin, self._threads))
        r("admin_flight", guarded(admin, self._flight))
        r("admin_trigger_full_update", guarded(admin, self._trigger_full_update))
        r("admin_trigger_incremental_update", guarded(admin, self._trigger_incremental))
        r("admin_expire_once", guarded(admin, lambda: self._need_rli().expire_once()))
        r("admin_rebuild_bloom", guarded(admin, self._rebuild_bloom))
        r("admin_verify", guarded(admin, lambda: self._need_lrc().verify_integrity()))

        # -- sharded cluster: mirror feed + topology --
        r("mirror_full_sync", guarded(lrc_write, lambda master, pairs: self._need_ingest().apply_full(master, [tuple(p) for p in pairs])))
        r("mirror_incremental", guarded(lrc_write, lambda master, added, removed: list(self._need_ingest().apply_incremental(master, [tuple(p) for p in added], [tuple(p) for p in removed]))))
        r("lrc_mirror_add", guarded(admin, lambda name: self._ensure_mirror_manager().add_mirror(name)))
        r("lrc_mirror_remove", guarded(admin, self._mirror_remove))
        r("lrc_mirror_list", guarded(lrc_read, self._mirror_list))
        r("admin_mirror_sync", guarded(admin, self._mirror_sync))
        r("admin_shard_map", guarded(lrc_read, self._shard_map))

        # A read-only mirror accepts the ingest stream above but rejects
        # every client-facing catalog write with a typed error the
        # combined client (and users) can route on.  Re-registration
        # replaces the handlers installed earlier in this method.
        if self.config.mirror_of:
            master = self.config.mirror_of

            def read_only(method: str):
                def handler(ctx: ConnectionContext, args: tuple) -> Any:
                    raise ReadOnlyCatalogError(
                        f"{method}: server {self.config.name!r} is a "
                        f"read-only mirror of {master!r}; send writes to "
                        "the shard master"
                    )

                return handler

            for method in (
                "lrc_create_mapping",
                "lrc_add_mapping",
                "lrc_delete_mapping",
                "lrc_bulk_create",
                "lrc_bulk_add",
                "lrc_bulk_delete",
                "lrc_attr_define",
                "lrc_attr_undefine",
                "lrc_attr_add",
                "lrc_attr_modify",
                "lrc_attr_remove",
                "lrc_attr_bulk_add",
            ):
                r(method, read_only(method))

    def _need_ingest(self) -> MirrorIngest:
        if self.mirror_ingest is None:
            raise NotConfiguredError(
                f"server {self.config.name!r} is not a mirror "
                "(no --mirror-of configured)"
            )
        return self.mirror_ingest

    def _mirror_remove(self, name: str) -> None:
        if self.mirror_manager is not None:
            self.mirror_manager.remove_mirror(name)

    def _mirror_list(self) -> dict[str, Any]:
        if self.mirror_manager is None:
            return {}
        return self.mirror_manager.target_health()

    def _mirror_sync(self) -> int:
        """Force an immediate full sync to every registered mirror."""
        if self.mirror_manager is None:
            raise NotConfiguredError(
                f"server {self.config.name!r} has no mirrors registered"
            )
        return self.mirror_manager.send_full_sync()

    def _shard_map(self) -> dict[str, Any]:
        """Topology answer any cluster member can serve (client bootstrap)."""
        return {
            "self": self.config.name,
            "mirror_of": self.config.mirror_of,
            "shard_map": (
                self.config.cluster.to_dict()
                if self.config.cluster is not None
                else None
            ),
        }

    def _trigger_full_update(self) -> float:
        if self.update_manager is None:
            raise NotConfiguredError("server has no update manager (not an LRC)")
        return self.update_manager.send_full_update()

    def _trigger_incremental(self) -> int:
        if self.update_manager is None:
            raise NotConfiguredError("server has no update manager (not an LRC)")
        return self.update_manager.send_incremental_update()

    def _rebuild_bloom(self) -> float:
        if self.update_manager is None:
            raise NotConfiguredError("server has no update manager (not an LRC)")
        return self.update_manager.rebuild_bloom()

    def _traces(self, limit: int = 100) -> dict[str, Any]:
        """Tail-retained spans from the process-wide tracer's sink.

        Tracing is an opt-in process-wide facility (``rls serve --trace``
        or :func:`repro.obs.tracing.install_tracer`); with none installed
        this reports ``enabled: False`` rather than failing, so ``rls
        trace`` degrades gracefully against an untraced server.
        """
        sink = tracing.current_sink()
        if sink is None:
            return {"enabled": False, "stats": {}, "spans": []}
        payload = sink.to_dict(limit=limit)
        payload["enabled"] = True
        return payload

    def _slo(self) -> dict[str, Any]:
        """Current SLO state: per-class SLIs, burn rates, budget, alerts.

        With ``slo_tick_interval=0`` (the default) there is no recorder
        thread; this handler ticks on demand, so the answer always covers
        traffic up to now at the cost of one registry snapshot.
        """
        self.slo.tick()
        return self.slo.to_dict()

    def _usage(self) -> dict[str, Any]:
        """Per-principal usage table, heavy-hitter sketches included.

        Accounting is a per-server knob (``ServerConfig.usage_accounting``,
        on by default); when disabled this reports ``enabled: False`` so
        ``rls usage`` degrades gracefully.
        """
        if self.usage is None:
            return {
                "enabled": False,
                "principals": {},
                "top_principals": [],
                "top_prefixes": [],
            }
        return self.usage.to_dict()

    def _trace_fragments(self, trace_id: str) -> dict[str, Any]:
        """This node's raw span fragments for one trace.

        Accepts a span id too (``rls slowlog`` prints both), resolving it
        to its trace.  Gracefully reports ``enabled: False`` when no
        process-wide tracer is installed, like ``admin_traces``.
        """
        tracer = tracing.current_tracer()
        if tracer is None:
            return {
                "enabled": False,
                "node": self.config.name,
                "trace_id": trace_id,
                "spans": [],
            }
        resolved = tracer.resolve_trace(trace_id) or trace_id
        return {
            "enabled": True,
            "node": self.config.name,
            "trace_id": resolved,
            "spans": [s.to_dict() for s in tracer.fragments(resolved)],
        }

    def _trace(self, trace_id: str) -> dict[str, Any]:
        """Cluster-stitched view of one trace (tree + critical path).

        A cluster member fans ``admin_trace_fragments`` out to every
        endpoint in its shard map; unreachable nodes are tolerated and
        reported under ``missing``.  Outside a cluster the local
        fragments are assembled alone.
        """
        tracer = tracing.current_tracer()
        if tracer is None:
            return {
                "enabled": False,
                "trace_id": trace_id,
                "spans": [],
                "tree": [],
                "critical_path": [],
                "nodes": {},
                "missing": {},
            }
        resolved = tracer.resolve_trace(trace_id) or trace_id
        sources = [tracer_source(self.config.name, tracer)]
        if self.config.cluster is not None:
            from repro.core.client import connect

            def remote_fetch(name: str):
                def fetch(tid: str) -> list[dict[str, Any]]:
                    with connect(name) as peer:
                        return peer.trace_fragments(tid).get("spans", [])

                return fetch

            smap = self.config.cluster
            endpoints = [
                n
                for shard in smap.shards
                for n in (shard, *smap.mirrors_of(shard))
                if n != self.config.name
            ]
            sources.extend(
                TraceSource(name=n, fetch=remote_fetch(n)) for n in endpoints
            )
        payload = TraceAssembler(sources).assemble(resolved).to_dict()
        payload["enabled"] = True
        return payload

    def _slow_queries(self, limit: int = 50) -> dict[str, Any]:
        """Tail-retained slow/error statements from the engine's query log.

        Profiling is a per-server knob (``ServerConfig.profile_queries``,
        on by default); when disabled this reports ``enabled: False``
        with whatever the log last retained, so ``rls slowlog`` degrades
        gracefully instead of failing.
        """
        profiler = self.engine.profiler
        payload = profiler.log.to_dict(limit=limit)
        payload["enabled"] = profiler.enabled
        return payload

    def _rpc_inflight(self) -> float:
        """Current in-flight RPC count (the stuck-thread detector gate)."""
        return float(self.rpc.inflight)

    def _profile(self) -> dict[str, Any]:
        """Cumulative sampling-profiler state (folded stacks + meters).

        The sampler is a per-server knob (``ServerConfig.profile_hz``, off
        by default); when disabled the payload reports ``enabled: False``
        with zero samples, so ``rls profile`` degrades gracefully.
        """
        return self.profiler.to_dict()

    def _threads(self) -> dict[str, Any]:
        """Point-in-time dump of registered threads plus stuck detections.

        Works even with the sampler disabled — the dump walks live frames
        on demand; only ``consecutive_top`` bookkeeping needs samples.
        """
        return {
            "enabled": True,
            "threads": self.profiler.thread_dump(),
            "detections": [d.to_dict() for d in self.profiler.detections()],
        }

    def _flight(self, limit: int = 100) -> dict[str, Any]:
        """Flight-recorder snapshot: stats, event tail, last error dump.

        Recording is a per-server knob (``ServerConfig.flight_capacity``,
        on by default); ``flight_capacity=0`` reports ``enabled: False``
        so ``rls flight`` degrades gracefully.
        """
        if self.flight is None:
            return {
                "enabled": False, "stats": {}, "events": [], "last_dump": None,
            }
        payload = self.flight.to_dict(limit=limit)
        payload["enabled"] = True
        return payload

    def _stats(self) -> dict[str, Any]:
        stats: dict[str, Any] = {
            "name": self.config.name,
            "roles": {
                "lrc": self.config.is_lrc,
                "rli": self.config.is_rli,
            },
            "backend": self.config.backend.value,
            "requests_served": self.rpc.requests_served,
            "errors_returned": self.rpc.errors_returned,
        }
        if self.lrc is not None:
            stats["lrc"] = {
                "lfns": self.lrc.lfn_count(),
                "mappings": self.lrc.mapping_count(),
            }
        if self.rli is not None:
            stats["rli"] = {
                "mappings": self.rli.mapping_count(),
                "bloom_filters": self.rli.bloom_filter_count(),
                "updates_applied": self.rli.updates_applied,
                "staleness_age": self.rli.staleness_age(),
                "staleness_ages": self.rli.staleness_ages(),
            }
        if self.update_manager is not None:
            s = self.update_manager.stats
            stats["updates"] = {
                "full": s.full_updates,
                "incremental": s.incremental_updates,
                "bloom": s.bloom_updates,
                "names_sent": s.names_sent,
                "bloom_bytes_sent": s.bytes_sent_bloom,
                "errors": s.errors,
                "retries": s.retries,
                "targets": self.update_manager.target_health(),
            }
        if self.mirror_ingest is not None:
            stats["mirror"] = self.mirror_ingest.to_dict()
        if self.mirror_manager is not None:
            s = self.mirror_manager.stats
            stats["mirrors"] = {
                "full_syncs": s.full_syncs,
                "incremental_pushes": s.incremental_pushes,
                "pairs_sent": s.pairs_sent,
                "errors": s.errors,
                "retries": s.retries,
                "targets": self.mirror_manager.target_health(),
            }
        stats["metrics"] = self.metrics.snapshot().to_dict()
        return stats
