"""Deployment topology builders from the Giggle framework.

The RLS framework paper ("Giggle", SC 2002 — reference [1] of the paper
reproduced here) defines a family of index structures: "A variety of
index structures can be constructed with different performance and
reliability characteristics by varying the number of RLIs and the amount
of redundancy and partitioning among them" (§2).  This module provides
constructors for the canonical configurations, returning a
:class:`Deployment` handle that owns the servers and knows how to wire
update patterns:

* :func:`single_rli` — N LRCs, one RLI (the paper's measurement setup);
* :func:`redundant` — every LRC updates every one of R RLIs, so the index
  survives R-1 RLI failures;
* :func:`partitioned_by_namespace` — each RLI indexes a regex-defined
  slice of the logical namespace (§3.5);
* :func:`fully_connected` — ESG-style: every server is both LRC and RLI
  and updates all of them (§6);
* :func:`hierarchical` — leaf RLIs forward to a root RLI (§7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.client import RLSClient, connect
from repro.core.config import ServerConfig, ServerRole
from repro.core.hierarchy import HierarchicalUpdater, HierarchyThread
from repro.core.membership import resolve_sink
from repro.core.server import RLSServer


@dataclass
class Deployment:
    """A set of running RLS servers wired into one topology."""

    name: str
    lrcs: list[RLSServer] = field(default_factory=list)
    rlis: list[RLSServer] = field(default_factory=list)
    hierarchy_threads: list[HierarchyThread] = field(default_factory=list)

    @property
    def servers(self) -> list[RLSServer]:
        seen: dict[int, RLSServer] = {}
        for server in [*self.lrcs, *self.rlis]:
            seen[id(server)] = server
        return list(seen.values())

    def lrc_client(self, index: int = 0) -> RLSClient:
        return connect(self.lrcs[index].config.name)

    def rli_client(self, index: int = 0) -> RLSClient:
        return connect(self.rlis[index].config.name)

    def push_all(self) -> None:
        """Force a full soft-state update from every LRC (and forwarders)."""
        for server in self.lrcs:
            assert server.update_manager is not None
            if server.lrc is not None and server.lrc.rli_targets():
                server.update_manager.send_full_update()
        for thread in self.hierarchy_threads:
            thread.updater.forward_once()

    def start(self) -> "Deployment":
        for server in self.servers:
            server.start()
        for thread in self.hierarchy_threads:
            thread.start()
        return self

    def stop(self) -> None:
        for thread in self.hierarchy_threads:
            thread.stop()
        for server in self.servers:
            server.stop()

    def __enter__(self) -> "Deployment":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


def _make(name: str, role: ServerRole, **kwargs) -> RLSServer:
    return RLSServer(ServerConfig(name=name, role=role, sync_latency=0.0, **kwargs))


def single_rli(
    name: str,
    num_lrcs: int,
    bloom: bool = False,
) -> Deployment:
    """N LRCs all updating one RLI — the paper's measurement topology."""
    deployment = Deployment(name)
    rli = _make(f"{name}-rli", ServerRole.RLI)
    deployment.rlis.append(rli)
    for i in range(num_lrcs):
        lrc = _make(f"{name}-lrc{i}", ServerRole.LRC)
        assert lrc.lrc is not None
        lrc.lrc.add_rli(rli.config.name, bloom=bloom)
        deployment.lrcs.append(lrc)
    return deployment


def redundant(
    name: str,
    num_lrcs: int,
    num_rlis: int,
    bloom: bool = True,
) -> Deployment:
    """Every LRC updates every RLI: the index survives RLI failures.

    Giggle's redundancy axis — queries can go to any RLI, and losing
    ``num_rlis - 1`` of them loses no information (state is soft anyway
    and will be rebuilt, but redundancy removes the rebuild window).
    """
    deployment = Deployment(name)
    for j in range(num_rlis):
        deployment.rlis.append(_make(f"{name}-rli{j}", ServerRole.RLI))
    for i in range(num_lrcs):
        lrc = _make(f"{name}-lrc{i}", ServerRole.LRC)
        assert lrc.lrc is not None
        for rli in deployment.rlis:
            lrc.lrc.add_rli(rli.config.name, bloom=bloom)
        deployment.lrcs.append(lrc)
    return deployment


def partitioned_by_namespace(
    name: str,
    num_lrcs: int,
    partitions: Sequence[tuple[str, str]],
) -> Deployment:
    """One RLI per namespace partition (§3.5).

    ``partitions`` is a list of ``(rli_suffix, regex)`` pairs; each LRC
    sends each RLI only the logical names matching its regex.
    """
    deployment = Deployment(name)
    patterns: list[tuple[str, str]] = []
    for suffix, regex in partitions:
        rli = _make(f"{name}-rli-{suffix}", ServerRole.RLI)
        deployment.rlis.append(rli)
        patterns.append((rli.config.name, regex))
    for i in range(num_lrcs):
        lrc = _make(f"{name}-lrc{i}", ServerRole.LRC)
        assert lrc.lrc is not None
        for rli_name, regex in patterns:
            lrc.lrc.add_rli(rli_name, bloom=False, patterns=[regex])
        deployment.lrcs.append(lrc)
    return deployment


def fully_connected(name: str, num_nodes: int, bloom: bool = False) -> Deployment:
    """ESG-style mesh: every node is LRC+RLI and updates all nodes (§6)."""
    deployment = Deployment(name)
    nodes = [_make(f"{name}-node{i}", ServerRole.BOTH) for i in range(num_nodes)]
    for node in nodes:
        assert node.lrc is not None
        for target in nodes:
            node.lrc.add_rli(target.config.name, bloom=bloom)
    deployment.lrcs.extend(nodes)
    deployment.rlis.extend(nodes)
    return deployment


def hierarchical(
    name: str,
    num_lrcs_per_leaf: int,
    num_leaves: int,
    bloom: bool = True,
    forward_interval: float = 30.0,
) -> Deployment:
    """Two-level RLI tree (§7): LRCs -> leaf RLIs -> one root RLI.

    A query against the root answers for the whole grid; leaf RLIs answer
    for their region with less staleness.
    """
    deployment = Deployment(name)
    root = _make(f"{name}-root", ServerRole.RLI)
    deployment.rlis.append(root)
    for leaf_no in range(num_leaves):
        leaf = _make(f"{name}-leaf{leaf_no}", ServerRole.RLI)
        deployment.rlis.append(leaf)
        assert leaf.rli is not None
        updater = HierarchicalUpdater(
            leaf.rli, resolve_sink, parents=[root.config.name]
        )
        deployment.hierarchy_threads.append(
            HierarchyThread(updater, interval=forward_interval)
        )
        for i in range(num_lrcs_per_leaf):
            lrc = _make(f"{name}-leaf{leaf_no}-lrc{i}", ServerRole.LRC)
            assert lrc.lrc is not None
            lrc.lrc.add_rli(leaf.config.name, bloom=bloom)
            deployment.lrcs.append(lrc)
    return deployment
