"""Soft-state update manager: the LRC side of LRC→RLI propagation.

Implements the four update flavours of §3.2–§3.5:

* **Full uncompressed** — the complete logical-name list is pushed to each
  registered RLI (what Figure 12 measures);
* **Immediate / incremental mode** (§3.3) — recent adds/removes are pushed
  after a short interval (default 30 s) or once enough changes accumulate,
  with infrequent full updates refreshing soft state;
* **Bloom-filter compression** (§3.4) — a counting Bloom filter is kept in
  sync with the catalog, and its packed bitmap snapshot is pushed instead
  of the name list (Table 3, Figure 13);
* **Partitioning** (§3.5) — per-RLI regexes select the namespace subset an
  RLI receives.

The manager is transport-agnostic: it resolves RLI names to
:class:`UpdateSink` objects, which may write straight into an in-process
:class:`~repro.core.rli.ReplicaLocationIndex`, call through the RPC layer,
or record traffic for tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from repro.core.bloom import BloomParameters, CountingBloomFilter
from repro.core.errors import UpdateTargetError
from repro.core.lrc import LocalReplicaCatalog, RLITarget
from repro.core.partition import PartitionRouter
from repro.core.rli import ReplicaLocationIndex
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY


class UpdateSink(Protocol):
    """Receiving side of soft-state updates (an RLI, however reached)."""

    def full_update(self, lrc_name: str, lfns: Sequence[str]) -> None: ...

    def incremental_update(
        self, lrc_name: str, added: Sequence[str], removed: Sequence[str]
    ) -> None: ...

    def bloom_update(
        self,
        lrc_name: str,
        bitmap: bytes,
        num_bits: int,
        num_hashes: int,
        approx_entries: int,
    ) -> None: ...


class DirectSink:
    """Sink writing straight into an in-process RLI (no RPC)."""

    def __init__(self, rli: ReplicaLocationIndex) -> None:
        self.rli = rli

    def full_update(self, lrc_name: str, lfns: Sequence[str]) -> None:
        self.rli.apply_full_update(lrc_name, lfns)

    def incremental_update(
        self, lrc_name: str, added: Sequence[str], removed: Sequence[str]
    ) -> None:
        self.rli.apply_incremental_update(lrc_name, added, removed)

    def bloom_update(
        self,
        lrc_name: str,
        bitmap: bytes,
        num_bits: int,
        num_hashes: int,
        approx_entries: int,
    ) -> None:
        self.rli.apply_bloom_update(
            lrc_name, bitmap, num_bits, num_hashes, approx_entries
        )


class RPCSink:
    """Sink calling an RLI server through an :class:`~repro.net.rpc.RPCClient`."""

    def __init__(self, client) -> None:  # repro.net.rpc.RPCClient
        self.client = client

    def full_update(self, lrc_name: str, lfns: Sequence[str]) -> None:
        self.client.call("rli_full_update", lrc_name, list(lfns))

    def incremental_update(
        self, lrc_name: str, added: Sequence[str], removed: Sequence[str]
    ) -> None:
        self.client.call(
            "rli_incremental_update", lrc_name, list(added), list(removed)
        )

    def bloom_update(
        self,
        lrc_name: str,
        bitmap: bytes,
        num_bits: int,
        num_hashes: int,
        approx_entries: int,
    ) -> None:
        self.client.call(
            "rli_bloom_update",
            lrc_name,
            bitmap,
            num_bits,
            num_hashes,
            approx_entries,
        )


@dataclass
class UpdatePolicy:
    """Timing and compression knobs for soft-state updates.

    Defaults follow the paper: immediate-mode flushes after 30 seconds or
    ``immediate_count_threshold`` buffered changes, and Bloom filters use
    ~10 bits per mapping with 3 hash functions.
    """

    immediate_mode: bool = True
    immediate_interval: float = 30.0
    immediate_count_threshold: int = 100
    full_interval: float = 600.0
    bloom_bits_per_entry: int = 10
    bloom_num_hashes: int = 3
    #: Floor for the counting Bloom filter's expected-entry sizing.  The
    #: filter is sized "based on the number of mappings in an LRC" (§3.4)
    #: with this minimum, and is rebuilt larger automatically when the
    #: catalog outgrows it (see UpdateManager._send_bloom).
    bloom_expected_entries: int = 1024
    #: Headroom multiplier when sizing from the current catalog, so modest
    #: growth does not force an immediate rebuild.
    bloom_sizing_headroom: float = 1.25
    #: Push to multiple RLI targets concurrently (one thread per target).
    #: Off by default: sequential pushes match the measured v2.0.9 server;
    #: parallel fan-out helps fully-connected meshes (§6, ESG).
    parallel_updates: bool = False


@dataclass
class UpdateStats:
    """Counters for observability and the benchmarks."""

    full_updates: int = 0
    incremental_updates: int = 0
    bloom_updates: int = 0
    names_sent: int = 0
    bytes_sent_bloom: int = 0
    last_full_duration: float = 0.0
    last_bloom_duration: float = 0.0
    bloom_generation_time: float = 0.0


class UpdateManager:
    """Tracks catalog changes and pushes soft-state updates to RLIs."""

    def __init__(
        self,
        lrc: LocalReplicaCatalog,
        sink_resolver: Callable[[str], UpdateSink],
        policy: UpdatePolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.lrc = lrc
        self.sink_resolver = sink_resolver
        self.policy = policy or UpdatePolicy()
        self.clock = clock
        self.stats = UpdateStats()
        self._lock = threading.RLock()
        self._pending_added: set[str] = set()
        self._pending_removed: set[str] = set()
        self._last_immediate_flush = clock()
        self._last_full_update = clock()
        self._bloom: CountingBloomFilter | None = None
        registry = metrics if metrics is not None else NULL_REGISTRY
        self.metrics = registry
        self._m_full_duration = registry.histogram(
            "updates.duration", kind="full"
        )
        self._m_bloom_send = registry.histogram(
            "updates.duration", kind="bloom"
        )
        self._m_bloom_generation = registry.histogram(
            "updates.bloom_generation"
        )
        self._m_names_sent = registry.counter("updates.names_sent")
        self._m_bloom_bytes = registry.counter("updates.bloom_bytes_sent")
        self._m_sent = {
            kind: registry.counter("updates.sent", kind=kind)
            for kind in ("full", "incremental", "bloom")
        }
        registry.register_gauge_fn(
            "updates.pending_changes", lambda: sum(self.pending_changes())
        )
        lrc.add_lfn_listener(self._on_lfn_change)

    # ------------------------------------------------------------------
    # Catalog change tracking
    # ------------------------------------------------------------------

    def _on_lfn_change(self, lfn: str, present: bool) -> None:
        with self._lock:
            if present:
                self._pending_removed.discard(lfn)
                self._pending_added.add(lfn)
                if self._bloom is not None:
                    self._bloom.add(lfn)
            else:
                self._pending_added.discard(lfn)
                self._pending_removed.add(lfn)
                if self._bloom is not None:
                    self._bloom.remove(lfn)

    def pending_changes(self) -> tuple[int, int]:
        with self._lock:
            return len(self._pending_added), len(self._pending_removed)

    # ------------------------------------------------------------------
    # Bloom filter maintenance
    # ------------------------------------------------------------------

    def rebuild_bloom(self) -> float:
        """(Re)build the counting filter from the catalog.

        This is the paper's one-time Bloom generation cost (Table 3,
        column 3); returns the wall-clock seconds it took.  Subsequent
        catalog changes maintain the filter incrementally.
        """
        start = time.perf_counter()
        names = self.lrc.all_lfns()
        expected = max(
            int(len(names) * self.policy.bloom_sizing_headroom),
            self.policy.bloom_expected_entries,
        )
        params = BloomParameters.for_entries(
            expected,
            bits_per_entry=self.policy.bloom_bits_per_entry,
            num_hashes=self.policy.bloom_num_hashes,
        )
        fresh = CountingBloomFilter(params)
        fresh.add_batch(names)
        with self._lock:
            self._bloom = fresh
        elapsed = time.perf_counter() - start
        self.stats.bloom_generation_time = elapsed
        self._m_bloom_generation.observe(elapsed)
        return elapsed

    @property
    def bloom(self) -> CountingBloomFilter | None:
        return self._bloom

    def _bloom_overflowed(self, bloom: CountingBloomFilter) -> bool:
        """True when entries exceed the filter's design capacity."""
        capacity = bloom.params.num_bits // self.policy.bloom_bits_per_entry
        return bloom.entries > capacity

    # ------------------------------------------------------------------
    # Pushing updates
    # ------------------------------------------------------------------

    def send_full_update(self, target: RLITarget | None = None) -> float:
        """Push a full update to one target (or all); returns duration (s).

        Bloom-flagged targets get the packed filter snapshot; others get
        the (possibly partition-filtered) complete LFN list.
        """
        targets = [target] if target is not None else self.lrc.rli_targets()
        if not targets:
            raise UpdateTargetError("no RLI targets registered")
        start = time.perf_counter()
        router = PartitionRouter(targets)
        all_names: list[str] | None = None
        if any(not tgt.bloom for tgt in targets):
            all_names = self.lrc.all_lfns()

        def push_one(tgt: RLITarget) -> None:
            sink = self.sink_resolver(tgt.name)
            if tgt.bloom:
                self._send_bloom(sink, tgt, router)
            else:
                assert all_names is not None
                names = router.filter_names(tgt, all_names)
                sink.full_update(self.lrc.name, names)
                with self._lock:
                    self.stats.full_updates += 1
                    self.stats.names_sent += len(names)
                self._m_sent["full"].inc()
                self._m_names_sent.inc(len(names))

        if self.policy.parallel_updates and len(targets) > 1:
            self._push_parallel(targets, push_one)
        else:
            for tgt in targets:
                push_one(tgt)
        with self._lock:
            # A full update subsumes any pending incremental changes.
            self._pending_added.clear()
            self._pending_removed.clear()
            self._last_full_update = self.clock()
            self._last_immediate_flush = self.clock()
        elapsed = time.perf_counter() - start
        self.stats.last_full_duration = elapsed
        self._m_full_duration.observe(elapsed)
        return elapsed

    def _send_bloom(
        self, sink: UpdateSink, target: RLITarget, router: PartitionRouter
    ) -> None:
        start = time.perf_counter()
        with self._lock:
            bloom = self._bloom
        if bloom is None or self._bloom_overflowed(bloom):
            # First send, or the catalog outgrew the filter's sizing: the
            # paper sizes filters by LRC mapping count, so rebuild larger.
            self.rebuild_bloom()
            bloom = self._bloom
            assert bloom is not None
        if target.patterns:
            # Partitioned Bloom update: build a one-shot filter over the
            # matching namespace subset.
            from repro.core.bloom import BloomFilter

            names = router.filter_names(target, self.lrc.all_lfns())
            params = BloomParameters.for_entries(
                max(len(names), 1024),
                bits_per_entry=self.policy.bloom_bits_per_entry,
                num_hashes=self.policy.bloom_num_hashes,
            )
            snapshot = BloomFilter.from_names(names, params)
        else:
            snapshot = bloom.snapshot()
        payload = snapshot.to_bytes()
        sink.bloom_update(
            self.lrc.name,
            payload,
            snapshot.params.num_bits,
            snapshot.params.num_hashes,
            snapshot.approx_entries,
        )
        self.stats.bloom_updates += 1
        self.stats.bytes_sent_bloom += len(payload)
        elapsed = time.perf_counter() - start
        self.stats.last_bloom_duration = elapsed
        self._m_sent["bloom"].inc()
        self._m_bloom_bytes.inc(len(payload))
        self._m_bloom_send.observe(elapsed)

    def _push_parallel(self, targets, push_one) -> None:
        """Fan a push out to every target concurrently; re-raise the first
        failure after all threads finish (no target is silently skipped)."""
        errors: list[BaseException] = []
        error_lock = threading.Lock()

        def runner(tgt: RLITarget) -> None:
            try:
                push_one(tgt)
            except BaseException as exc:  # noqa: BLE001 - recorded, re-raised
                with error_lock:
                    errors.append(exc)

        threads = [
            threading.Thread(
                target=runner, args=(tgt,), name=f"update-{tgt.name}"
            )
            for tgt in targets
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    def send_incremental_update(self) -> int:
        """Flush pending adds/removes to all non-Bloom targets (§3.3).

        Bloom targets receive a fresh filter snapshot instead, since their
        RLI state is replaced wholesale.  Returns changes flushed.
        """
        with self._lock:
            added = sorted(self._pending_added)
            removed = sorted(self._pending_removed)
            self._pending_added.clear()
            self._pending_removed.clear()
            self._last_immediate_flush = self.clock()
        if not added and not removed:
            return 0
        targets = self.lrc.rli_targets()
        router = PartitionRouter(targets)
        for tgt in targets:
            sink = self.sink_resolver(tgt.name)
            if tgt.bloom:
                self._send_bloom(sink, tgt, router)
            else:
                sink.incremental_update(
                    self.lrc.name,
                    router.filter_names(tgt, added),
                    router.filter_names(tgt, removed),
                )
                self.stats.incremental_updates += 1
                self.stats.names_sent += len(added) + len(removed)
                self._m_sent["incremental"].inc()
                self._m_names_sent.inc(len(added) + len(removed))
        return len(added) + len(removed)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def due_actions(self) -> list[str]:
        """Which pushes are due now (``"full"`` and/or ``"incremental"``)."""
        now = self.clock()
        due = []
        if now - self._last_full_update >= self.policy.full_interval:
            due.append("full")
        elif self.policy.immediate_mode:
            pending = len(self._pending_added) + len(self._pending_removed)
            if pending > 0 and (
                now - self._last_immediate_flush >= self.policy.immediate_interval
                or pending >= self.policy.immediate_count_threshold
            ):
                due.append("incremental")
        return due

    def tick(self) -> list[str]:
        """Run any due pushes; returns what was performed."""
        performed = []
        for action in self.due_actions():
            if action == "full":
                self.send_full_update()
            else:
                self.send_incremental_update()
            performed.append(action)
        return performed


class UpdateThread:
    """Background scheduler calling :meth:`UpdateManager.tick`."""

    def __init__(self, manager: UpdateManager, poll_interval: float = 1.0) -> None:
        self.manager = manager
        self.poll_interval = poll_interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop,
            name=f"lrc-updates-{self.manager.lrc.name}",
            daemon=True,
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.manager.tick()
            except Exception:  # pragma: no cover - keep the daemon alive
                pass

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
