"""Soft-state update manager: the LRC side of LRC→RLI propagation.

Implements the four update flavours of §3.2–§3.5:

* **Full uncompressed** — the complete logical-name list is pushed to each
  registered RLI (what Figure 12 measures);
* **Immediate / incremental mode** (§3.3) — recent adds/removes are pushed
  after a short interval (default 30 s) or once enough changes accumulate,
  with infrequent full updates refreshing soft state;
* **Bloom-filter compression** (§3.4) — a counting Bloom filter is kept in
  sync with the catalog, and its packed bitmap snapshot is pushed instead
  of the name list (Table 3, Figure 13);
* **Partitioning** (§3.5) — per-RLI regexes select the namespace subset an
  RLI receives.

The manager is transport-agnostic: it resolves RLI names to
:class:`UpdateSink` objects, which may write straight into an in-process
:class:`~repro.core.rli.ReplicaLocationIndex`, call through the RPC layer,
or record traffic for tests.

**Delivery is reliable per target.**  Every RLI has a
:class:`TargetDeliveryState`: an incremental push that fails re-queues its
changes for *that* target (newer changes always win over re-queued ones),
a failed full/Bloom push marks the target unhealthy and due for a fresh
full push, and :meth:`UpdateManager.tick` redelivers with the backoff of
the policy's :class:`~repro.net.retry.RetryPolicy`.  Nothing is lost to a
transient failure; the soft-state full refresh remains the backstop, not
the only healer.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol, Sequence

from repro.core.bloom import BloomParameters, CountingBloomFilter
from repro.core.errors import UpdateTargetError
from repro.core.lrc import LocalReplicaCatalog, RLITarget
from repro.core.partition import PartitionRouter
from repro.core.rli import ReplicaLocationIndex
from repro.net.retry import RetryPolicy
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY


class UpdateSink(Protocol):
    """Receiving side of soft-state updates (an RLI, however reached)."""

    def full_update(self, lrc_name: str, lfns: Sequence[str]) -> None: ...

    def incremental_update(
        self, lrc_name: str, added: Sequence[str], removed: Sequence[str]
    ) -> None: ...

    def bloom_update(
        self,
        lrc_name: str,
        bitmap: bytes,
        num_bits: int,
        num_hashes: int,
        approx_entries: int,
    ) -> None: ...


class DirectSink:
    """Sink writing straight into an in-process RLI (no RPC)."""

    def __init__(self, rli: ReplicaLocationIndex) -> None:
        self.rli = rli

    def full_update(self, lrc_name: str, lfns: Sequence[str]) -> None:
        self.rli.apply_full_update(lrc_name, lfns)

    def incremental_update(
        self, lrc_name: str, added: Sequence[str], removed: Sequence[str]
    ) -> None:
        self.rli.apply_incremental_update(lrc_name, added, removed)

    def bloom_update(
        self,
        lrc_name: str,
        bitmap: bytes,
        num_bits: int,
        num_hashes: int,
        approx_entries: int,
    ) -> None:
        self.rli.apply_bloom_update(
            lrc_name, bitmap, num_bits, num_hashes, approx_entries
        )


class RPCSink:
    """Sink calling an RLI server through an :class:`~repro.net.rpc.RPCClient`.

    Large incremental updates are split into ``chunk_size`` slices and
    pipelined (``call_async`` + ``drain``) when the client's channel
    supports it, so a burst of soft-state changes costs ~one round trip
    instead of one per slice.  RLI set updates are idempotent, so a
    partially delivered burst is safe: the update manager's redelivery
    re-sends the whole batch.  Full updates replace the LRC's entry
    wholesale and are never chunked.
    """

    def __init__(self, client, chunk_size: int = 5000) -> None:
        # client: repro.net.rpc.RPCClient
        self.client = client
        self.chunk_size = max(1, int(chunk_size))

    def full_update(self, lrc_name: str, lfns: Sequence[str]) -> None:
        self.client.call("rli_full_update", lrc_name, list(lfns))

    def incremental_update(
        self, lrc_name: str, added: Sequence[str], removed: Sequence[str]
    ) -> None:
        added = list(added)
        removed = list(removed)
        chunk = self.chunk_size
        client = self.client
        if len(added) + len(removed) <= chunk or not getattr(
            client, "pipelined", False
        ):
            client.call("rli_incremental_update", lrc_name, added, removed)
            return
        pending = []
        for start in range(0, len(added), chunk):
            pending.append(
                client.call_async(
                    "rli_incremental_update",
                    lrc_name,
                    added[start : start + chunk],
                    [],
                )
            )
        for start in range(0, len(removed), chunk):
            pending.append(
                client.call_async(
                    "rli_incremental_update",
                    lrc_name,
                    [],
                    removed[start : start + chunk],
                )
            )
        client.drain()
        for call in pending:
            call.result()

    def bloom_update(
        self,
        lrc_name: str,
        bitmap: bytes,
        num_bits: int,
        num_hashes: int,
        approx_entries: int,
    ) -> None:
        self.client.call(
            "rli_bloom_update",
            lrc_name,
            bitmap,
            num_bits,
            num_hashes,
            approx_entries,
        )


@dataclass
class UpdatePolicy:
    """Timing and compression knobs for soft-state updates.

    Defaults follow the paper: immediate-mode flushes after 30 seconds or
    ``immediate_count_threshold`` buffered changes, and Bloom filters use
    ~10 bits per mapping with 3 hash functions.
    """

    immediate_mode: bool = True
    immediate_interval: float = 30.0
    immediate_count_threshold: int = 100
    full_interval: float = 600.0
    bloom_bits_per_entry: int = 10
    bloom_num_hashes: int = 3
    #: Floor for the counting Bloom filter's expected-entry sizing.  The
    #: filter is sized "based on the number of mappings in an LRC" (§3.4)
    #: with this minimum, and is rebuilt larger automatically when the
    #: catalog outgrows it (see UpdateManager._send_bloom).
    bloom_expected_entries: int = 1024
    #: Headroom multiplier when sizing from the current catalog, so modest
    #: growth does not force an immediate rebuild.
    bloom_sizing_headroom: float = 1.25
    #: Push to multiple RLI targets concurrently (one thread per target).
    #: Off by default: sequential pushes match the measured v2.0.9 server;
    #: parallel fan-out helps fully-connected meshes (§6, ESG).
    parallel_updates: bool = False
    #: Backoff schedule for per-target redelivery after a failed push.
    #: ``max_attempts`` is deliberately ignored here — soft state never
    #: gives up on a target; only the delay curve (base/multiplier/max/
    #: jitter) shapes how quickly ``tick()`` re-tries it.
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            backoff_base=2.0, backoff_multiplier=2.0, backoff_max=120.0
        )
    )


@dataclass
class UpdateStats:
    """Counters for observability and the benchmarks."""

    full_updates: int = 0
    incremental_updates: int = 0
    bloom_updates: int = 0
    names_sent: int = 0
    bytes_sent_bloom: int = 0
    last_full_duration: float = 0.0
    last_bloom_duration: float = 0.0
    bloom_generation_time: float = 0.0
    #: Failed push attempts (any flavour, any target).
    errors: int = 0
    #: Redelivery attempts made by ``tick()`` for unhealthy/backlogged targets.
    retries: int = 0


@dataclass
class TargetDeliveryState:
    """Per-RLI delivery bookkeeping: health, backlog, and retry schedule."""

    name: str
    healthy: bool = True
    consecutive_failures: int = 0
    #: Incremental changes accepted for this target but not yet delivered.
    pending_added: set[str] = field(default_factory=set)
    pending_removed: set[str] = field(default_factory=set)
    #: A full/Bloom push failed: the next delivery must be a fresh full.
    needs_full: bool = False
    last_error: str | None = None
    #: Clock time before which ``tick()`` will not retry this target.
    next_retry_at: float = 0.0
    #: Redelivery attempts made for this target.
    retries: int = 0

    @property
    def backlog(self) -> int:
        return len(self.pending_added) + len(self.pending_removed)

    def to_dict(self) -> dict:
        return {
            "healthy": self.healthy,
            "consecutive_failures": self.consecutive_failures,
            "backlog": self.backlog,
            "needs_full": self.needs_full,
            "last_error": self.last_error,
            "retries": self.retries,
        }


class UpdateManager:
    """Tracks catalog changes and pushes soft-state updates to RLIs."""

    def __init__(
        self,
        lrc: LocalReplicaCatalog,
        sink_resolver: Callable[[str], UpdateSink],
        policy: UpdatePolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
        rng: Callable[[], float] = random.random,
        flight=None,
    ) -> None:
        self.lrc = lrc
        self.sink_resolver = sink_resolver
        self.policy = policy or UpdatePolicy()
        self.clock = clock
        self.rng = rng
        #: Optional flight recorder: delivery attempts, retries, and
        #: failures land in the server-wide black-box event ring.
        self.flight = flight
        self.stats = UpdateStats()
        self._lock = threading.RLock()
        self._pending_added: set[str] = set()
        self._pending_removed: set[str] = set()
        self._last_immediate_flush = clock()
        self._last_full_update = clock()
        self._bloom: CountingBloomFilter | None = None
        self._targets: dict[str, TargetDeliveryState] = {}
        registry = metrics if metrics is not None else NULL_REGISTRY
        self.metrics = registry
        self._m_full_duration = registry.histogram(
            "updates.duration", kind="full"
        )
        self._m_bloom_send = registry.histogram(
            "updates.duration", kind="bloom"
        )
        self._m_bloom_generation = registry.histogram(
            "updates.bloom_generation"
        )
        self._m_names_sent = registry.counter("updates.names_sent")
        self._m_bloom_bytes = registry.counter("updates.bloom_bytes_sent")
        self._m_sent = {
            kind: registry.counter("updates.sent", kind=kind)
            for kind in ("full", "incremental", "bloom")
        }
        self._m_errors = {
            kind: registry.counter("updates.errors", kind=kind)
            for kind in ("full", "incremental", "bloom")
        }
        self._m_retries = registry.counter("updates.retries")
        registry.register_gauge_fn(
            "updates.pending_changes", lambda: sum(self.pending_changes())
        )
        registry.register_gauge_fn(
            "updates.retry_backlog", self._total_backlog
        )
        registry.register_gauge_fn(
            "updates.targets_unhealthy", self._unhealthy_count
        )
        lrc.add_lfn_listener(self._on_lfn_change)

    # ------------------------------------------------------------------
    # Catalog change tracking
    # ------------------------------------------------------------------

    def _on_lfn_change(self, lfn: str, present: bool) -> None:
        with self._lock:
            if present:
                self._pending_removed.discard(lfn)
                self._pending_added.add(lfn)
                if self._bloom is not None:
                    self._bloom.add(lfn)
            else:
                self._pending_added.discard(lfn)
                self._pending_removed.add(lfn)
                if self._bloom is not None:
                    self._bloom.remove(lfn)

    def pending_changes(self) -> tuple[int, int]:
        with self._lock:
            return len(self._pending_added), len(self._pending_removed)

    # ------------------------------------------------------------------
    # Per-target delivery state
    # ------------------------------------------------------------------

    def _state(self, name: str) -> TargetDeliveryState:
        with self._lock:
            state = self._targets.get(name)
            created = state is None
            if created:
                state = self._targets[name] = TargetDeliveryState(name=name)
        if created:
            self.metrics.register_gauge_fn(
                "updates.target_healthy",
                lambda s=state: 1.0 if s.healthy else 0.0,
                target=name,
            )
        return state

    def _total_backlog(self) -> float:
        with self._lock:
            return float(sum(s.backlog for s in self._targets.values()))

    def _unhealthy_count(self) -> float:
        with self._lock:
            return float(
                sum(1 for s in self._targets.values() if not s.healthy)
            )

    def target_health(self) -> dict[str, dict]:
        """Delivery health for every registered target (for admin stats)."""
        with self._lock:
            health = {
                name: state.to_dict() for name, state in self._targets.items()
            }
        for tgt in self.lrc.rli_targets():
            health.setdefault(tgt.name, TargetDeliveryState(tgt.name).to_dict())
        return health

    def _flight_record(
        self, kind: str, detail: str, error: bool = False, **data
    ) -> None:
        if self.flight is not None:
            self.flight.record(kind, detail=detail, error=error, **data)

    def _record_failure(
        self,
        state: TargetDeliveryState,
        kind: str,
        exc: BaseException,
        needs_full: bool = False,
    ) -> None:
        self._flight_record(
            "error",
            f"update {kind}->{state.name}: {type(exc).__name__}",
            error=True,
            target=state.name,
        )
        with self._lock:
            state.healthy = False
            state.consecutive_failures += 1
            state.last_error = f"{type(exc).__name__}: {exc}"
            if needs_full:
                state.needs_full = True
            # Exponential per-target backoff; the attempt index is capped
            # so long outages plateau at backoff_max rather than overflow.
            attempt = min(state.consecutive_failures - 1, 16)
            state.next_retry_at = self.clock() + self.policy.retry.backoff(
                attempt, self.rng
            )
            self.stats.errors += 1
        self._m_errors[kind].inc()

    def _record_success(self, state: TargetDeliveryState) -> None:
        with self._lock:
            state.healthy = True
            state.consecutive_failures = 0
            state.last_error = None
            state.next_retry_at = 0.0

    def _merge_delta(
        self,
        state: TargetDeliveryState,
        added: Iterable[str],
        removed: Iterable[str],
    ) -> None:
        """Fold a fresh delta into a target's backlog; newer intents win.

        An add supersedes a still-queued remove of the same LFN (and vice
        versa) — the same collapse rule ``_on_lfn_change`` applies to the
        global delta.  Because the backlog is merged *before* each send
        and only drained on success, a failed push never clobbers changes
        that arrived after it was queued.
        """
        with self._lock:
            for lfn in added:
                state.pending_removed.discard(lfn)
                state.pending_added.add(lfn)
            for lfn in removed:
                state.pending_added.discard(lfn)
                state.pending_removed.add(lfn)

    # ------------------------------------------------------------------
    # Bloom filter maintenance
    # ------------------------------------------------------------------

    def rebuild_bloom(self) -> float:
        """(Re)build the counting filter from the catalog.

        This is the paper's one-time Bloom generation cost (Table 3,
        column 3); returns the wall-clock seconds it took.  Subsequent
        catalog changes maintain the filter incrementally.
        """
        start = time.perf_counter()
        names = self.lrc.all_lfns()
        expected = max(
            int(len(names) * self.policy.bloom_sizing_headroom),
            self.policy.bloom_expected_entries,
        )
        params = BloomParameters.for_entries(
            expected,
            bits_per_entry=self.policy.bloom_bits_per_entry,
            num_hashes=self.policy.bloom_num_hashes,
        )
        fresh = CountingBloomFilter(params)
        fresh.add_batch(names)
        with self._lock:
            self._bloom = fresh
        elapsed = time.perf_counter() - start
        self.stats.bloom_generation_time = elapsed
        self._m_bloom_generation.observe(elapsed)
        return elapsed

    @property
    def bloom(self) -> CountingBloomFilter | None:
        return self._bloom

    def _bloom_overflowed(self, bloom: CountingBloomFilter) -> bool:
        """True when entries exceed the filter's design capacity."""
        capacity = bloom.params.num_bits // self.policy.bloom_bits_per_entry
        return bloom.entries > capacity

    # ------------------------------------------------------------------
    # Pushing updates
    # ------------------------------------------------------------------

    def send_full_update(self, target: RLITarget | None = None) -> float:
        """Push a full update to one target (or all); returns duration (s).

        Bloom-flagged targets get the packed filter snapshot; others get
        the (possibly partition-filtered) complete LFN list.  A failing
        target no longer aborts the fan-out: every target is attempted,
        failures mark their target unhealthy (``tick()`` re-pushes them
        later), and the first failure is re-raised once all pushes ran.
        """
        targets = [target] if target is not None else self.lrc.rli_targets()
        if not targets:
            raise UpdateTargetError("no RLI targets registered")
        start = time.perf_counter()
        router = PartitionRouter(targets)
        all_names: list[str] | None = None
        if any(not tgt.bloom for tgt in targets):
            all_names = self.lrc.all_lfns()

        def push_one(tgt: RLITarget) -> None:
            self._push_full_to(tgt, router, all_names)

        errors: list[BaseException] = []
        if self.policy.parallel_updates and len(targets) > 1:
            try:
                self._push_parallel(targets, push_one)
            except Exception as exc:
                errors.append(exc)
        else:
            for tgt in targets:
                try:
                    push_one(tgt)
                except Exception as exc:
                    errors.append(exc)
        with self._lock:
            # A full update subsumes any pending incremental changes;
            # targets that missed it are flagged needs_full, so dropping
            # the global delta loses nothing for them either.
            self._pending_added.clear()
            self._pending_removed.clear()
            self._last_full_update = self.clock()
            self._last_immediate_flush = self.clock()
        elapsed = time.perf_counter() - start
        self.stats.last_full_duration = elapsed
        self._m_full_duration.observe(elapsed)
        if errors:
            raise errors[0]
        return elapsed

    def _push_full_to(
        self,
        tgt: RLITarget,
        router: PartitionRouter,
        all_names: list[str] | None = None,
    ) -> None:
        """One target's share of a full update, with delivery bookkeeping."""
        state = self._state(tgt.name)
        self._flight_record(
            "update.attempt",
            f"{'bloom' if tgt.bloom else 'full'}->{tgt.name}",
            target=tgt.name,
        )
        try:
            sink = self.sink_resolver(tgt.name)
            if tgt.bloom:
                self._send_bloom(sink, tgt, router)
            else:
                names = all_names
                if names is None:
                    names = self.lrc.all_lfns()
                names = router.filter_names(tgt, names)
                sink.full_update(self.lrc.name, names)
                with self._lock:
                    self.stats.full_updates += 1
                    self.stats.names_sent += len(names)
                self._m_sent["full"].inc()
                self._m_names_sent.inc(len(names))
        except Exception as exc:
            self._record_failure(
                state, "bloom" if tgt.bloom else "full", exc, needs_full=True
            )
            raise
        with self._lock:
            # The full push replaces the target's state wholesale: any
            # backlog from earlier incremental failures is subsumed.
            state.pending_added.clear()
            state.pending_removed.clear()
            state.needs_full = False
        self._record_success(state)

    def _send_bloom(
        self, sink: UpdateSink, target: RLITarget, router: PartitionRouter
    ) -> None:
        start = time.perf_counter()
        with self._lock:
            bloom = self._bloom
        if bloom is None or self._bloom_overflowed(bloom):
            # First send, or the catalog outgrew the filter's sizing: the
            # paper sizes filters by LRC mapping count, so rebuild larger.
            self.rebuild_bloom()
            bloom = self._bloom
            assert bloom is not None
        if target.patterns:
            # Partitioned Bloom update: build a one-shot filter over the
            # matching namespace subset.
            from repro.core.bloom import BloomFilter

            names = router.filter_names(target, self.lrc.all_lfns())
            params = BloomParameters.for_entries(
                max(len(names), 1024),
                bits_per_entry=self.policy.bloom_bits_per_entry,
                num_hashes=self.policy.bloom_num_hashes,
            )
            snapshot = BloomFilter.from_names(names, params)
        else:
            snapshot = bloom.snapshot()
        payload = snapshot.to_bytes()
        sink.bloom_update(
            self.lrc.name,
            payload,
            snapshot.params.num_bits,
            snapshot.params.num_hashes,
            snapshot.approx_entries,
        )
        self.stats.bloom_updates += 1
        self.stats.bytes_sent_bloom += len(payload)
        elapsed = time.perf_counter() - start
        self.stats.last_bloom_duration = elapsed
        self._m_sent["bloom"].inc()
        self._m_bloom_bytes.inc(len(payload))
        self._m_bloom_send.observe(elapsed)

    def _push_parallel(self, targets, push_one) -> None:
        """Fan a push out to every target concurrently; re-raise the first
        failure after all threads finish (no target is silently skipped)."""
        errors: list[BaseException] = []
        error_lock = threading.Lock()

        def runner(tgt: RLITarget) -> None:
            try:
                push_one(tgt)
            except BaseException as exc:  # noqa: BLE001 - recorded, re-raised
                with error_lock:
                    errors.append(exc)

        threads = [
            threading.Thread(
                target=runner, args=(tgt,), name=f"update-{tgt.name}"
            )
            for tgt in targets
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    def send_incremental_update(self) -> int:
        """Flush pending adds/removes to all non-Bloom targets (§3.3).

        Bloom targets receive a fresh filter snapshot instead, since their
        RLI state is replaced wholesale.  Returns new changes flushed.

        A sink failure does **not** raise and does **not** lose changes:
        the undelivered delta stays in that target's backlog (newer
        changes win over re-queued ones) and ``tick()`` redelivers it once
        the target's backoff expires.
        """
        with self._lock:
            added = sorted(self._pending_added)
            removed = sorted(self._pending_removed)
            self._pending_added.clear()
            self._pending_removed.clear()
            self._last_immediate_flush = self.clock()
            have_backlog = any(s.backlog for s in self._targets.values())
        if not added and not removed and not have_backlog:
            return 0
        targets = self.lrc.rli_targets()
        router = PartitionRouter(targets)
        for tgt in targets:
            if tgt.bloom:
                if not added and not removed:
                    continue
                state = self._state(tgt.name)
                self._flight_record(
                    "update.attempt", f"bloom->{tgt.name}", target=tgt.name
                )
                try:
                    sink = self.sink_resolver(tgt.name)
                    self._send_bloom(sink, tgt, router)
                except Exception as exc:
                    # The filter snapshot is wholesale state: nothing to
                    # re-queue, but the target must get a fresh one.
                    self._record_failure(state, "bloom", exc, needs_full=True)
                    continue
                self._record_success(state)
            else:
                self._push_incremental_to(
                    tgt,
                    router.filter_names(tgt, added),
                    router.filter_names(tgt, removed),
                )
        return len(added) + len(removed)

    def _push_incremental_to(
        self,
        tgt: RLITarget,
        added: Sequence[str],
        removed: Sequence[str],
    ) -> bool:
        """Deliver backlog + new delta to one target; False on failure.

        The target's backlog and the new delta are merged *before* the
        send (newer intents win), so a crash between "clear pending" and
        "sink delivered" can no longer drop changes: nothing leaves the
        backlog until the sink call returns.
        """
        state = self._state(tgt.name)
        self._merge_delta(state, added, removed)
        with self._lock:
            send_added = sorted(state.pending_added)
            send_removed = sorted(state.pending_removed)
        if not send_added and not send_removed:
            return True
        self._flight_record(
            "update.attempt",
            f"incremental->{tgt.name}",
            target=tgt.name,
            added=len(send_added),
            removed=len(send_removed),
        )
        try:
            sink = self.sink_resolver(tgt.name)
            sink.incremental_update(self.lrc.name, send_added, send_removed)
        except Exception as exc:
            self._record_failure(state, "incremental", exc)
            return False
        with self._lock:
            # Remove exactly what was delivered; changes that raced in
            # during the send stay queued for the next flush.
            state.pending_added.difference_update(send_added)
            state.pending_removed.difference_update(send_removed)
            self.stats.incremental_updates += 1
            self.stats.names_sent += len(send_added) + len(send_removed)
        self._m_sent["incremental"].inc()
        self._m_names_sent.inc(len(send_added) + len(send_removed))
        self._record_success(state)
        return True

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def due_actions(self) -> list[str]:
        """Which pushes are due now (``"full"`` and/or ``"incremental"``)."""
        now = self.clock()
        due = []
        if now - self._last_full_update >= self.policy.full_interval:
            due.append("full")
        elif self.policy.immediate_mode:
            pending = len(self._pending_added) + len(self._pending_removed)
            if pending > 0 and (
                now - self._last_immediate_flush >= self.policy.immediate_interval
                or pending >= self.policy.immediate_count_threshold
            ):
                due.append("incremental")
        return due

    def retry_failed_deliveries(self) -> list[str]:
        """Redeliver to targets whose backoff has expired.

        Returns ``"retry:<target>"`` markers for every attempt made.  A
        target flagged ``needs_full`` gets a fresh full/Bloom push; one
        with only incremental backlog gets the backlog.  Failures re-arm
        the target's backoff; nothing raises.
        """
        now = self.clock()
        with self._lock:
            candidates = [
                state
                for state in self._targets.values()
                if (not state.healthy or state.needs_full or state.backlog)
                and now >= state.next_retry_at
            ]
        if not candidates:
            return []
        targets = {tgt.name: tgt for tgt in self.lrc.rli_targets()}
        router = PartitionRouter(list(targets.values()))
        attempted: list[str] = []
        for state in candidates:
            tgt = targets.get(state.name)
            if tgt is None:
                # The RLI was unregistered; drop its delivery state.
                with self._lock:
                    self._targets.pop(state.name, None)
                continue
            with self._lock:
                self.stats.retries += 1
                state.retries += 1
            self._m_retries.inc()
            attempted.append(f"retry:{state.name}")
            self._flight_record(
                "update.retry",
                state.name,
                target=state.name,
                consecutive_failures=state.consecutive_failures,
            )
            if state.needs_full or tgt.bloom:
                try:
                    self._push_full_to(tgt, router)
                except Exception:
                    continue  # recorded by _push_full_to; backoff re-armed
            else:
                self._push_incremental_to(tgt, (), ())
        return attempted

    def tick(self) -> list[str]:
        """Run any due pushes plus pending redeliveries; returns actions."""
        performed = []
        for action in self.due_actions():
            if action == "full":
                self.send_full_update()
            else:
                self.send_incremental_update()
            performed.append(action)
        performed.extend(self.retry_failed_deliveries())
        return performed


class UpdateThread:
    """Background scheduler calling :meth:`UpdateManager.tick`."""

    def __init__(self, manager: UpdateManager, poll_interval: float = 1.0) -> None:
        self.manager = manager
        self.poll_interval = poll_interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Exceptions that escaped ``tick()`` (the daemon keeps running).
        self.errors = 0
        self.last_error: str | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop,
            name=f"lrc-updates-{self.manager.lrc.name}",
            daemon=True,
        )
        self._thread.start()

    def _loop(self) -> None:
        from repro.obs.profile import register_thread, unregister_thread

        register_thread("updates")
        try:
            self._run()
        finally:
            unregister_thread()

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.manager.tick()
            except Exception as exc:
                # Keep the daemon alive, but never silently: the error
                # count and type feed the collector's pathology detectors.
                self.errors += 1
                self.last_error = f"{type(exc).__name__}: {exc}"
                self.manager.metrics.counter(
                    "updates.errors",
                    kind="tick",
                    error=type(exc).__name__,
                ).inc()
                with self.manager._lock:
                    self.manager.stats.errors += 1

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
