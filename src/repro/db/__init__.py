"""Embedded relational database substrate.

This package stands in for the MySQL / PostgreSQL back ends used by the
Globus RLS (Chervenak et al., HPDC 2004, Figure 2).  It provides:

* a storage engine with typed columns, primary-key / unique constraints,
  hash and ordered indexes (:mod:`repro.db.table`, :mod:`repro.db.index`);
* a write-ahead log whose flush policy reproduces the MySQL
  ``flush-on-commit`` versus ``periodic-flush`` behaviour the paper measures
  in Figures 4 and 5 (:mod:`repro.db.wal`);
* a MySQL-flavoured engine (:mod:`repro.db.mysql_engine`) and a
  PostgreSQL-flavoured engine with MVCC-style dead tuples and ``VACUUM``
  (:mod:`repro.db.postgres_engine`) that reproduces the Figure 8 sawtooth;
* a small SQL dialect (lexer/parser/planner/executor under
  :mod:`repro.db.sql`) sufficient for every statement the RLS issues; and
* an ODBC-like DB-API connection layer (:mod:`repro.db.odbc`) mirroring the
  libiODBC / myodbc stack in the paper's implementation diagram.
"""

from repro.db.errors import (
    DBError,
    DuplicateKeyError,
    IntegrityError,
    NoSuchIndexError,
    NoSuchTableError,
    SQLSyntaxError,
    TypeMismatchError,
)
from repro.db.engine import Database
from repro.db.mysql_engine import MySQLEngine
from repro.db.postgres_engine import PostgresEngine
from repro.db.odbc import Connection, Cursor, connect, register_dsn, unregister_dsn
from repro.db.schema import Column, TableSchema
from repro.db.types import ColumnType, FLOAT, INT, TIMESTAMP, VARCHAR

__all__ = [
    "Column",
    "ColumnType",
    "Connection",
    "Cursor",
    "DBError",
    "Database",
    "DuplicateKeyError",
    "FLOAT",
    "INT",
    "IntegrityError",
    "MySQLEngine",
    "NoSuchIndexError",
    "NoSuchTableError",
    "PostgresEngine",
    "SQLSyntaxError",
    "TIMESTAMP",
    "TableSchema",
    "TypeMismatchError",
    "VARCHAR",
    "connect",
    "register_dsn",
    "unregister_dsn",
]
