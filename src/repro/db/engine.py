"""The embedded database engine.

:class:`Database` ties together tables, the write-ahead log, and the SQL
front end.  The MySQL- and PostgreSQL-flavoured engines in
:mod:`repro.db.mysql_engine` / :mod:`repro.db.postgres_engine` subclass it
to select storage behaviour (eager cleanup vs. MVCC+vacuum) and flush
policy.
"""

from __future__ import annotations

import threading
from typing import Any, Sequence

from repro.db.errors import NoSuchTableError, TableExistsError
from repro.db.schema import TableSchema
from repro.db.table import Table
from repro.db.wal import (
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    WriteAheadLog,
)
from repro.obs import tracing


class Database:
    """A named collection of tables with SQL access and durability logging.

    Parameters
    ----------
    name:
        Database name (used in DSNs and error messages).
    wal:
        Optional :class:`~repro.db.wal.WriteAheadLog`.  When present, every
        insert/delete/update is logged and the flush policy of the log
        determines commit durability cost.  When ``None`` the engine runs
        without durability (useful for RLI Bloom-mode tests).
    eager_index_cleanup:
        Storage flavour passed through to tables; see
        :class:`repro.db.table.Table`.
    """

    flavor = "generic"

    def __init__(
        self,
        name: str = "db",
        wal: WriteAheadLog | None = None,
        eager_index_cleanup: bool = True,
        dead_hit_cost: float = 0.0,
    ) -> None:
        self.name = name
        self.wal = wal
        self.eager_index_cleanup = eager_index_cleanup
        self.dead_hit_cost = dead_hit_cost
        self._tables: dict[str, Table] = {}
        self._ddl_lock = threading.RLock()
        self._statement_cache: dict[str, Any] = {}
        self._executor: Any = None  # built lazily to avoid import cycle

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        with self._ddl_lock:
            key = schema.name.lower()
            if key in self._tables:
                raise TableExistsError(schema.name)
            table = Table(
                schema,
                eager_index_cleanup=self.eager_index_cleanup,
                dead_hit_cost=self.dead_hit_cost,
            )
            self._tables[key] = table
            return table

    def drop_table(self, name: str) -> None:
        with self._ddl_lock:
            if self._tables.pop(name.lower(), None) is None:
                raise NoSuchTableError(name)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise NoSuchTableError(name) from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return [t.schema.name for t in self._tables.values()]

    # ------------------------------------------------------------------
    # Logged DML primitives (used by the SQL executor and by recovery)
    # ------------------------------------------------------------------

    def insert_row(self, table_name: str, values: dict[str, Any]) -> tuple[int, list]:
        table = self.table(table_name)
        rid, row = table.insert(values)
        if self.wal is not None:
            self.wal.log(OP_INSERT, table.schema.name, tuple(row))
        return rid, row

    def delete_row(self, table_name: str, rid: int) -> list:
        table = self.table(table_name)
        old = table.delete_rid(rid)
        if self.wal is not None:
            self.wal.log(OP_DELETE, table.schema.name, tuple(old))
        return old

    def update_row(
        self, table_name: str, rid: int, changes: dict[str, Any]
    ) -> tuple[int, list]:
        table = self.table(table_name)
        new_rid, row = table.update_rid(rid, changes)
        if self.wal is not None:
            self.wal.log(OP_UPDATE, table.schema.name, tuple(row))
        return new_rid, row

    # ------------------------------------------------------------------
    # SQL front end
    # ------------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> "ResultSet":
        """Parse (with caching), plan and run one SQL statement."""
        from repro.db.sql.executor import Executor
        from repro.db.sql.parser import parse

        stmt = self._statement_cache.get(sql)
        if stmt is None:
            stmt = parse(sql)
            # Unbounded growth guard: the RLS issues a small fixed set of
            # statements, but user SQL could be unique per call.
            if len(self._statement_cache) < 4096:
                self._statement_cache[sql] = stmt
        if self._executor is None:
            self._executor = Executor(self)
        if not tracing.active():
            return self._executor.execute(stmt, list(params))
        with tracing.span("sql.execute", statement=type(stmt).__name__):
            return self._executor.execute(stmt, list(params))

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush any buffered WAL records to the durable device."""
        if self.wal is not None:
            self.wal.flush()

    def recover_into(self, other: "Database") -> int:
        """Replay this database's durable WAL into ``other``.

        ``other`` must already contain the table schemas (DDL is not
        logged, matching the RLS practice of creating schemas at install
        time).  Returns the number of records applied.
        """
        if self.wal is None:
            return 0
        applied = 0
        for record in self.wal.records():
            table = other.table(record.table)
            names = table.schema.column_names
            values = dict(zip(names, record.payload))
            if record.op == OP_INSERT or record.op == OP_UPDATE:
                if record.op == OP_UPDATE:
                    _delete_matching(table, values)
                table.insert(values)
            elif record.op == OP_DELETE:
                _delete_matching(table, values)
            applied += 1
        return applied

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-table operation counters (see :class:`TableStats`)."""
        return {
            t.schema.name: t.stats.snapshot() for t in self._tables.values()
        }


def _delete_matching(table: Table, values: dict[str, Any]) -> None:
    """Delete the live row matching the logged key (PK if any, else all cols)."""
    keys = table.schema.key_constraints()
    if keys:
        cols = keys[0]
        key = tuple(values[c] for c in cols)
        for rid, _row in table.lookup_equal(cols, key):
            table.delete_rid(rid)
            return
    else:
        target = [values[c] for c in table.schema.column_names]
        for rid, row in table.scan():
            if row == target:
                table.delete_rid(rid)
                return


class ResultSet:
    """Rows plus metadata returned by :meth:`Database.execute`."""

    __slots__ = ("columns", "rows", "rowcount", "lastrowid")

    def __init__(
        self,
        columns: list[str],
        rows: list[tuple],
        rowcount: int,
        lastrowid: int | None = None,
    ) -> None:
        self.columns = columns
        self.rows = rows
        self.rowcount = rowcount
        self.lastrowid = lastrowid

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """First column of the first row, or ``None`` if empty."""
        if not self.rows:
            return None
        return self.rows[0][0]
