"""The embedded database engine.

:class:`Database` ties together tables, the write-ahead log, and the SQL
front end.  The MySQL- and PostgreSQL-flavoured engines in
:mod:`repro.db.mysql_engine` / :mod:`repro.db.postgres_engine` subclass it
to select storage behaviour (eager cleanup vs. MVCC+vacuum) and flush
policy.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Sequence

from repro.db.errors import NoSuchTableError, TableExistsError
from repro.db.profiler import QueryProfile, QueryProfiler
from repro.db.schema import TableSchema
from repro.db.table import Table, TableStats
from repro.db.wal import (
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    WriteAheadLog,
)
from repro.obs import tracing
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

#: Default bound on the parsed-statement LRU cache.  The RLS issues a
#: small fixed statement set; user SQL with inlined literals is unique
#: per call and must not grow the cache without bound.
DEFAULT_STATEMENT_CACHE_SIZE = 512


class Database:
    """A named collection of tables with SQL access and durability logging.

    Parameters
    ----------
    name:
        Database name (used in DSNs and error messages).
    wal:
        Optional :class:`~repro.db.wal.WriteAheadLog`.  When present, every
        insert/delete/update is logged and the flush policy of the log
        determines commit durability cost.  When ``None`` the engine runs
        without durability (useful for RLI Bloom-mode tests).
    eager_index_cleanup:
        Storage flavour passed through to tables; see
        :class:`repro.db.table.Table`.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  When
        present, tables export ``db.table.*{table=...}`` gauges and
        ``db.latch_wait{table=...}`` histograms, and the statement cache
        counts hits/misses.
    profiler:
        Optional :class:`~repro.db.profiler.QueryProfiler` (mainly for
        clock injection in tests); one is built against ``metrics`` by
        default, disabled until something enables it.
    """

    flavor = "generic"

    def __init__(
        self,
        name: str = "db",
        wal: WriteAheadLog | None = None,
        eager_index_cleanup: bool = True,
        dead_hit_cost: float = 0.0,
        metrics: MetricsRegistry | None = None,
        profiler: QueryProfiler | None = None,
        statement_cache_size: int = DEFAULT_STATEMENT_CACHE_SIZE,
    ) -> None:
        self.name = name
        self.wal = wal
        self.eager_index_cleanup = eager_index_cleanup
        self.dead_hit_cost = dead_hit_cost
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.profiler = (
            profiler if profiler is not None
            else QueryProfiler(metrics=self.metrics)
        )
        self._tables: dict[str, Table] = {}
        self._ddl_lock = threading.RLock()
        self._statement_cache: "OrderedDict[str, Any]" = OrderedDict()
        self._statement_cache_size = statement_cache_size
        self._m_cache_hits = self.metrics.counter("db.stmt_cache_hits")
        self._m_cache_misses = self.metrics.counter("db.stmt_cache_misses")
        self._executor: Any = None  # built lazily to avoid import cycle

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        with self._ddl_lock:
            key = schema.name.lower()
            if key in self._tables:
                raise TableExistsError(schema.name)
            table = Table(
                schema,
                eager_index_cleanup=self.eager_index_cleanup,
                dead_hit_cost=self.dead_hit_cost,
                metrics=self.metrics,
            )
            self._tables[key] = table
            self._register_table_metrics(table)
            return table

    def _register_table_metrics(self, table: Table) -> None:
        """Export TableStats and tuple counts as ``db.table.*{table=...}``.

        Gauge callbacks are sampled only at snapshot time, so the table
        hot path pays nothing.  The stats fields are monotonic counters,
        but gauge-fn sampling is the registry's only pull mechanism; the
        collector still sees correct interval deltas.
        """
        registry = self.metrics
        name = table.schema.name
        registry.register_gauge_fn(
            "db.table.live_tuples", lambda t=table: float(t.row_count),
            table=name,
        )
        registry.register_gauge_fn(
            "db.table.dead_tuples", lambda t=table: float(t.dead_tuple_count),
            table=name,
        )
        for field in TableStats.__slots__:
            registry.register_gauge_fn(
                f"db.table.{field}",
                lambda s=table.stats, f=field: float(getattr(s, f)),
                table=name,
            )

    def drop_table(self, name: str) -> None:
        with self._ddl_lock:
            if self._tables.pop(name.lower(), None) is None:
                raise NoSuchTableError(name)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise NoSuchTableError(name) from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return [t.schema.name for t in self._tables.values()]

    # ------------------------------------------------------------------
    # Logged DML primitives (used by the SQL executor and by recovery)
    # ------------------------------------------------------------------

    def insert_row(self, table_name: str, values: dict[str, Any]) -> tuple[int, list]:
        table = self.table(table_name)
        rid, row = table.insert(values)
        if self.wal is not None:
            self.wal.log(OP_INSERT, table.schema.name, tuple(row))
        return rid, row

    def delete_row(self, table_name: str, rid: int) -> list:
        table = self.table(table_name)
        old = table.delete_rid(rid)
        if self.wal is not None:
            self.wal.log(OP_DELETE, table.schema.name, tuple(old))
        return old

    def update_row(
        self, table_name: str, rid: int, changes: dict[str, Any]
    ) -> tuple[int, list]:
        table = self.table(table_name)
        new_rid, row = table.update_rid(rid, changes)
        if self.wal is not None:
            self.wal.log(OP_UPDATE, table.schema.name, tuple(row))
        return new_rid, row

    # ------------------------------------------------------------------
    # SQL front end
    # ------------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> "ResultSet":
        """Parse (with caching), plan and run one SQL statement."""
        from repro.db.sql.executor import Executor
        from repro.db.sql.parser import parse

        cache = self._statement_cache
        stmt = cache.get(sql)
        if stmt is None:
            self._m_cache_misses.inc()
            stmt = parse(sql)
            cache[sql] = stmt
            # LRU bound: parameter-inlined user SQL is unique per call
            # and must not grow the cache forever.
            if len(cache) > self._statement_cache_size:
                cache.popitem(last=False)
        else:
            self._m_cache_hits.inc()
            cache.move_to_end(sql)
        if self._executor is None:
            self._executor = Executor(self)
        profiler = self.profiler
        if profiler.enabled:
            return self._execute_profiled(profiler, sql, stmt, list(params))
        if not tracing.active():
            return self._executor.execute(stmt, list(params))
        with tracing.span("sql.execute", statement=type(stmt).__name__):
            return self._executor.execute(stmt, list(params))

    def _execute_profiled(
        self,
        profiler: QueryProfiler,
        sql: str,
        stmt: Any,
        params: list[Any],
    ) -> "ResultSet":
        """Run one statement under a :class:`QueryProfile`.

        The enclosing trace context (the server's ``rpc.handle`` span
        when called from a request) is captured *before* opening the
        ``sql.execute`` child span, so a retained slow statement links
        back to the RPC that issued it.
        """
        trace = tracing.context()
        profile = QueryProfile(clock=profiler.clock)
        start = profiler.clock()
        try:
            if tracing.active():
                with tracing.span(
                    "sql.execute", statement=type(stmt).__name__
                ):
                    result = self._executor.execute(stmt, params, profile)
            else:
                result = self._executor.execute(stmt, params, profile)
        except Exception as exc:
            profile.duration = profiler.clock() - start
            profiler.record(
                sql, stmt, profile, profile.duration,
                error=f"{type(exc).__name__}: {exc}", trace=trace,
            )
            raise
        profile.duration = profiler.clock() - start
        profile.rows_returned = (
            len(result.rows) if result.rows else result.rowcount
        )
        profiler.record(sql, stmt, profile, profile.duration, trace=trace)
        return result

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush any buffered WAL records to the durable device."""
        if self.wal is not None:
            self.wal.flush()

    def recover_into(self, other: "Database") -> int:
        """Replay this database's durable WAL into ``other``.

        ``other`` must already contain the table schemas (DDL is not
        logged, matching the RLS practice of creating schemas at install
        time).  Returns the number of records applied.
        """
        if self.wal is None:
            return 0
        applied = 0
        for record in self.wal.records():
            table = other.table(record.table)
            names = table.schema.column_names
            values = dict(zip(names, record.payload))
            if record.op == OP_INSERT or record.op == OP_UPDATE:
                if record.op == OP_UPDATE:
                    _delete_matching(table, values)
                table.insert(values)
            elif record.op == OP_DELETE:
                _delete_matching(table, values)
            applied += 1
        return applied

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-table operation counters (see :class:`TableStats`)."""
        return {
            t.schema.name: t.stats.snapshot() for t in self._tables.values()
        }


def _delete_matching(table: Table, values: dict[str, Any]) -> None:
    """Delete the live row matching the logged key (PK if any, else all cols)."""
    keys = table.schema.key_constraints()
    if keys:
        cols = keys[0]
        key = tuple(values[c] for c in cols)
        for rid, _row in table.lookup_equal(cols, key):
            table.delete_rid(rid)
            return
    else:
        target = [values[c] for c in table.schema.column_names]
        for rid, row in table.scan():
            if row == target:
                table.delete_rid(rid)
                return


class ResultSet:
    """Rows plus metadata returned by :meth:`Database.execute`."""

    __slots__ = ("columns", "rows", "rowcount", "lastrowid")

    def __init__(
        self,
        columns: list[str],
        rows: list[tuple],
        rowcount: int,
        lastrowid: int | None = None,
    ) -> None:
        self.columns = columns
        self.rows = rows
        self.rowcount = rowcount
        self.lastrowid = lastrowid

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """First column of the first row, or ``None`` if empty."""
        if not self.rows:
            return None
        return self.rows[0][0]
