"""Exception hierarchy for the embedded database substrate."""

from __future__ import annotations


class DBError(Exception):
    """Base class for every error raised by :mod:`repro.db`."""


class NoSuchTableError(DBError):
    """A statement referenced a table that does not exist."""

    def __init__(self, name: str) -> None:
        super().__init__(f"no such table: {name!r}")
        self.table_name = name


class NoSuchColumnError(DBError):
    """A statement referenced a column that does not exist."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"no such column: {table!r}.{column!r}")
        self.table_name = table
        self.column_name = column


class NoSuchIndexError(DBError):
    """An operation referenced an index that does not exist."""

    def __init__(self, name: str) -> None:
        super().__init__(f"no such index: {name!r}")
        self.index_name = name


class TableExistsError(DBError):
    """``CREATE TABLE`` collided with an existing table."""

    def __init__(self, name: str) -> None:
        super().__init__(f"table already exists: {name!r}")
        self.table_name = name


class IntegrityError(DBError):
    """A constraint (NOT NULL, unique, primary key) was violated."""


class DuplicateKeyError(IntegrityError):
    """A unique or primary-key constraint was violated."""

    def __init__(self, table: str, column: str, value: object) -> None:
        super().__init__(
            f"duplicate key in {table!r}: column {column!r} value {value!r}"
        )
        self.table_name = table
        self.column_name = column
        self.value = value


class TypeMismatchError(DBError):
    """A value could not be coerced to the declared column type."""


class SQLSyntaxError(DBError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class TransactionError(DBError):
    """Invalid transaction state transition (e.g. commit without begin)."""


class ConnectionClosedError(DBError):
    """An operation was attempted on a closed connection or cursor."""


class UnknownDSNError(DBError):
    """``connect()`` was called with an unregistered data source name."""

    def __init__(self, dsn: str) -> None:
        super().__init__(f"unknown DSN: {dsn!r}")
        self.dsn = dsn
