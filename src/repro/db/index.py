"""In-memory indexes for the embedded database.

Two index structures are provided:

* :class:`HashIndex` — a dict from key tuple to a set of row ids.  O(1)
  equality lookups; used for the surrogate-key and name lookups that
  dominate RLS traffic.
* :class:`OrderedIndex` — a sorted-key index (bisect over a periodically
  compacted sorted list) supporting range and prefix scans, which back SQL
  ``LIKE 'prefix%'`` — the RLS wildcard queries.

Both index types intentionally keep entries for *dead* MVCC tuples until
the owning table vacuums them (see :mod:`repro.db.postgres_engine`); the
cost of filtering dead entries out of lookups is what produces the paper's
Figure 8 sawtooth, so the behaviour is load-bearing, not an accident.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator


class HashIndex:
    """Equality index mapping a key tuple to the set of row ids holding it."""

    __slots__ = ("name", "column_positions", "_map")

    def __init__(self, name: str, column_positions: Iterable[int]) -> None:
        self.name = name
        self.column_positions = tuple(column_positions)
        self._map: dict[tuple, set[int]] = {}

    def key_for(self, row: list[Any]) -> tuple:
        return tuple(row[i] for i in self.column_positions)

    def insert(self, key: tuple, rid: int) -> None:
        self._map.setdefault(key, set()).add(rid)

    def remove(self, key: tuple, rid: int) -> None:
        ids = self._map.get(key)
        if ids is not None:
            ids.discard(rid)
            if not ids:
                del self._map[key]

    def lookup(self, key: tuple) -> set[int]:
        """Row ids whose indexed columns equal ``key`` (may include dead rows)."""
        return self._map.get(key, _EMPTY_SET)

    def __len__(self) -> int:
        return len(self._map)

    def distinct_keys(self) -> Iterator[tuple]:
        return iter(self._map)


_EMPTY_SET: frozenset[int] = frozenset()


class OrderedIndex:
    """Sorted index over a single column supporting prefix/range scans.

    Keys are kept in a sorted list; insertions use :func:`bisect.insort`.
    Each key maps to the set of row ids carrying it.  Only single-column
    ordered indexes are needed by the RLS schema (name columns).
    """

    __slots__ = ("name", "column_position", "_keys", "_map")

    def __init__(self, name: str, column_position: int) -> None:
        self.name = name
        self.column_position = column_position
        self._keys: list[Any] = []
        self._map: dict[Any, set[int]] = {}

    def key_for(self, row: list[Any]) -> Any:
        return row[self.column_position]

    def insert(self, key: Any, rid: int) -> None:
        ids = self._map.get(key)
        if ids is None:
            self._map[key] = {rid}
            bisect.insort(self._keys, key)
        else:
            ids.add(rid)

    def remove(self, key: Any, rid: int) -> None:
        ids = self._map.get(key)
        if ids is None:
            return
        ids.discard(rid)
        if not ids:
            del self._map[key]
            pos = bisect.bisect_left(self._keys, key)
            if pos < len(self._keys) and self._keys[pos] == key:
                del self._keys[pos]

    def lookup(self, key: Any) -> set[int]:
        return self._map.get(key, set())

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, set[int]]]:
        """Yield ``(key, row_ids)`` for keys within [low, high] in order."""
        if low is None:
            start = 0
        else:
            start = (
                bisect.bisect_left(self._keys, low)
                if include_low
                else bisect.bisect_right(self._keys, low)
            )
        if high is None:
            stop = len(self._keys)
        else:
            stop = (
                bisect.bisect_right(self._keys, high)
                if include_high
                else bisect.bisect_left(self._keys, high)
            )
        for i in range(start, stop):
            key = self._keys[i]
            yield key, self._map[key]

    def prefix_scan(self, prefix: str) -> Iterator[tuple[str, set[int]]]:
        """Yield ``(key, row_ids)`` for string keys starting with ``prefix``.

        Implements ``LIKE 'prefix%'`` without a full scan: the upper bound
        is the prefix with its last character incremented.
        """
        if prefix == "":
            yield from self.range_scan()
            return
        start = bisect.bisect_left(self._keys, prefix)
        for i in range(start, len(self._keys)):
            key = self._keys[i]
            if not isinstance(key, str) or not key.startswith(prefix):
                break
            yield key, self._map[key]

    def __len__(self) -> int:
        return len(self._keys)
