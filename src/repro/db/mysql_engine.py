"""MySQL-flavoured engine.

Key behaviours the paper relies on (§5.1):

* **Flush policy.**  ``flush_on_commit=True`` makes every committed mutation
  pay a log-device sync (≈11 ms modelled disk barrier) — the paper's
  "database flush enabled" configuration that caps adds at ~84/s.  With
  ``flush_on_commit=False`` the log is synced periodically, which is the
  configuration the paper recommends and uses for the rest of its results.
* **Eager storage cleanup.**  Deletes reclaim heap slots and index entries
  immediately — MySQL/InnoDB purge is effectively prompt at RLS scales, so
  there is no vacuum sawtooth (contrast :mod:`repro.db.postgres_engine`).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.db.engine import Database
from repro.db.wal import InMemoryLogDevice, LogDevice, WriteAheadLog
from repro.obs.metrics import MetricsRegistry


class MySQLEngine(Database):
    """Embedded stand-in for the MySQL 4.0 back end in the paper."""

    flavor = "mysql"

    def __init__(
        self,
        name: str = "mysql",
        flush_on_commit: bool = True,
        sync_latency: float = 0.011,
        flush_interval: float = 1.0,
        device: LogDevice | None = None,
        sleep: Callable[[float], None] = time.sleep,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if device is None:
            device = InMemoryLogDevice(sync_latency=sync_latency, sleep=sleep)
        wal = WriteAheadLog(
            device=device,
            flush_on_commit=flush_on_commit,
            flush_interval=flush_interval,
            metrics=metrics,
        )
        super().__init__(
            name=name, wal=wal, eager_index_cleanup=True, metrics=metrics
        )

    @property
    def flush_on_commit(self) -> bool:
        assert self.wal is not None
        return self.wal.flush_on_commit

    def set_flush_on_commit(self, enabled: bool) -> None:
        """Toggle the per-commit disk flush (the paper's tuning knob)."""
        assert self.wal is not None
        self.wal.flush_on_commit = enabled
