"""ODBC-like connection layer (DB-API 2.0 flavoured).

The paper's server reaches its relational back end through
libiODBC/myodbc (Figure 2).  This module plays that role: engines register
under a data source name (DSN) and callers obtain :class:`Connection` /
:class:`Cursor` objects that speak parameterized SQL, without knowing the
back-end flavour.  The RLS server (:mod:`repro.core.lrc`) only ever talks
to this layer, so swapping MySQL for PostgreSQL is a DSN change — exactly
the portability property the paper calls out.
"""

from __future__ import annotations

import threading
from typing import Any, Sequence

from repro.db.engine import Database, ResultSet
from repro.db.errors import ConnectionClosedError, UnknownDSNError

_registry: dict[str, Database] = {}
_registry_lock = threading.Lock()


def register_dsn(dsn: str, database: Database) -> None:
    """Register ``database`` under ``dsn`` for :func:`connect`."""
    with _registry_lock:
        _registry[dsn] = database


def unregister_dsn(dsn: str) -> None:
    with _registry_lock:
        _registry.pop(dsn, None)


def registered_dsns() -> list[str]:
    with _registry_lock:
        return sorted(_registry)


def connect(dsn: str | Database) -> "Connection":
    """Open a connection to a registered DSN (or wrap an engine directly)."""
    if isinstance(dsn, Database):
        return Connection(dsn, dsn.name)
    with _registry_lock:
        database = _registry.get(dsn)
    if database is None:
        raise UnknownDSNError(dsn)
    return Connection(database, dsn)


class Connection:
    """One client connection to an engine.

    Autocommit semantics: every statement is its own transaction, matching
    how the RLS server drives ODBC.  ``commit()`` forces a WAL flush (a
    checkpoint) and is otherwise a no-op.
    """

    def __init__(self, database: Database, dsn: str) -> None:
        self._database = database
        self.dsn = dsn
        self._closed = False

    @property
    def database(self) -> Database:
        if self._closed:
            raise ConnectionClosedError("connection is closed")
        return self._database

    def cursor(self) -> "Cursor":
        return Cursor(self)

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Shorthand for ``cursor().execute(...)`` returning the result set."""
        return self.database.execute(sql, params)

    def commit(self) -> None:
        self.database.checkpoint()

    def transaction(self):
        """Group several statements under one commit durability barrier.

        With a flush-on-commit WAL, statements inside the context share a
        single sync at exit (how MySQL commits a multi-statement
        transaction); without a WAL this is a no-op context.
        """
        wal = self.database.wal
        if wal is None:
            import contextlib

            return contextlib.nullcontext()
        return wal.transaction()

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class Cursor:
    """DB-API-style cursor over a :class:`Connection`."""

    def __init__(self, connection: Connection) -> None:
        self._connection = connection
        self._result: ResultSet | None = None
        self._closed = False

    def execute(self, sql: str, params: Sequence[Any] = ()) -> "Cursor":
        if self._closed:
            raise ConnectionClosedError("cursor is closed")
        self._result = self._connection.database.execute(sql, params)
        return self

    def executemany(
        self, sql: str, seq_of_params: Sequence[Sequence[Any]]
    ) -> "Cursor":
        if self._closed:
            raise ConnectionClosedError("cursor is closed")
        total = 0
        last: ResultSet | None = None
        for params in seq_of_params:
            last = self._connection.database.execute(sql, params)
            total += last.rowcount
        if last is not None:
            self._result = ResultSet(last.columns, [], total, last.lastrowid)
        return self

    def fetchall(self) -> list[tuple]:
        if self._result is None:
            return []
        rows = self._result.rows
        self._result = ResultSet(self._result.columns, [], self._result.rowcount)
        return rows

    def fetchone(self) -> tuple | None:
        if self._result is None or not self._result.rows:
            return None
        row = self._result.rows[0]
        self._result = ResultSet(
            self._result.columns,
            self._result.rows[1:],
            self._result.rowcount,
            self._result.lastrowid,
        )
        return row

    @property
    def rowcount(self) -> int:
        return -1 if self._result is None else self._result.rowcount

    @property
    def lastrowid(self) -> int | None:
        return None if self._result is None else self._result.lastrowid

    @property
    def description(self) -> list[tuple] | None:
        if self._result is None or not self._result.columns:
            return None
        return [(name, None, None, None, None, None, None) for name in self._result.columns]

    def close(self) -> None:
        self._closed = True
        self._result = None

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
