"""PostgreSQL-flavoured engine.

What matters for the paper (§5.2, Figure 8):

* **MVCC dead tuples.**  ``DELETE`` only tombstones rows; heap slots and
  index entries linger.  Inserts and index lookups must skip the dead
  entries, so sustained add/delete churn degrades throughput steadily.
* **VACUUM.**  An explicit garbage-collection pass (SQL ``VACUUM`` or
  :meth:`PostgresEngine.vacuum`) reclaims dead tuples and restores the add
  rate to its maximum — producing the paper's sawtooth.
* **fsync.**  Like MySQL, per-commit fsync can be disabled; the paper runs
  its PostgreSQL trials with ``fsync()`` calls disabled.
* **Dead-entry cost.**  Real PostgreSQL pays a heap fetch for every dead
  index entry it must skip; this in-memory engine charges a modelled
  ``dead_hit_cost`` (default 50 µs) per skipped entry instead, which is
  what makes the Figure 8 decay visible at benchmark scale.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.db.engine import Database
from repro.db.wal import InMemoryLogDevice, LogDevice, WriteAheadLog
from repro.obs.metrics import MetricsRegistry


class PostgresEngine(Database):
    """Embedded stand-in for the PostgreSQL 7.2 back end in the paper."""

    flavor = "postgresql"

    def __init__(
        self,
        name: str = "postgres",
        fsync: bool = False,
        sync_latency: float = 0.011,
        flush_interval: float = 1.0,
        device: LogDevice | None = None,
        sleep: Callable[[float], None] = time.sleep,
        dead_hit_cost: float = 5e-5,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if device is None:
            device = InMemoryLogDevice(sync_latency=sync_latency, sleep=sleep)
        wal = WriteAheadLog(
            device=device,
            flush_on_commit=fsync,
            flush_interval=flush_interval,
            metrics=metrics,
        )
        super().__init__(
            name=name,
            wal=wal,
            eager_index_cleanup=False,
            dead_hit_cost=dead_hit_cost,
            metrics=metrics,
        )

    def vacuum(self, table: str | None = None) -> int:
        """Garbage-collect dead tuples; returns the number reclaimed.

        Mirrors PostgreSQL's ``VACUUM [table]`` — "time-consuming and may
        require exclusive access to the database" (§5.2): the per-table
        latch is held for the whole pass.
        """
        if table is not None:
            return self.table(table).vacuum()
        total = 0
        for name in self.table_names():
            total += self.table(name).vacuum()
        return total

    def dead_tuples(self) -> dict[str, int]:
        """Current dead-tuple count per table (diagnostics for tests)."""
        return {
            name: self.table(name).dead_tuple_count
            for name in self.table_names()
        }
