"""Query-level observability for the embedded database engine.

The telemetry layers (metrics, tracing) stop at the RPC/WAL boundary:
when ``lrc.query`` p95 spikes they cannot say whether the time went to an
index probe, a heap scan over dead tuples, WAL flushing, or latch
contention.  This module is the missing layer:

* :class:`QueryProfile` — one statement's execution record: chosen access
  path per operator, rows examined vs. returned, dead-index hits, and
  per-operator wall time on an injectable clock.  The SQL executor
  threads one through plan execution when asked (``EXPLAIN ANALYZE`` and
  the profiled engine path).
* :class:`QueryLog` — bounded tail retention of slow/error statements
  with their profiles, normalized statement text, and the enclosing RPC
  span context (same retention idea as
  :class:`~repro.obs.tracing.SpanSink`: decide at statement *end*, keep
  the slow and the broken, plus a small recent ring for context).
* :class:`QueryProfiler` — per-database container tying the two to the
  metrics registry (``db.statements{class=...}``,
  ``db.statement_latency{class=...}``, ``db.slow_statements``).
* :class:`TimedLatch` — a lock wrapper that observes *contended*
  acquisition waits into a histogram (``db.latch_wait{table=...}``,
  ``db.wal_lock_wait``) while keeping the uncontended fast path at one
  ``noop`` attribute check plus a non-blocking acquire.

Cost model: with profiling disabled (the default for bare engines) the
per-statement cost is one attribute check in ``Database.execute``; the
latch wrappers cost one ``noop`` check per acquisition.  Both are gated
by ``benchmarks/check_overhead.py``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from typing import Any, Callable

from repro.obs import reqctx
from repro.obs.metrics import (
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    MetricsRegistry,
)

#: Statements at or above this duration (seconds) are always retained.
DEFAULT_SLOW_QUERY_THRESHOLD = 0.050

#: Default capacity of the slow/error query-log ring.
DEFAULT_QUERY_LOG_CAPACITY = 256


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.3f}ms"


class OpStats:
    """One operator's actuals within a :class:`QueryProfile`.

    Executor stages mutate these in place (join operators accumulate
    across probe calls), so this is a plain mutable record, not a frozen
    dataclass.
    """

    __slots__ = (
        "name",
        "detail",
        "rows_examined",
        "rows_returned",
        "dead_hits",
        "elapsed",
    )

    def __init__(
        self,
        name: str,
        detail: str = "",
        rows_examined: int | None = None,
        rows_returned: int | None = None,
        dead_hits: int | None = None,
        elapsed: float | None = None,
    ) -> None:
        self.name = name
        self.detail = detail
        self.rows_examined = rows_examined
        self.rows_returned = rows_returned
        self.dead_hits = dead_hits
        self.elapsed = elapsed

    def render(self) -> str:
        """One EXPLAIN ANALYZE plan line, e.g.
        ``drive: hash index lookup t_lfn(name) (actual rows examined=3
        returned=3 dead_hits=0 time=0.041ms)``."""
        head = f"{self.name}: {self.detail}" if self.detail else self.name
        parts: list[str] = []
        if self.rows_examined is not None:
            parts.append(f"rows examined={self.rows_examined}")
        if self.rows_returned is not None:
            parts.append(f"returned={self.rows_returned}")
        if self.dead_hits is not None:
            parts.append(f"dead_hits={self.dead_hits}")
        if self.elapsed is not None:
            parts.append(f"time={_fmt_ms(self.elapsed)}")
        if not parts:
            return head
        return f"{head} (actual {' '.join(parts)})"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "detail": self.detail,
            "rows_examined": self.rows_examined,
            "rows_returned": self.rows_returned,
            "dead_hits": self.dead_hits,
            "elapsed": self.elapsed,
        }


class QueryProfile:
    """Per-statement execution record threaded through the executor.

    ``clock`` is injectable so tests (and the simulator) get
    deterministic per-operator timings.
    """

    __slots__ = ("clock", "ops", "duration", "rows_returned")

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.ops: list[OpStats] = []
        #: Total statement wall time; set by whoever drives execution.
        self.duration = 0.0
        #: Rows (or affected-row count) the statement produced.
        self.rows_returned = 0

    def add_op(
        self,
        name: str,
        detail: str = "",
        rows_examined: int | None = None,
        rows_returned: int | None = None,
        dead_hits: int | None = None,
        elapsed: float | None = None,
    ) -> OpStats:
        op = OpStats(name, detail, rows_examined, rows_returned, dead_hits, elapsed)
        self.ops.append(op)
        return op

    @property
    def rows_examined(self) -> int:
        """Rows fetched by access paths (drive + join probes)."""
        return sum(
            op.rows_examined or 0
            for op in self.ops
            if op.name in ("drive", "join")
        )

    @property
    def dead_index_hits(self) -> int:
        return sum(op.dead_hits or 0 for op in self.ops)

    def plan_lines(self) -> list[str]:
        """EXPLAIN ANALYZE output: one line per operator plus a total."""
        lines = [op.render() for op in self.ops]
        lines.append(
            f"total: {self.rows_returned} rows in {_fmt_ms(self.duration)}"
        )
        return lines

    def to_dict(self) -> list[dict[str, Any]]:
        return [op.to_dict() for op in self.ops]


def statement_class(stmt: Any) -> str:
    """Low-cardinality statement label: AST type plus target table.

    ``select:t_lfn``, ``insert:t_map``, ``vacuum`` — safe as a metric
    label because the statement *shape* set is small even when the SQL
    text is unique per call.
    """
    kind = type(stmt).__name__.lower()
    table = getattr(stmt, "table", None)
    if table is None:
        return kind
    name = getattr(table, "name", table)  # Select holds a TableRef
    if isinstance(name, str):
        return f"{kind}:{name}"
    return kind


_NORMALIZE_CACHE_CAP = 1024


def normalize_statement(sql: str) -> str:
    """Statement text with literals replaced by ``?`` placeholders.

    ``SELECT pfn FROM t WHERE lfn = 'x9'`` and ``... = 'x10'`` normalize
    to the same string, so the query log groups parameter-inlined SQL the
    way a DBA expects.  Unparseable text is returned stripped.
    """
    from repro.db.errors import SQLSyntaxError
    from repro.db.sql.lexer import EOF, NUMBER, PARAM, STRING, tokenize

    try:
        tokens = tokenize(sql)
    except SQLSyntaxError:
        return sql.strip()
    parts: list[str] = []
    for tok in tokens:
        if tok.kind == EOF:
            break
        if tok.kind in (STRING, NUMBER, PARAM):
            parts.append("?")
        else:
            parts.append(str(tok.value))
    return " ".join(parts)


class QueryLogEntry:
    """One retained statement with its profile and trace linkage."""

    __slots__ = (
        "seq",
        "sql",
        "statement_class",
        "duration",
        "rows_examined",
        "rows_returned",
        "dead_index_hits",
        "error",
        "trace_id",
        "span_id",
        "principal",
        "plan",
    )

    def __init__(
        self,
        seq: int,
        sql: str,
        statement_class: str,
        duration: float,
        rows_examined: int = 0,
        rows_returned: int = 0,
        dead_index_hits: int = 0,
        error: str | None = None,
        trace_id: str | None = None,
        span_id: str | None = None,
        principal: str | None = None,
        plan: list[dict[str, Any]] | None = None,
    ) -> None:
        self.seq = seq
        self.sql = sql
        self.statement_class = statement_class
        self.duration = duration
        self.rows_examined = rows_examined
        self.rows_returned = rows_returned
        self.dead_index_hits = dead_index_hits
        self.error = error
        self.trace_id = trace_id
        self.span_id = span_id
        #: Usage principal of the enclosing RPC (``rls slowlog`` shows
        #: who issued the statement); ``None`` outside any request.
        self.principal = principal
        self.plan = plan or []

    def to_dict(self) -> dict[str, Any]:
        """Wire-safe form (the ``admin_slow_queries`` RPC payload)."""
        return {
            "seq": self.seq,
            "sql": self.sql,
            "statement_class": self.statement_class,
            "duration": self.duration,
            "rows_examined": self.rows_examined,
            "rows_returned": self.rows_returned,
            "dead_index_hits": self.dead_index_hits,
            "error": self.error,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "principal": self.principal,
            "plan": list(self.plan),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QueryLogEntry":
        return cls(
            seq=data.get("seq", 0),
            sql=data.get("sql", ""),
            statement_class=data.get("statement_class", ""),
            duration=data.get("duration", 0.0),
            rows_examined=data.get("rows_examined", 0),
            rows_returned=data.get("rows_returned", 0),
            dead_index_hits=data.get("dead_index_hits", 0),
            error=data.get("error"),
            trace_id=data.get("trace_id"),
            span_id=data.get("span_id"),
            principal=data.get("principal"),
            plan=list(data.get("plan", [])),
        )


class QueryLog:
    """Bounded slow/error statement retention (tail-based, like SpanSink).

    * statements with an error, or ``duration >= slow_threshold``, go to
      the **interesting** ring (capacity ``capacity``);
    * every offered statement also lands in a smaller **recent** ring so
      a retained slow query has its surrounding traffic for context.

    Each ring evicts its own oldest entries, so fast-and-fine traffic
    can never push out a retained slow or failed statement.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_QUERY_LOG_CAPACITY,
        slow_threshold: float = DEFAULT_SLOW_QUERY_THRESHOLD,
        recent_capacity: int | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.slow_threshold = slow_threshold
        self.recent_capacity = (
            recent_capacity if recent_capacity is not None
            else max(16, capacity // 4)
        )
        self._lock = threading.Lock()
        self._interesting: "OrderedDict[int, QueryLogEntry]" = OrderedDict()
        self._recent: "OrderedDict[int, QueryLogEntry]" = OrderedDict()
        self.offered = 0
        self.retained = 0

    def interesting_reason(self, entry: QueryLogEntry) -> str | None:
        """Why this statement is tail-retained, or ``None``."""
        if entry.error is not None:
            return "error"
        if entry.duration >= self.slow_threshold:
            return "slow"
        return None

    def offer(self, entry: QueryLogEntry) -> None:
        """Consider one finished statement for retention."""
        reason = self.interesting_reason(entry)
        with self._lock:
            self.offered += 1
            self._recent[entry.seq] = entry
            while len(self._recent) > self.recent_capacity:
                self._recent.popitem(last=False)
            if reason is not None:
                self.retained += 1
                self._interesting[entry.seq] = entry
                while len(self._interesting) > self.capacity:
                    self._interesting.popitem(last=False)

    def interesting(self) -> list[QueryLogEntry]:
        """Tail-retained statements (errors and slow), oldest first."""
        with self._lock:
            return list(self._interesting.values())

    def recent(self) -> list[QueryLogEntry]:
        with self._lock:
            return list(self._recent.values())

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "offered": self.offered,
                "retained": self.retained,
                "interesting": len(self._interesting),
                "recent": len(self._recent),
                "capacity": self.capacity,
                "slow_threshold": self.slow_threshold,
            }

    def to_dict(self, limit: int | None = None) -> dict[str, Any]:
        """RPC payload: stats plus the retained statements (newest last)."""
        entries = self.interesting()
        if limit is not None and limit >= 0:
            entries = entries[-limit:]
        return {
            "stats": self.stats(),
            "queries": [entry.to_dict() for entry in entries],
        }

    def clear(self) -> None:
        with self._lock:
            self._interesting.clear()
            self._recent.clear()


class QueryProfiler:
    """Per-database profiling front end: config + log + metrics.

    Disabled by default (bare engines pay only the enabled-flag check);
    :class:`~repro.core.server.RLSServer` enables it from
    ``ServerConfig.profile_queries``.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        enabled: bool = False,
        slow_threshold: float = DEFAULT_SLOW_QUERY_THRESHOLD,
        capacity: int = DEFAULT_QUERY_LOG_CAPACITY,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.enabled = enabled
        self.clock = clock
        self.log = QueryLog(capacity=capacity, slow_threshold=slow_threshold)
        self._seq = itertools.count(1)
        self._m_slow = self.metrics.counter("db.slow_statements")
        # Per-class instruments and normalized text, cached so the
        # profiled hot path skips registry lookups and re-tokenizing.
        self._class_instruments: dict[str, tuple[Any, Any]] = {}
        self._norm_cache: dict[str, str] = {}

    @property
    def slow_threshold(self) -> float:
        return self.log.slow_threshold

    def configure(
        self,
        enabled: bool | None = None,
        slow_threshold: float | None = None,
        capacity: int | None = None,
    ) -> "QueryProfiler":
        if enabled is not None:
            self.enabled = enabled
        if slow_threshold is not None:
            self.log.slow_threshold = slow_threshold
        if capacity is not None and capacity != self.log.capacity:
            self.log = QueryLog(
                capacity=capacity, slow_threshold=self.log.slow_threshold
            )
        return self

    def _instruments(self, cls: str) -> tuple[Any, Any]:
        pair = self._class_instruments.get(cls)
        if pair is None:
            pair = (
                self.metrics.counter("db.statements", **{"class": cls}),
                self.metrics.histogram("db.statement_latency", **{"class": cls}),
            )
            self._class_instruments[cls] = pair
        return pair

    def _normalized(self, sql: str) -> str:
        text = self._norm_cache.get(sql)
        if text is None:
            text = normalize_statement(sql)
            if len(self._norm_cache) < _NORMALIZE_CACHE_CAP:
                self._norm_cache[sql] = text
        return text

    def record(
        self,
        sql: str,
        stmt: Any,
        profile: QueryProfile,
        duration: float,
        error: str | None = None,
        trace: tuple[str, str] | None = None,
    ) -> QueryLogEntry:
        """Account one finished statement: metrics plus log retention."""
        cls = statement_class(stmt)
        counter, latency = self._instruments(cls)
        counter.inc()
        latency.observe(duration)
        if error is None and duration >= self.log.slow_threshold:
            self._m_slow.inc()
        rows_examined = profile.rows_examined
        # Charge the enclosing request's cost context (profiled path
        # only — bare engines never reach here, so they pay nothing).
        costs = reqctx.current()
        if costs is not None:
            costs.rows_examined += rows_examined
            costs.db_time += duration
        entry = QueryLogEntry(
            seq=next(self._seq),
            sql=self._normalized(sql),
            statement_class=cls,
            duration=duration,
            rows_examined=rows_examined,
            rows_returned=profile.rows_returned,
            dead_index_hits=profile.dead_index_hits,
            error=error,
            trace_id=trace[0] if trace else None,
            span_id=trace[1] if trace else None,
            principal=costs.principal if costs is not None else None,
            plan=profile.to_dict(),
        )
        self.log.offer(entry)
        return entry


class TimedLatch:
    """Lock wrapper observing *contended* acquisition waits.

    The fast path tries a non-blocking acquire first (correct for RLocks
    too: re-entrant acquisition by the holder never blocks), so only
    genuine contention pays the ``perf_counter`` pair and histogram
    observe.  With a no-op histogram the wrapper costs one attribute
    check per acquisition — the budget ``check_overhead`` gates.
    """

    __slots__ = ("_lock", "hist", "_clock")

    def __init__(
        self,
        hist: Any = None,
        reentrant: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._lock = threading.RLock() if reentrant else threading.Lock()
        self.hist = hist if hist is not None else NULL_HISTOGRAM
        self._clock = clock

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if self.hist.noop or not blocking:
            return self._lock.acquire(blocking, timeout)
        if self._lock.acquire(False):
            return True
        start = self._clock()
        acquired = self._lock.acquire(True, timeout)
        self.hist.observe(self._clock() - start)
        return acquired

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "TimedLatch":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._lock.release()
        return False
