"""Table schemas: column declarations and constraints."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.db.errors import IntegrityError, NoSuchColumnError, TypeMismatchError
from repro.db.types import ColumnType


@dataclass(frozen=True)
class Column:
    """One column declaration.

    Attributes
    ----------
    name:
        Column name (case-preserved; lookups are case-insensitive, as in
        MySQL's default collation).
    ctype:
        The :class:`~repro.db.types.ColumnType` used to coerce values.
    nullable:
        Whether SQL NULL is allowed.
    autoincrement:
        If true, INSERTs may omit the column and the table assigns the next
        integer.  Mirrors the ``id int(11)`` surrogate keys in Figure 3.
    """

    name: str
    ctype: ColumnType
    nullable: bool = True
    autoincrement: bool = False


@dataclass
class TableSchema:
    """Schema for one table: ordered columns plus key constraints.

    ``primary_key`` and each entry of ``unique`` are column-name tuples;
    multi-column keys are supported because the RLS mapping tables
    (``t_map``) key on ``(lfn_id, pfn_id)``.
    """

    name: str
    columns: Sequence[Column]
    primary_key: tuple[str, ...] = ()
    unique: Sequence[tuple[str, ...]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.columns = list(self.columns)
        seen: set[str] = set()
        for col in self.columns:
            low = col.name.lower()
            if low in seen:
                raise IntegrityError(
                    f"duplicate column {col.name!r} in table {self.name!r}"
                )
            seen.add(low)
        self._by_name = {c.name.lower(): i for i, c in enumerate(self.columns)}
        for key in (self.primary_key, *self.unique):
            for colname in key:
                if colname.lower() not in self._by_name:
                    raise NoSuchColumnError(self.name, colname)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        """Ordinal position of ``name`` (case-insensitive)."""
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise NoSuchColumnError(self.name, name) from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    def key_constraints(self) -> list[tuple[str, ...]]:
        """All uniqueness constraints, primary key first."""
        keys: list[tuple[str, ...]] = []
        if self.primary_key:
            keys.append(tuple(self.primary_key))
        keys.extend(tuple(u) for u in self.unique)
        return keys

    def coerce_row(self, values: dict[str, Any]) -> list[Any]:
        """Validate a column→value mapping into an ordered row list.

        Missing nullable columns become NULL; missing autoincrement columns
        are left as ``None`` for the table to fill in.  Unknown columns and
        NOT NULL violations raise.
        """
        remaining = {k.lower(): v for k, v in values.items()}
        row: list[Any] = []
        for col in self.columns:
            low = col.name.lower()
            if low in remaining:
                value = remaining.pop(low)
                if value is None:
                    if not col.nullable and not col.autoincrement:
                        raise IntegrityError(
                            f"column {col.name!r} of {self.name!r} is NOT NULL"
                        )
                    row.append(None)
                else:
                    try:
                        row.append(col.ctype.coerce(value))
                    except TypeMismatchError as exc:
                        raise TypeMismatchError(
                            f"{self.name}.{col.name}: {exc}"
                        ) from None
            else:
                if col.autoincrement:
                    row.append(None)
                elif col.nullable:
                    row.append(None)
                else:
                    raise IntegrityError(
                        f"column {col.name!r} of {self.name!r} is NOT NULL "
                        "and has no default"
                    )
        if remaining:
            unknown = sorted(remaining)
            raise NoSuchColumnError(self.name, unknown[0])
        return row
