"""Mini-SQL dialect: lexer, parser, and executor.

The dialect covers exactly what the RLS server and the paper's "native
MySQL" baseline need: CREATE TABLE / CREATE INDEX, INSERT (multi-row),
SELECT with inner joins / WHERE / LIKE / IN / ORDER BY / LIMIT / COUNT(*),
UPDATE, DELETE, and VACUUM.  ``?`` placeholders bind positional parameters,
and parsed statements are cached by the engine so repeated prepared-style
execution skips the parser (the RLS issues a small fixed statement set at
very high rates).
"""

from repro.db.sql.parser import parse

__all__ = ["parse"]
