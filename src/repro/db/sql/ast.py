"""AST node definitions for the mini-SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    value: Any


@dataclass(frozen=True)
class Param:
    """A ``?`` placeholder; ``index`` is its zero-based position."""

    index: int


@dataclass(frozen=True)
class ColumnRef:
    """``name`` or ``qualifier.name`` (qualifier is a table name or alias)."""

    qualifier: str | None
    name: str


@dataclass(frozen=True)
class Comparison:
    """Binary comparison: op in {=, !=, <, <=, >, >=, LIKE, NOT LIKE}."""

    op: str
    left: Any
    right: Any


@dataclass(frozen=True)
class InList:
    expr: Any
    items: tuple[Any, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNull:
    expr: Any
    negated: bool = False


@dataclass(frozen=True)
class And:
    left: Any
    right: Any


@dataclass(frozen=True)
class Or:
    left: Any
    right: Any


@dataclass(frozen=True)
class Not:
    operand: Any


@dataclass(frozen=True)
class CountStar:
    """``COUNT(*)`` — the only aggregate the RLS needs."""


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return (self.alias or self.name).lower()


@dataclass(frozen=True)
class Join:
    table: TableRef
    on: Any  # expression


@dataclass(frozen=True)
class OrderItem:
    expr: Any
    descending: bool = False


@dataclass(frozen=True)
class SelectItem:
    expr: Any
    alias: str | None = None


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]  # empty tuple means SELECT *
    table: TableRef
    joins: tuple[Join, ...] = ()
    where: Any = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]  # each cell is an expression


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Any], ...]
    where: Any = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Any = None


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    type_arg: int | None
    not_null: bool = False
    autoincrement: bool = False


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: tuple[str, ...] = ()
    unique: tuple[tuple[str, ...], ...] = ()


@dataclass(frozen=True)
class CreateIndex:
    name: str
    table: str
    columns: tuple[str, ...]
    using: str = "HASH"  # HASH or BTREE


@dataclass(frozen=True)
class DropTable:
    name: str


@dataclass(frozen=True)
class Vacuum:
    table: str | None = None  # None means all tables


@dataclass(frozen=True)
class Explain:
    """``EXPLAIN [ANALYZE] <select|update|delete>``.

    Plain EXPLAIN describes the access plan without executing; with
    ``analyze`` the statement actually runs (PostgreSQL semantics) and
    the plan reports actual rows, dead-index hits and operator timings.
    """

    statement: Any
    analyze: bool = False


Statement = (
    Select | Insert | Update | Delete | CreateTable | CreateIndex | DropTable | Vacuum
)
