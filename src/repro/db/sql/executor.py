"""Planner + executor for parsed SQL statements.

The executor does simple but effective access-path selection:

* single-table equality predicates on indexed columns use hash-index
  lookups (the hot path for every RLS operation);
* ``LIKE 'prefix%'`` predicates use an ordered-index prefix scan when one
  exists (RLS wildcard queries);
* ``IN (...)`` lists over a hash-indexed column probe the index once per
  distinct key (RLS bulk queries);
* joins run as nested loops, probing the inner table through a hash index
  on the join key when available (the LFN→map→PFN three-way join).

Everything else falls back to a scan + filter, which is fine for the small
administrative tables (``t_rli``, ``t_rlipartition``).

Every DML path optionally threads a
:class:`~repro.db.profiler.QueryProfile` through execution, recording the
chosen access path, rows examined vs. returned, dead-index hits and
per-operator wall time — the data behind ``EXPLAIN ANALYZE`` and the
slow-query log.  With no profile the extra cost is a handful of
``is None`` checks.
"""

from __future__ import annotations

import re
import time
from typing import Any, Iterable

from repro.db.errors import (
    DBError,
    NoSuchColumnError,
    SQLSyntaxError,
)
from repro.db.profiler import QueryProfile
from repro.db.schema import Column, TableSchema
from repro.db.sql import ast
from repro.db.table import Table
from repro.db.types import type_from_sql


class _SelectProf:
    """Per-SELECT profiling state shared across the join recursion."""

    __slots__ = ("profile", "join_ops", "filter_op")

    def __init__(self, profile: QueryProfile) -> None:
        self.profile = profile
        self.join_ops: dict[str, Any] = {}
        self.filter_op: Any = None


class Executor:
    """Executes parsed statements against a :class:`~repro.db.engine.Database`."""

    def __init__(self, database: Any) -> None:
        self.db = database

    # ------------------------------------------------------------------

    def execute(
        self,
        stmt: ast.Statement,
        params: list[Any],
        profile: QueryProfile | None = None,
    ) -> Any:
        from repro.db.engine import ResultSet

        if isinstance(stmt, ast.Select):
            cols, rows = self._select(stmt, params, profile)
            return ResultSet(cols, rows, len(rows))
        if isinstance(stmt, ast.Insert):
            count, lastrowid = self._insert(stmt, params, profile)
            return ResultSet([], [], count, lastrowid)
        if isinstance(stmt, ast.Update):
            return ResultSet([], [], self._update(stmt, params, profile))
        if isinstance(stmt, ast.Delete):
            return ResultSet([], [], self._delete(stmt, params, profile))
        if isinstance(stmt, ast.CreateTable):
            self._create_table(stmt)
            return ResultSet([], [], 0)
        if isinstance(stmt, ast.CreateIndex):
            self._create_index(stmt)
            return ResultSet([], [], 0)
        if isinstance(stmt, ast.DropTable):
            self.db.drop_table(stmt.name)
            return ResultSet([], [], 0)
        if isinstance(stmt, ast.Vacuum):
            return ResultSet([], [], self._vacuum(stmt))
        if isinstance(stmt, ast.Explain):
            if stmt.analyze:
                lines = self._explain_analyze(stmt.statement, params)
            else:
                lines = self._explain(stmt.statement, params)
            rows = [(line,) for line in lines]
            return ResultSet(["plan"], rows, len(rows))
        raise DBError(f"unsupported statement type: {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def _create_table(self, stmt: ast.CreateTable) -> None:
        columns = [
            Column(
                name=c.name,
                ctype=type_from_sql(c.type_name, c.type_arg),
                nullable=not c.not_null,
                autoincrement=c.autoincrement,
            )
            for c in stmt.columns
        ]
        schema = TableSchema(
            name=stmt.name,
            columns=columns,
            primary_key=stmt.primary_key,
            unique=list(stmt.unique),
        )
        self.db.create_table(schema)

    def _create_index(self, stmt: ast.CreateIndex) -> None:
        table = self.db.table(stmt.table)
        if stmt.using == "BTREE":
            if len(stmt.columns) != 1:
                raise SQLSyntaxError("BTREE indexes cover exactly one column")
            table.create_ordered_index(stmt.name, stmt.columns[0])
        else:
            table.create_hash_index(stmt.name, list(stmt.columns))

    def _vacuum(self, stmt: ast.Vacuum) -> int:
        if stmt.table is not None:
            return self.db.table(stmt.table).vacuum()
        total = 0
        for name in self.db.table_names():
            total += self.db.table(name).vacuum()
        return total

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _insert(
        self,
        stmt: ast.Insert,
        params: list[Any],
        profile: QueryProfile | None = None,
    ) -> tuple[int, int | None]:
        lastrowid: int | None = None
        table = self.db.table(stmt.table)
        autoinc_pos = next(
            (
                i
                for i, c in enumerate(table.schema.columns)
                if c.autoincrement
            ),
            None,
        )
        start = profile.clock() if profile is not None else 0.0
        count = 0
        for row_exprs in stmt.rows:
            values = {
                col: _eval_const(expr, params)
                for col, expr in zip(stmt.columns, row_exprs)
            }
            _rid, row = self.db.insert_row(stmt.table, values)
            if autoinc_pos is not None:
                lastrowid = row[autoinc_pos]
            count += 1
        if profile is not None:
            profile.add_op(
                "insert",
                table.schema.name,
                rows_returned=count,
                elapsed=profile.clock() - start,
            )
        return count, lastrowid

    def _update(
        self,
        stmt: ast.Update,
        params: list[Any],
        profile: QueryProfile | None = None,
    ) -> int:
        table = self.db.table(stmt.table)
        matches = self._single_table_matches(table, stmt.where, params, profile)
        changes_exprs = stmt.assignments
        start = profile.clock() if profile is not None else 0.0
        count = 0
        for rid, _row in matches:
            changes = {
                col: _eval_const(expr, params) for col, expr in changes_exprs
            }
            self.db.update_row(stmt.table, rid, changes)
            count += 1
        if profile is not None:
            profile.add_op(
                "update",
                table.schema.name,
                rows_returned=count,
                elapsed=profile.clock() - start,
            )
        return count

    def _delete(
        self,
        stmt: ast.Delete,
        params: list[Any],
        profile: QueryProfile | None = None,
    ) -> int:
        table = self.db.table(stmt.table)
        matches = self._single_table_matches(table, stmt.where, params, profile)
        start = profile.clock() if profile is not None else 0.0
        count = 0
        for rid, _row in matches:
            self.db.delete_row(stmt.table, rid)
            count += 1
        if profile is not None:
            profile.add_op(
                "delete",
                table.schema.name,
                rows_returned=count,
                elapsed=profile.clock() - start,
            )
        return count

    def _single_table_matches(
        self,
        table: Table,
        where: Any,
        params: list[Any],
        profile: QueryProfile | None = None,
    ) -> list[tuple[int, list[Any]]]:
        """Candidate (rid, row) pairs for UPDATE/DELETE, index-accelerated."""
        binding = table.schema.name.lower()
        candidates, residual, _plan = self._access_path(
            table, binding, where, params, profile
        )
        if residual is None:
            return list(candidates)
        filter_op = None
        if profile is not None:
            filter_op = profile.add_op(
                "filter",
                "residual WHERE re-checked per row",
                rows_examined=0,
                rows_returned=0,
            )
        env = _Env({binding: table.schema})
        out = []
        for rid, row in candidates:
            if filter_op is not None:
                filter_op.rows_examined += 1
            env.set_row(binding, row)
            if _truthy(_eval(residual, env, params)):
                if filter_op is not None:
                    filter_op.rows_returned += 1
                out.append((rid, row))
        return out

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def _select(
        self,
        stmt: ast.Select,
        params: list[Any],
        profile: QueryProfile | None = None,
    ) -> tuple[list[str], list[tuple]]:
        base_table = self.db.table(stmt.table.name)
        bindings: dict[str, TableSchema] = {stmt.table.binding: base_table.schema}
        join_tables: list[tuple[str, Table, Any]] = []
        for join in stmt.joins:
            jt = self.db.table(join.table.name)
            if join.table.binding in bindings:
                raise SQLSyntaxError(
                    f"duplicate table binding {join.table.binding!r}"
                )
            bindings[join.table.binding] = jt.schema
            join_tables.append((join.table.binding, jt, join.on))
        env = _Env(bindings)

        # Split WHERE into conjuncts usable by the driving table vs. residual.
        candidates, residual, _plan = self._access_path(
            base_table, stmt.table.binding, stmt.where, params, profile
        )

        prof: _SelectProf | None = None
        if profile is not None:
            prof = _SelectProf(profile)
            for binding, jt, on in join_tables:
                probe = self._join_probe_text(jt, binding, on)
                prof.join_ops[binding] = profile.add_op(
                    "join",
                    f"{jt.schema.name} via {probe}",
                    rows_examined=0,
                    rows_returned=0,
                    dead_hits=0,
                    elapsed=0.0,
                )
            if residual is not None:
                prof.filter_op = profile.add_op(
                    "filter",
                    "residual WHERE re-checked per row",
                    rows_examined=0,
                    rows_returned=0,
                )

        # Materialize result rows (list of env snapshots).
        rows_env: list[dict[str, list[Any]]] = []
        self._join_rec(
            env,
            stmt.table.binding,
            candidates,
            join_tables,
            0,
            residual,
            params,
            rows_env,
            prof,
        )

        # Projection
        count_star = (
            len(stmt.items) == 1 and isinstance(stmt.items[0].expr, ast.CountStar)
        )
        if count_star:
            name = stmt.items[0].alias or "count"
            return [name], [(len(rows_env),)]

        if stmt.items:
            col_names = []
            for item in stmt.items:
                if item.alias:
                    col_names.append(item.alias)
                elif isinstance(item.expr, ast.ColumnRef):
                    col_names.append(item.expr.name)
                else:
                    col_names.append("expr")
            projected = []
            for row_map in rows_env:
                env.rows = row_map
                projected.append(
                    tuple(_eval(item.expr, env, params) for item in stmt.items)
                )
        else:  # SELECT *
            col_names = []
            for binding, schema in bindings.items():
                for c in schema.columns:
                    col_names.append(
                        c.name if len(bindings) == 1 else f"{binding}.{c.name}"
                    )
            projected = []
            for row_map in rows_env:
                flat: list[Any] = []
                for binding in bindings:
                    flat.extend(row_map[binding])
                projected.append(tuple(flat))

        if stmt.distinct:
            seen: set[tuple] = set()
            unique_rows = []
            for row in projected:
                if row not in seen:
                    seen.add(row)
                    unique_rows.append(row)
            projected = unique_rows

        if stmt.order_by:
            for item in stmt.order_by:
                if not isinstance(item.expr, ast.ColumnRef):
                    raise SQLSyntaxError("ORDER BY supports columns only")
            sort_start = profile.clock() if profile is not None else 0.0
            projected = self._apply_order_by(
                stmt, projected, col_names, rows_env, env, params
            )
            if profile is not None:
                cols = ", ".join(
                    item.expr.name for item in stmt.order_by
                    if isinstance(item.expr, ast.ColumnRef)
                )
                profile.add_op(
                    "sort",
                    cols,
                    rows_returned=len(projected),
                    elapsed=profile.clock() - sort_start,
                )

        if stmt.limit is not None:
            before = len(projected)
            projected = projected[: stmt.limit]
            if profile is not None:
                profile.add_op(
                    "limit",
                    str(stmt.limit),
                    rows_examined=before,
                    rows_returned=len(projected),
                )

        return col_names, projected

    def _apply_order_by(
        self,
        stmt: ast.Select,
        projected: list[tuple],
        col_names: list[str],
        rows_env: list[dict[str, list[Any]]],
        env: "_Env",
        params: list[Any],
    ) -> list[tuple]:
        """Stable multi-key sort; ORDER BY may reference output columns or
        any source-table column (evaluated per row), with NULLs last."""
        # Fast path: every key is a projected output column.
        if all(
            item.expr.name in col_names for item in stmt.order_by
        ):
            for item in reversed(stmt.order_by):
                idx = col_names.index(item.expr.name)
                projected.sort(
                    key=lambda r, i=idx: (r[i] is None, r[i]),
                    reverse=item.descending,
                )
            return projected
        # Source-column path: needs row context, incompatible with DISTINCT
        # (row identity is lost after de-duplication).
        if stmt.distinct:
            raise SQLSyntaxError(
                "ORDER BY on non-projected columns requires them in SELECT "
                "when DISTINCT is used"
            )
        if len(projected) != len(rows_env):
            raise NoSuchColumnError("<select>", stmt.order_by[0].expr.name)
        keyed = list(zip(projected, rows_env))
        for item in reversed(stmt.order_by):
            expr = item.expr

            def sort_key(pair, expr=expr):
                env.rows = pair[1]
                value = _eval(expr, env, params)
                return (value is None, value)

            keyed.sort(key=sort_key, reverse=item.descending)
        return [row for row, _ in keyed]

    def _join_rec(
        self,
        env: "_Env",
        base_binding: str,
        base_rows: Iterable[tuple[int, list[Any]]],
        joins: list[tuple[str, Table, Any]],
        depth: int,
        residual: Any,
        params: list[Any],
        out: list[dict[str, list[Any]]],
        prof: _SelectProf | None = None,
    ) -> None:
        """Depth-first nested-loop join, index-probing each inner table."""
        if depth == 0:
            for _rid, row in base_rows:
                env.rows = {base_binding: row}
                self._join_rec(
                    env, base_binding, (), joins, 1, residual, params, out, prof
                )
            return
        if depth - 1 < len(joins):
            binding, table, on = joins[depth - 1]
            if prof is None:
                probe: Iterable[tuple[int, list[Any]]] = self._probe_rows(
                    table, binding, on, env, params
                )
            else:
                op = prof.join_ops[binding]
                probe_start = prof.profile.clock()
                dead_before = table.stats.dead_index_hits
                probe = list(self._probe_rows(table, binding, on, env, params))
                op.elapsed += prof.profile.clock() - probe_start
                op.dead_hits += table.stats.dead_index_hits - dead_before
                op.rows_examined += len(probe)
            for _rid, row in probe:
                env.rows[binding] = row
                if _truthy(_eval(on, env, params)):
                    if prof is not None:
                        prof.join_ops[binding].rows_returned += 1
                    self._join_rec(
                        env, base_binding, (), joins, depth + 1, residual,
                        params, out, prof
                    )
            env.rows.pop(binding, None)
            return
        # All joins satisfied: apply residual predicate and emit.
        if prof is not None and prof.filter_op is not None:
            prof.filter_op.rows_examined += 1
        if residual is None or _truthy(_eval(residual, env, params)):
            if prof is not None and prof.filter_op is not None:
                prof.filter_op.rows_returned += 1
            out.append(dict(env.rows))

    def _probe_rows(
        self,
        table: Table,
        binding: str,
        on: Any,
        env: "_Env",
        params: list[Any],
    ) -> Iterable[tuple[int, list[Any]]]:
        """Rows of the inner join table, via hash index when ON allows it."""
        for left, right in _equality_pairs(on):
            inner_col, outer_expr = None, None
            if (
                isinstance(left, ast.ColumnRef)
                and (left.qualifier or "").lower() == binding
            ):
                inner_col, outer_expr = left.name, right
            elif (
                isinstance(right, ast.ColumnRef)
                and (right.qualifier or "").lower() == binding
            ):
                inner_col, outer_expr = right.name, left
            if inner_col is None:
                continue
            try:
                value = _eval(outer_expr, env, params)
            except NoSuchColumnError:
                continue
            return table.lookup_equal((inner_col,), (value,))
        return table.scan()

    # ------------------------------------------------------------------
    # EXPLAIN
    # ------------------------------------------------------------------

    def _join_probe_text(self, jt: Table, binding: str, on: Any) -> str:
        """How the nested loop reaches ``jt``: hash probe or full scan."""
        for left, right in _equality_pairs(on):
            for col_expr in (left, right):
                if (
                    isinstance(col_expr, ast.ColumnRef)
                    and (col_expr.qualifier or "").lower() == binding
                    and jt.find_hash_index((col_expr.name,)) is not None
                ):
                    return f"hash probe on {col_expr.name}"
        return "full scan"

    def _explain(self, stmt: ast.Statement, params: list[Any]) -> list[str]:
        """Human-readable access plan (one line per step)."""
        if isinstance(stmt, (ast.Update, ast.Delete)):
            table = self.db.table(stmt.table)
            binding = table.schema.name.lower()
            _c, _r, plan = self._access_path(table, binding, stmt.where, params)
            verb = "update" if isinstance(stmt, ast.Update) else "delete"
            return [f"{verb} via {plan}"]
        assert isinstance(stmt, ast.Select)
        base_table = self.db.table(stmt.table.name)
        _c, _r, plan = self._access_path(
            base_table, stmt.table.binding, stmt.where, params
        )
        lines = [f"drive: {plan}"]
        for join in stmt.joins:
            jt = self.db.table(join.table.name)
            probe = self._join_probe_text(jt, join.table.binding, join.on)
            lines.append(f"join: {jt.schema.name} via {probe}")
        if stmt.where is not None:
            lines.append("filter: residual WHERE re-checked per row")
        if stmt.order_by:
            cols = ", ".join(
                item.expr.name for item in stmt.order_by
                if isinstance(item.expr, ast.ColumnRef)
            )
            lines.append(f"sort: {cols}")
        if stmt.limit is not None:
            lines.append(f"limit: {stmt.limit}")
        return lines

    def _explain_analyze(
        self, stmt: ast.Statement, params: list[Any]
    ) -> list[str]:
        """Execute the statement for real, reporting per-operator actuals.

        PostgreSQL semantics: ``EXPLAIN ANALYZE UPDATE/DELETE`` performs
        the mutation.  Timings come from the profiler's injectable clock
        so tests are deterministic.
        """
        profiler = getattr(self.db, "profiler", None)
        clock = profiler.clock if profiler is not None else time.perf_counter
        profile = QueryProfile(clock=clock)
        start = clock()
        result = self.execute(stmt, params, profile)
        profile.duration = clock() - start
        profile.rows_returned = (
            len(result.rows) if isinstance(stmt, ast.Select) else result.rowcount
        )
        return profile.plan_lines()

    # ------------------------------------------------------------------
    # Access-path selection for the driving table
    # ------------------------------------------------------------------

    def _access_path(
        self,
        table: Table,
        binding: str,
        where: Any,
        params: list[Any],
        profile: QueryProfile | None = None,
    ) -> tuple[Iterable[tuple[int, list[Any]]], Any, str]:
        """Return (candidate rows, residual predicate or None, plan text).

        With a profile, candidates are materialized and a ``drive``
        operator records rows fetched, the dead-index-hit delta, and the
        access-path wall time.
        """
        name = table.schema.name
        start = profile.clock() if profile is not None else 0.0
        dead_before = table.stats.dead_index_hits if profile is not None else 0

        if where is None:
            candidates: Iterable[tuple[int, list[Any]]] | None = table.scan()
            residual: Any = None
            description = f"full scan {name}"
        else:
            residual = where
            conjuncts = list(_flatten_and(where))
            candidates = None
            description = f"full scan {name} + filter"

            # 1) Equality on an indexed column set.
            eq_cols: list[str] = []
            eq_vals: list[Any] = []
            for conj in conjuncts:
                col, val_expr = _local_equality(conj, binding, table.schema)
                if col is not None:
                    eq_cols.append(col)
                    eq_vals.append(_eval_const(val_expr, params))
            if eq_cols:
                # Try the widest covered index first, then single columns.
                for cols_tuple in _index_candidates(eq_cols):
                    idx = table.find_hash_index(cols_tuple)
                    if idx is not None:
                        key = tuple(
                            eq_vals[eq_cols.index(c)] for c in cols_tuple
                        )
                        candidates = table.lookup_equal(cols_tuple, key)
                        description = (
                            f"hash index lookup {name}({', '.join(cols_tuple)})"
                        )
                        break

            # 2) IN-list over a hash-indexed column: one probe per key.
            if candidates is None:
                for conj in conjuncts:
                    in_list = _local_in_list(conj, binding, table.schema)
                    if in_list is not None:
                        colname, item_exprs = in_list
                        if table.find_hash_index((colname,)) is not None:
                            keys = list(dict.fromkeys(
                                _eval_const(item, params)
                                for item in item_exprs
                            ))
                            probed: list[tuple[int, list[Any]]] = []
                            for key_value in keys:
                                probed.extend(
                                    table.lookup_equal(
                                        (colname,), (key_value,)
                                    )
                                )
                            candidates = probed
                            description = (
                                f"hash index IN probe {name}({colname}) "
                                f"[{len(keys)} keys]"
                            )
                            break

            # 3) LIKE prefix on an ordered-indexed column.
            if candidates is None:
                for conj in conjuncts:
                    like = _local_like_prefix(
                        conj, binding, table.schema, params
                    )
                    if like is not None:
                        colname, prefix = like
                        if table.find_ordered_index(colname) is not None:
                            candidates = table.prefix_lookup(colname, prefix)
                            description = (
                                f"ordered index prefix scan {name}({colname}) "
                                f"prefix={prefix!r}"
                            )
                            break

            if candidates is None:
                candidates = table.scan()
            # Keep the full WHERE as residual — re-checking the indexed
            # conjunct is cheap and avoids subtle partial-predicate bugs.

        if profile is not None:
            candidates = list(candidates)
            profile.add_op(
                "drive",
                description,
                rows_examined=len(candidates),
                rows_returned=len(candidates),
                dead_hits=table.stats.dead_index_hits - dead_before,
                elapsed=profile.clock() - start,
            )
        return candidates, residual, description


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------


_MISSING = object()


class _Env:
    """Binds table aliases to the current row during evaluation."""

    __slots__ = ("schemas", "rows", "_resolve_cache", "_in_sets")

    def __init__(self, schemas: dict[str, TableSchema]) -> None:
        self.schemas = schemas
        self.rows: dict[str, list[Any]] | None = None
        self._resolve_cache: dict[tuple[str | None, str], tuple[str, int]] = {}
        self._in_sets: dict[int, frozenset | None] = {}

    def in_probe(self, expr: "ast.InList", params: list[Any]) -> frozenset | None:
        """Constant-time membership set for an IN list, built once per query.

        An ``_Env`` lives for exactly one statement execution with fixed
        params, so the item values cannot change under the cache.  Returns
        ``None`` when any item is non-constant or unhashable, in which case
        the caller falls back to the row-at-a-time scan.
        """
        key = id(expr)
        probe = self._in_sets.get(key, _MISSING)
        if probe is not _MISSING:
            return probe
        try:
            built: frozenset | None = frozenset(
                _eval_const(item, params) for item in expr.items
            )
        except (SQLSyntaxError, TypeError):
            built = None
        self._in_sets[key] = built
        return built

    def set_row(self, binding: str, row: list[Any]) -> None:
        self.rows = {binding: row}

    def resolve(self, qualifier: str | None, name: str) -> tuple[str, int]:
        key = (qualifier, name)
        hit = self._resolve_cache.get(key)
        if hit is not None:
            return hit
        if qualifier is not None:
            binding = qualifier.lower()
            schema = self.schemas.get(binding)
            if schema is None:
                raise NoSuchColumnError(qualifier, name)
            result = (binding, schema.column_index(name))
        else:
            matches = [
                (b, s.column_index(name))
                for b, s in self.schemas.items()
                if s.has_column(name)
            ]
            if not matches:
                raise NoSuchColumnError("<any>", name)
            if len(matches) > 1:
                raise SQLSyntaxError(f"ambiguous column name: {name!r}")
            result = matches[0]
        self._resolve_cache[key] = result
        return result


def _eval(expr: Any, env: _Env, params: list[Any]) -> Any:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Param):
        return params[expr.index]
    if isinstance(expr, ast.ColumnRef):
        binding, pos = env.resolve(expr.qualifier, expr.name)
        assert env.rows is not None
        return env.rows[binding][pos]
    if isinstance(expr, ast.Comparison):
        left = _eval(expr.left, env, params)
        right = _eval(expr.right, env, params)
        return _compare(expr.op, left, right)
    if isinstance(expr, ast.And):
        return _truthy(_eval(expr.left, env, params)) and _truthy(
            _eval(expr.right, env, params)
        )
    if isinstance(expr, ast.Or):
        return _truthy(_eval(expr.left, env, params)) or _truthy(
            _eval(expr.right, env, params)
        )
    if isinstance(expr, ast.Not):
        return not _truthy(_eval(expr.operand, env, params))
    if isinstance(expr, ast.InList):
        value = _eval(expr.expr, env, params)
        probe = env.in_probe(expr, params)
        if probe is not None:
            try:
                found = value in probe
            except TypeError:
                found = any(
                    value == _eval(item, env, params) for item in expr.items
                )
        else:
            found = any(value == _eval(item, env, params) for item in expr.items)
        return found != expr.negated
    if isinstance(expr, ast.IsNull):
        value = _eval(expr.expr, env, params)
        return (value is None) != expr.negated
    raise DBError(f"cannot evaluate expression: {expr!r}")


def _eval_const(expr: Any, params: list[Any]) -> Any:
    """Evaluate an expression with no row context (INSERT values, SET)."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Param):
        return params[expr.index]
    raise SQLSyntaxError("expected a literal or parameter")


def _compare(op: str, left: Any, right: Any) -> bool:
    if op in ("LIKE", "NOT LIKE"):
        if left is None or right is None:
            return False
        matched = like_to_regex(str(right)).fullmatch(str(left)) is not None
        return matched if op == "LIKE" else not matched
    if left is None or right is None:
        # SQL tri-state logic collapsed: NULL comparisons are false except !=.
        if op == "=":
            return False
        if op == "!=":
            return not (left is None and right is None)
        return False
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise DBError(f"unknown comparison operator {op!r}")


def _truthy(value: Any) -> bool:
    return bool(value)


_LIKE_CACHE: dict[str, re.Pattern[str]] = {}


def like_to_regex(pattern: str) -> re.Pattern[str]:
    """Compile a SQL LIKE pattern (``%``/``_`` wildcards) to a regex."""
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts: list[str] = []
        for ch in pattern:
            if ch == "%":
                parts.append(".*")
            elif ch == "_":
                parts.append(".")
            else:
                parts.append(re.escape(ch))
        compiled = re.compile("".join(parts), re.DOTALL)
        if len(_LIKE_CACHE) < 4096:
            _LIKE_CACHE[pattern] = compiled
    return compiled


def like_prefix(pattern: str) -> str:
    """Literal prefix of a LIKE pattern before the first wildcard."""
    for i, ch in enumerate(pattern):
        if ch in "%_":
            return pattern[:i]
    return pattern


# ---------------------------------------------------------------------------
# Predicate analysis helpers
# ---------------------------------------------------------------------------


def _flatten_and(expr: Any):
    if isinstance(expr, ast.And):
        yield from _flatten_and(expr.left)
        yield from _flatten_and(expr.right)
    else:
        yield expr


def _equality_pairs(expr: Any):
    """Yield (left, right) operand pairs of top-level `=` comparisons."""
    for conj in _flatten_and(expr):
        if isinstance(conj, ast.Comparison) and conj.op == "=":
            yield conj.left, conj.right


def _is_const(expr: Any) -> bool:
    return isinstance(expr, (ast.Literal, ast.Param))


def _local_equality(
    conj: Any, binding: str, schema: TableSchema
) -> tuple[str | None, Any]:
    """If ``conj`` is ``col = const`` on this table, return (col, const expr)."""
    if not (isinstance(conj, ast.Comparison) and conj.op == "="):
        return None, None
    left, right = conj.left, conj.right
    for col_expr, val_expr in ((left, right), (right, left)):
        if (
            isinstance(col_expr, ast.ColumnRef)
            and _is_const(val_expr)
            and (col_expr.qualifier is None or col_expr.qualifier.lower() == binding)
            and schema.has_column(col_expr.name)
        ):
            return col_expr.name, val_expr
    return None, None


def _local_in_list(
    conj: Any, binding: str, schema: TableSchema
) -> tuple[str, list[Any]] | None:
    """If ``conj`` is ``col IN (const, ...)`` on this table, return
    (col, item expressions).  Negated lists never narrow the scan."""
    if not isinstance(conj, ast.InList) or conj.negated:
        return None
    col_expr = conj.expr
    if not (
        isinstance(col_expr, ast.ColumnRef)
        and (col_expr.qualifier is None or col_expr.qualifier.lower() == binding)
        and schema.has_column(col_expr.name)
        and conj.items
        and all(_is_const(item) for item in conj.items)
    ):
        return None
    return col_expr.name, list(conj.items)


def _local_like_prefix(
    conj: Any, binding: str, schema: TableSchema, params: list[Any]
) -> tuple[str, str] | None:
    """If ``conj`` is ``col LIKE const`` on this table, return (col, prefix)."""
    if not (isinstance(conj, ast.Comparison) and conj.op == "LIKE"):
        return None
    col_expr, pat_expr = conj.left, conj.right
    if not (
        isinstance(col_expr, ast.ColumnRef)
        and _is_const(pat_expr)
        and (col_expr.qualifier is None or col_expr.qualifier.lower() == binding)
        and schema.has_column(col_expr.name)
    ):
        return None
    pattern = _eval_const(pat_expr, params)
    if not isinstance(pattern, str):
        return None
    return col_expr.name, like_prefix(pattern)


def _index_candidates(eq_cols: list[str]):
    """Column tuples to try against available hash indexes, widest first."""
    if len(eq_cols) > 1:
        yield tuple(eq_cols)
    for col in eq_cols:
        yield (col,)
