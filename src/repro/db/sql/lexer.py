"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.errors import SQLSyntaxError

KEYWORDS = {
    "ANALYZE",
    "AND", "AS", "ASC", "AUTO_INCREMENT", "BY", "COUNT", "CREATE", "DELETE",
    "DESC", "DISTINCT", "DROP", "EXPLAIN", "FROM", "HASH", "IN", "INDEX",
    "INNER", "INSERT", "INTO", "IS", "JOIN", "KEY", "LIKE", "LIMIT", "NOT",
    "NULL", "ON", "OR", "ORDER", "PRIMARY", "SELECT", "SET", "TABLE",
    "UNIQUE", "UPDATE", "USING", "VACUUM", "VALUES", "WHERE", "BTREE",
}

# Token kinds
KW = "KW"           # keyword (value is uppercase keyword text)
IDENT = "IDENT"     # identifier
NUMBER = "NUMBER"   # numeric literal (int or float)
STRING = "STRING"   # single-quoted string literal
PARAM = "PARAM"     # ? placeholder
OP = "OP"           # operator / punctuation
EOF = "EOF"

_PUNCT = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*", ";")


@dataclass(frozen=True)
class Token:
    kind: str
    value: str | int | float
    pos: int


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "?":
            tokens.append(Token(PARAM, "?", i))
            i += 1
            continue
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise SQLSyntaxError("unterminated string literal", i)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token(STRING, "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and text[j] in "+-":
                        j += 1
                else:
                    break
            lit = text[i:j]
            value: int | float
            if seen_dot or seen_exp:
                value = float(lit)
            else:
                value = int(lit)
            tokens.append(Token(NUMBER, value, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KW, upper, i))
            else:
                tokens.append(Token(IDENT, word, i))
            i = j
            continue
        matched = False
        for punct in _PUNCT:
            if text.startswith(punct, i):
                tokens.append(Token(OP, punct, i))
                i += len(punct)
                matched = True
                break
        if not matched:
            raise SQLSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(EOF, "", n))
    return tokens
