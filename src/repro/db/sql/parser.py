"""Recursive-descent parser for the mini-SQL dialect."""

from __future__ import annotations

from typing import Any

from repro.db.errors import SQLSyntaxError
from repro.db.sql import ast
from repro.db.sql.lexer import (
    EOF,
    IDENT,
    KW,
    NUMBER,
    OP,
    PARAM,
    STRING,
    Token,
    tokenize,
)


def parse(text: str) -> ast.Statement:
    """Parse one SQL statement (a trailing ``;`` is tolerated)."""
    parser = _Parser(tokenize(text))
    stmt = parser.statement()
    parser.accept_op(";")
    parser.expect_eof()
    return stmt


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._param_count = 0

    # -- token helpers --------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def accept_kw(self, *words: str) -> str | None:
        tok = self.current
        if tok.kind == KW and tok.value in words:
            self.advance()
            return str(tok.value)
        return None

    def expect_kw(self, word: str) -> None:
        if not self.accept_kw(word):
            raise SQLSyntaxError(
                f"expected {word}, got {self.current.value!r}", self.current.pos
            )

    def accept_op(self, op: str) -> bool:
        tok = self.current
        if tok.kind == OP and tok.value == op:
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise SQLSyntaxError(
                f"expected {op!r}, got {self.current.value!r}", self.current.pos
            )

    def expect_ident(self) -> str:
        tok = self.current
        if tok.kind == IDENT:
            self.advance()
            return str(tok.value)
        # Allow non-reserved keywords in identifier position (e.g. a column
        # named "key" is not needed by RLS, so keep it strict except KEY).
        raise SQLSyntaxError(
            f"expected identifier, got {tok.value!r}", tok.pos
        )

    def expect_eof(self) -> None:
        if self.current.kind != EOF:
            raise SQLSyntaxError(
                f"unexpected trailing input: {self.current.value!r}",
                self.current.pos,
            )

    # -- statements ------------------------------------------------------

    def statement(self) -> ast.Statement:
        tok = self.current
        if tok.kind != KW:
            raise SQLSyntaxError(f"expected statement, got {tok.value!r}", tok.pos)
        if tok.value == "SELECT":
            return self.select()
        if tok.value == "INSERT":
            return self.insert()
        if tok.value == "UPDATE":
            return self.update()
        if tok.value == "DELETE":
            return self.delete()
        if tok.value == "CREATE":
            return self.create()
        if tok.value == "DROP":
            return self.drop()
        if tok.value == "VACUUM":
            return self.vacuum()
        if tok.value == "EXPLAIN":
            self.advance()
            analyze = bool(self.accept_kw("ANALYZE"))
            inner = self.statement()
            if not isinstance(inner, (ast.Select, ast.Update, ast.Delete)):
                raise SQLSyntaxError(
                    "EXPLAIN supports SELECT/UPDATE/DELETE only", tok.pos
                )
            return ast.Explain(inner, analyze=analyze)
        raise SQLSyntaxError(f"unsupported statement: {tok.value}", tok.pos)

    def select(self) -> ast.Select:
        self.expect_kw("SELECT")
        distinct = bool(self.accept_kw("DISTINCT"))
        items: list[ast.SelectItem] = []
        if self.accept_op("*"):
            pass  # SELECT * — empty items tuple
        else:
            while True:
                expr = self.expression()
                alias = None
                if self.accept_kw("AS"):
                    alias = self.expect_ident()
                elif self.current.kind == IDENT:
                    alias = self.expect_ident()
                items.append(ast.SelectItem(expr, alias))
                if not self.accept_op(","):
                    break
        self.expect_kw("FROM")
        table = self.table_ref()
        joins: list[ast.Join] = []
        while True:
            if self.accept_kw("INNER"):
                self.expect_kw("JOIN")
            elif not self.accept_kw("JOIN"):
                break
            jt = self.table_ref()
            self.expect_kw("ON")
            on = self.expression()
            joins.append(ast.Join(jt, on))
        where = None
        if self.accept_kw("WHERE"):
            where = self.expression()
        order: list[ast.OrderItem] = []
        if self.accept_kw("ORDER"):
            self.expect_kw("BY")
            while True:
                expr = self.expression()
                desc = False
                if self.accept_kw("DESC"):
                    desc = True
                else:
                    self.accept_kw("ASC")
                order.append(ast.OrderItem(expr, desc))
                if not self.accept_op(","):
                    break
        limit = None
        if self.accept_kw("LIMIT"):
            tok = self.current
            if tok.kind != NUMBER or not isinstance(tok.value, int):
                raise SQLSyntaxError("LIMIT requires an integer", tok.pos)
            self.advance()
            limit = tok.value
        return ast.Select(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            order_by=tuple(order),
            limit=limit,
            distinct=distinct,
        )

    def table_ref(self) -> ast.TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_kw("AS"):
            alias = self.expect_ident()
        elif self.current.kind == IDENT:
            alias = self.expect_ident()
        return ast.TableRef(name, alias)

    def insert(self) -> ast.Insert:
        self.expect_kw("INSERT")
        self.expect_kw("INTO")
        table = self.expect_ident()
        self.expect_op("(")
        columns = [self.expect_ident()]
        while self.accept_op(","):
            columns.append(self.expect_ident())
        self.expect_op(")")
        self.expect_kw("VALUES")
        rows: list[tuple[Any, ...]] = []
        while True:
            self.expect_op("(")
            cells = [self.expression()]
            while self.accept_op(","):
                cells.append(self.expression())
            self.expect_op(")")
            if len(cells) != len(columns):
                raise SQLSyntaxError(
                    f"INSERT row has {len(cells)} values for "
                    f"{len(columns)} columns"
                )
            rows.append(tuple(cells))
            if not self.accept_op(","):
                break
        return ast.Insert(table, tuple(columns), tuple(rows))

    def update(self) -> ast.Update:
        self.expect_kw("UPDATE")
        table = self.expect_ident()
        self.expect_kw("SET")
        assignments: list[tuple[str, Any]] = []
        while True:
            col = self.expect_ident()
            self.expect_op("=")
            assignments.append((col, self.expression()))
            if not self.accept_op(","):
                break
        where = None
        if self.accept_kw("WHERE"):
            where = self.expression()
        return ast.Update(table, tuple(assignments), where)

    def delete(self) -> ast.Delete:
        self.expect_kw("DELETE")
        self.expect_kw("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_kw("WHERE"):
            where = self.expression()
        return ast.Delete(table, where)

    def create(self) -> ast.Statement:
        self.expect_kw("CREATE")
        if self.accept_kw("TABLE"):
            return self._create_table()
        unique_index = bool(self.accept_kw("UNIQUE"))
        if self.accept_kw("INDEX"):
            return self._create_index(unique_index)
        raise SQLSyntaxError(
            f"expected TABLE or INDEX after CREATE, got {self.current.value!r}",
            self.current.pos,
        )

    def _create_table(self) -> ast.CreateTable:
        name = self.expect_ident()
        self.expect_op("(")
        columns: list[ast.ColumnDef] = []
        primary_key: tuple[str, ...] = ()
        unique: list[tuple[str, ...]] = []
        while True:
            if self.accept_kw("PRIMARY"):
                self.expect_kw("KEY")
                primary_key = self._paren_name_list()
            elif self.accept_kw("UNIQUE"):
                unique.append(self._paren_name_list())
            else:
                col_name = self.expect_ident()
                tok = self.current
                if tok.kind not in (IDENT, KW):
                    raise SQLSyntaxError("expected column type", tok.pos)
                self.advance()
                type_name = str(tok.value)
                type_arg = None
                if self.accept_op("("):
                    arg_tok = self.current
                    if arg_tok.kind != NUMBER or not isinstance(arg_tok.value, int):
                        raise SQLSyntaxError(
                            "type argument must be an integer", arg_tok.pos
                        )
                    self.advance()
                    type_arg = arg_tok.value
                    self.expect_op(")")
                not_null = False
                autoinc = False
                while True:
                    if self.accept_kw("NOT"):
                        self.expect_kw("NULL")
                        not_null = True
                    elif self.accept_kw("NULL"):
                        pass
                    elif self.accept_kw("AUTO_INCREMENT"):
                        autoinc = True
                    else:
                        break
                columns.append(
                    ast.ColumnDef(col_name, type_name, type_arg, not_null, autoinc)
                )
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return ast.CreateTable(name, tuple(columns), primary_key, tuple(unique))

    def _paren_name_list(self) -> tuple[str, ...]:
        self.expect_op("(")
        names = [self.expect_ident()]
        while self.accept_op(","):
            names.append(self.expect_ident())
        self.expect_op(")")
        return tuple(names)

    def _create_index(self, unique: bool) -> ast.CreateIndex:
        if unique:
            raise SQLSyntaxError(
                "UNIQUE indexes must be declared in CREATE TABLE"
            )
        name = self.expect_ident()
        self.expect_kw("ON")
        table = self.expect_ident()
        columns = self._paren_name_list()
        using = "HASH"
        if self.accept_kw("USING"):
            kw = self.accept_kw("HASH", "BTREE")
            if kw is None:
                raise SQLSyntaxError(
                    "USING must be followed by HASH or BTREE", self.current.pos
                )
            using = kw
        return ast.CreateIndex(name, table, columns, using)

    def drop(self) -> ast.DropTable:
        self.expect_kw("DROP")
        self.expect_kw("TABLE")
        return ast.DropTable(self.expect_ident())

    def vacuum(self) -> ast.Vacuum:
        self.expect_kw("VACUUM")
        if self.current.kind == IDENT:
            return ast.Vacuum(self.expect_ident())
        return ast.Vacuum(None)

    # -- expressions -----------------------------------------------------
    # Precedence: OR < AND < NOT < comparison < primary

    def expression(self) -> Any:
        return self._or_expr()

    def _or_expr(self) -> Any:
        left = self._and_expr()
        while self.accept_kw("OR"):
            left = ast.Or(left, self._and_expr())
        return left

    def _and_expr(self) -> Any:
        left = self._not_expr()
        while self.accept_kw("AND"):
            left = ast.And(left, self._not_expr())
        return left

    def _not_expr(self) -> Any:
        if self.accept_kw("NOT"):
            return ast.Not(self._not_expr())
        return self._comparison()

    def _comparison(self) -> Any:
        left = self._primary()
        tok = self.current
        if tok.kind == OP and tok.value in ("=", "!=", "<>", "<", "<=", ">", ">="):
            self.advance()
            op = "!=" if tok.value == "<>" else str(tok.value)
            return ast.Comparison(op, left, self._primary())
        if tok.kind == KW and tok.value == "LIKE":
            self.advance()
            return ast.Comparison("LIKE", left, self._primary())
        if tok.kind == KW and tok.value == "NOT":
            # NOT here can only begin "NOT LIKE" / "NOT IN"
            save = self._pos
            self.advance()
            if self.accept_kw("LIKE"):
                return ast.Comparison("NOT LIKE", left, self._primary())
            if self.accept_kw("IN"):
                return ast.InList(left, self._paren_expr_list(), negated=True)
            self._pos = save
            return left
        if tok.kind == KW and tok.value == "IN":
            self.advance()
            return ast.InList(left, self._paren_expr_list())
        if tok.kind == KW and tok.value == "IS":
            self.advance()
            negated = bool(self.accept_kw("NOT"))
            self.expect_kw("NULL")
            return ast.IsNull(left, negated)
        return left

    def _paren_expr_list(self) -> tuple[Any, ...]:
        self.expect_op("(")
        items = [self.expression()]
        while self.accept_op(","):
            items.append(self.expression())
        self.expect_op(")")
        return tuple(items)

    def _primary(self) -> Any:
        tok = self.current
        if tok.kind == NUMBER:
            self.advance()
            return ast.Literal(tok.value)
        if tok.kind == STRING:
            self.advance()
            return ast.Literal(tok.value)
        if tok.kind == PARAM:
            self.advance()
            param = ast.Param(self._param_count)
            self._param_count += 1
            return param
        if tok.kind == KW and tok.value == "NULL":
            self.advance()
            return ast.Literal(None)
        if tok.kind == KW and tok.value == "COUNT":
            self.advance()
            self.expect_op("(")
            self.expect_op("*")
            self.expect_op(")")
            return ast.CountStar()
        if tok.kind == OP and tok.value == "(":
            self.advance()
            inner = self.expression()
            self.expect_op(")")
            return inner
        if tok.kind == IDENT:
            name = self.expect_ident()
            if self.accept_op("."):
                col = self.expect_ident()
                return ast.ColumnRef(name, col)
            return ast.ColumnRef(None, name)
        raise SQLSyntaxError(f"unexpected token {tok.value!r}", tok.pos)
