"""Row heap storage with tombstones.

A :class:`RowHeap` stores rows in an append-only list.  Deleting marks the
slot dead (a tombstone) instead of reclaiming it — the same strategy as
PostgreSQL's MVCC heap, where deleted tuples linger until ``VACUUM``.  The
MySQL-flavoured engine compacts eagerly; the PostgreSQL-flavoured engine
relies on explicit vacuuming, which is what the paper's Figure 8 measures.
"""

from __future__ import annotations

from typing import Any, Iterator


class RowHeap:
    """Append-only row storage addressed by row id (rid)."""

    __slots__ = ("_rows", "_dead", "_live_count", "_free_rids")

    def __init__(self) -> None:
        self._rows: list[list[Any] | None] = []
        self._dead: list[bool] = []
        self._live_count = 0
        self._free_rids: list[int] = []

    def insert(self, row: list[Any]) -> int:
        """Store ``row`` and return its rid, reusing vacuumed slots if any."""
        if self._free_rids:
            rid = self._free_rids.pop()
            self._rows[rid] = row
            self._dead[rid] = False
        else:
            rid = len(self._rows)
            self._rows.append(row)
            self._dead.append(False)
        self._live_count += 1
        return rid

    def mark_dead(self, rid: int) -> list[Any]:
        """Tombstone ``rid``; the row data stays until :meth:`reclaim`."""
        if self._dead[rid]:
            raise KeyError(f"row {rid} already dead")
        self._dead[rid] = True
        self._live_count -= 1
        row = self._rows[rid]
        assert row is not None
        return row

    def reclaim(self, rid: int) -> None:
        """Free a tombstoned slot for reuse (the vacuum step)."""
        if not self._dead[rid]:
            raise KeyError(f"row {rid} is not dead")
        self._rows[rid] = None
        self._free_rids.append(rid)

    def is_dead(self, rid: int) -> bool:
        return self._dead[rid]

    def get(self, rid: int) -> list[Any]:
        """Return the row for ``rid`` (dead or alive, as long as not reclaimed)."""
        if not 0 <= rid < len(self._rows):
            raise KeyError(f"row id {rid} out of range")
        row = self._rows[rid]
        if row is None:
            raise KeyError(f"row {rid} has been reclaimed")
        return row

    def get_live(self, rid: int) -> list[Any] | None:
        """Return the row if it is live, else ``None``."""
        row = self._rows[rid]
        if row is None or self._dead[rid]:
            return None
        return row

    def scan_live(self) -> Iterator[tuple[int, list[Any]]]:
        """Yield ``(rid, row)`` for every live row in heap order."""
        dead = self._dead
        for rid, row in enumerate(self._rows):
            if row is not None and not dead[rid]:
                yield rid, row

    def scan_dead(self) -> Iterator[int]:
        """Yield the rids of tombstoned (not yet reclaimed) rows."""
        for rid, row in enumerate(self._rows):
            if row is not None and self._dead[rid]:
                yield rid

    @property
    def live_count(self) -> int:
        return self._live_count

    @property
    def dead_count(self) -> int:
        return len(self._rows) - self._live_count - len(self._free_rids)

    @property
    def physical_count(self) -> int:
        """Slots occupied by live or dead rows — the on-disk footprint."""
        return len(self._rows) - len(self._free_rids)
