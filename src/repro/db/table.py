"""Table objects: schema + row heap + index maintenance + constraints."""

from __future__ import annotations

import itertools
from typing import Any, Iterator

from repro.db.errors import (
    DBError,
    DuplicateKeyError,
    NoSuchIndexError,
)
from repro.db.index import HashIndex, OrderedIndex
from repro.db.profiler import TimedLatch
from repro.db.schema import TableSchema
from repro.db.storage import RowHeap
from repro.obs.metrics import MetricsRegistry


class Table:
    """One table of the embedded database.

    Parameters
    ----------
    schema:
        Column and key declarations.
    eager_index_cleanup:
        If true (MySQL-flavoured storage), deleting a row removes its index
        entries and reclaims the heap slot immediately.  If false
        (PostgreSQL-flavoured MVCC storage), deletes only tombstone the row;
        index entries keep pointing at the dead tuple until :meth:`vacuum`,
        and every reader pays to skip them.  The RLS paper's Figure 8
        measures exactly this cost.

    Thread safety: a single re-entrant latch serializes structural
    mutations; reads take the same latch.  The coarse latch is intentional —
    it reproduces the serialized-ingest behaviour of the paper's RLI back
    end under concurrent soft-state updates (Figure 12).  With a metrics
    registry, contended latch acquisitions are observed into
    ``db.latch_wait{table=...}`` so multi-client runs expose the
    serialization directly.
    """

    def __init__(
        self,
        schema: TableSchema,
        eager_index_cleanup: bool = True,
        dead_hit_cost: float = 0.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.schema = schema
        self.eager_index_cleanup = eager_index_cleanup
        #: Modelled seconds charged per dead index entry skipped during a
        #: lookup.  In PostgreSQL each dead index entry costs a heap fetch
        #: to discover the tuple is dead; in this in-memory engine that
        #: check is nearly free, so the MVCC-flavoured engine charges this
        #: instead (see repro.db.postgres_engine).
        self.dead_hit_cost = dead_hit_cost
        self.heap = RowHeap()
        self.latch = TimedLatch(
            hist=(
                metrics.histogram("db.latch_wait", table=schema.name)
                if metrics is not None
                else None
            ),
            reentrant=True,
        )
        self._autoinc = itertools.count(1)
        self._hash_indexes: dict[str, HashIndex] = {}
        self._ordered_indexes: dict[str, OrderedIndex] = {}
        # Column position -> list of indexes touching it, for maintenance.
        self._all_indexes: list[HashIndex | OrderedIndex] = []
        # Unique constraints: (positions tuple, HashIndex) pairs.
        self._unique: list[tuple[tuple[int, ...], HashIndex]] = []
        self.stats = TableStats()
        for i, key in enumerate(schema.key_constraints()):
            positions = tuple(schema.column_index(c) for c in key)
            idx = self._make_hash_index(f"__key_{i}_" + "_".join(key), positions)
            self._unique.append((positions, idx))
        # Auto-index single-column keys are already hash indexes; callers add
        # ordered indexes for LIKE-prefix columns explicitly.

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------

    def _make_hash_index(self, name: str, positions: tuple[int, ...]) -> HashIndex:
        idx = HashIndex(name, positions)
        self._hash_indexes[name] = idx
        self._all_indexes.append(idx)
        return idx

    def create_hash_index(self, name: str, columns: list[str]) -> HashIndex:
        """Create (and backfill) a hash index over ``columns``."""
        with self.latch:
            if name in self._hash_indexes or name in self._ordered_indexes:
                raise DBError(f"index already exists: {name!r}")
            positions = tuple(self.schema.column_index(c) for c in columns)
            idx = self._make_hash_index(name, positions)
            for rid, row in self.heap.scan_live():
                idx.insert(idx.key_for(row), rid)
            return idx

    def create_ordered_index(self, name: str, column: str) -> OrderedIndex:
        """Create (and backfill) an ordered index over one column."""
        with self.latch:
            if name in self._hash_indexes or name in self._ordered_indexes:
                raise DBError(f"index already exists: {name!r}")
            idx = OrderedIndex(name, self.schema.column_index(column))
            self._ordered_indexes[name] = idx
            self._all_indexes.append(idx)
            for rid, row in self.heap.scan_live():
                idx.insert(idx.key_for(row), rid)
            return idx

    def get_index(self, name: str) -> HashIndex | OrderedIndex:
        idx = self._hash_indexes.get(name) or self._ordered_indexes.get(name)
        if idx is None:
            raise NoSuchIndexError(name)
        return idx

    def find_hash_index(self, columns: tuple[str, ...]) -> HashIndex | None:
        """Best-effort lookup of a hash index covering exactly ``columns``."""
        positions = tuple(self.schema.column_index(c) for c in columns)
        for idx in self._hash_indexes.values():
            if idx.column_positions == positions:
                return idx
        return None

    def find_ordered_index(self, column: str) -> OrderedIndex | None:
        position = self.schema.column_index(column)
        for idx in self._ordered_indexes.values():
            if idx.column_position == position:
                return idx
        return None

    # ------------------------------------------------------------------
    # Row operations
    # ------------------------------------------------------------------

    def insert(self, values: dict[str, Any]) -> tuple[int, list[Any]]:
        """Insert a row; returns ``(rid, stored_row)``.

        Fills autoincrement columns, enforces unique/PK constraints (paying
        the dead-tuple filtering cost in MVCC mode), and maintains indexes.
        """
        row = self.schema.coerce_row(values)
        with self.latch:
            for pos, col in enumerate(self.schema.columns):
                if col.autoincrement and row[pos] is None:
                    row[pos] = next(self._autoinc)
            for positions, idx in self._unique:
                key = tuple(row[p] for p in positions)
                if self._key_is_live(idx, key):
                    colname = self.schema.columns[positions[0]].name
                    raise DuplicateKeyError(self.schema.name, colname, key)
            rid = self.heap.insert(row)
            for idx in self._all_indexes:
                idx.insert(idx.key_for(row), rid)
            self.stats.inserts += 1
            return rid, row

    def _key_is_live(self, idx: HashIndex, key: tuple) -> bool:
        """True if any *live* row carries ``key``; counts dead-entry scans."""
        rids = idx.lookup(key)
        if not rids:
            return False
        dead_hits = 0
        alive = False
        for rid in rids:
            if self.heap.is_dead(rid):
                dead_hits += 1
            else:
                alive = True
        self._charge_dead_hits(dead_hits)
        return alive

    def _charge_dead_hits(self, dead_hits: int) -> None:
        self.stats.dead_index_hits += dead_hits
        if dead_hits and self.dead_hit_cost > 0.0:
            import time

            time.sleep(dead_hits * self.dead_hit_cost)

    def delete_rid(self, rid: int) -> list[Any]:
        """Delete one live row by rid; returns the old row."""
        with self.latch:
            row = self.heap.mark_dead(rid)
            self.stats.deletes += 1
            if self.eager_index_cleanup:
                for idx in self._all_indexes:
                    idx.remove(idx.key_for(row), rid)
                self.heap.reclaim(rid)
            return row

    def update_rid(self, rid: int, changes: dict[str, Any]) -> tuple[int, list[Any]]:
        """MVCC-style update: tombstone the old version, insert the new one.

        Returns the new ``(rid, row)``.
        """
        with self.latch:
            old = list(self.heap.get(rid))
            new_values = {
                col.name: old[i] for i, col in enumerate(self.schema.columns)
            }
            new_values.update(changes)
            # Delete first so single-row unique updates don't self-collide.
            self.delete_rid(rid)
            try:
                return self.insert(new_values)
            except DBError:
                # Restore the old row so a failed update is not a delete.
                restored = {
                    col.name: old[i]
                    for i, col in enumerate(self.schema.columns)
                }
                self.insert(restored)
                raise

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get_row(self, rid: int) -> list[Any] | None:
        with self.latch:
            return self.heap.get_live(rid)

    def scan(self) -> Iterator[tuple[int, list[Any]]]:
        """Snapshot scan of live rows (materialized under the latch)."""
        with self.latch:
            return iter(list(self.heap.scan_live()))

    def lookup_equal(
        self, columns: tuple[str, ...], key: tuple
    ) -> list[tuple[int, list[Any]]]:
        """Live rows whose ``columns`` equal ``key``, via an index if any.

        Dead index entries are filtered here (and counted), which is the
        mechanism behind the PostgreSQL vacuum experiment.
        """
        with self.latch:
            idx = self.find_hash_index(columns)
            result: list[tuple[int, list[Any]]] = []
            if idx is not None:
                dead_hits = 0
                for rid in idx.lookup(key):
                    row = self.heap.get_live(rid)
                    if row is None:
                        dead_hits += 1
                    else:
                        result.append((rid, row))
                self._charge_dead_hits(dead_hits)
                return result
            positions = tuple(self.schema.column_index(c) for c in columns)
            for rid, row in self.heap.scan_live():
                if tuple(row[p] for p in positions) == key:
                    result.append((rid, row))
            return result

    def prefix_lookup(self, column: str, prefix: str) -> list[tuple[int, list[Any]]]:
        """Live rows whose string ``column`` starts with ``prefix``."""
        with self.latch:
            idx = self.find_ordered_index(column)
            result: list[tuple[int, list[Any]]] = []
            if idx is not None:
                for _key, rids in idx.prefix_scan(prefix):
                    for rid in rids:
                        row = self.heap.get_live(rid)
                        if row is not None:
                            result.append((rid, row))
                return result
            position = self.schema.column_index(column)
            for rid, row in self.heap.scan_live():
                value = row[position]
                if isinstance(value, str) and value.startswith(prefix):
                    result.append((rid, row))
            return result

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def vacuum(self) -> int:
        """Physically remove tombstoned rows and their index entries.

        Returns the number of dead tuples reclaimed.  The PostgreSQL engine
        exposes this as the SQL ``VACUUM`` statement.
        """
        with self.latch:
            reclaimed = 0
            for rid in list(self.heap.scan_dead()):
                row = self.heap.get(rid)
                for idx in self._all_indexes:
                    idx.remove(idx.key_for(row), rid)
                self.heap.reclaim(rid)
                reclaimed += 1
            self.stats.vacuums += 1
            self.stats.tuples_reclaimed += reclaimed
            return reclaimed

    def check_integrity(self) -> list[str]:
        """fsck-style self-check: every live row must be reachable through
        every index under its own key, every index entry must point at a
        heap row (live or pending vacuum), and unique constraints must
        actually hold.  Returns a list of problem descriptions (empty =
        healthy)."""
        problems: list[str] = []
        with self.latch:
            name = self.schema.name
            live = dict(self.heap.scan_live())
            for idx in self._all_indexes:
                for rid, row in live.items():
                    key = idx.key_for(row)
                    if rid not in idx.lookup(key):
                        problems.append(
                            f"{name}: live row {rid} missing from index "
                            f"{idx.name} under key {key!r}"
                        )
                if isinstance(idx, HashIndex):
                    for key in idx.distinct_keys():
                        for rid in idx.lookup(key):
                            try:
                                self.heap.get(rid)
                            except KeyError:
                                problems.append(
                                    f"{name}: index {idx.name} entry "
                                    f"{key!r} -> reclaimed row {rid}"
                                )
            for positions, _idx in self._unique:
                seen: dict[tuple, int] = {}
                for rid, row in live.items():
                    key = tuple(row[p] for p in positions)
                    if key in seen:
                        problems.append(
                            f"{name}: unique violation on {key!r}: rows "
                            f"{seen[key]} and {rid}"
                        )
                    seen[key] = rid
        return problems

    @property
    def row_count(self) -> int:
        return self.heap.live_count

    @property
    def dead_tuple_count(self) -> int:
        return self.heap.dead_count


class TableStats:
    """Lightweight operation counters for instrumentation and tests."""

    __slots__ = ("inserts", "deletes", "dead_index_hits", "vacuums", "tuples_reclaimed")

    def __init__(self) -> None:
        self.inserts = 0
        self.deletes = 0
        self.dead_index_hits = 0
        self.vacuums = 0
        self.tuples_reclaimed = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}
