"""Column types for the embedded database.

The type set mirrors the tables in Figure 3 of the paper: ``int(11)``,
``varchar(250)``, ``float`` and ``timestamp(14)``.  Each type knows how to
validate/coerce Python values and how to compare them, which is all the
executor needs.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any

from repro.db.errors import TypeMismatchError

# Sentinel used internally for SQL NULL; plain ``None`` at the API boundary.
NULL = None


class ColumnType:
    """Base class for column types.

    Subclasses implement :meth:`coerce`, which either returns a normalized
    value of the type's canonical Python representation or raises
    :class:`~repro.db.errors.TypeMismatchError`.
    """

    name = "ANY"

    def coerce(self, value: Any) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.name

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == getattr(
            other, "__dict__", None
        )

    def __hash__(self) -> int:
        return hash((type(self), tuple(sorted(self.__dict__.items()))))


class IntType(ColumnType):
    """``INT`` — stored as a Python int (display width is cosmetic)."""

    name = "INT"

    def __init__(self, display_width: int = 11) -> None:
        self.display_width = display_width

    def coerce(self, value: Any) -> int:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value, 10)
            except ValueError:
                pass
        raise TypeMismatchError(f"cannot coerce {value!r} to INT")


class FloatType(ColumnType):
    """``FLOAT`` — stored as a Python float."""

    name = "FLOAT"

    def coerce(self, value: Any) -> float:
        if isinstance(value, bool):
            raise TypeMismatchError("cannot coerce bool to FLOAT")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                pass
        raise TypeMismatchError(f"cannot coerce {value!r} to FLOAT")


class VarcharType(ColumnType):
    """``VARCHAR(n)`` — stored as str, length-checked like MySQL strict mode."""

    name = "VARCHAR"

    def __init__(self, max_length: int = 250) -> None:
        if max_length <= 0:
            raise ValueError("VARCHAR length must be positive")
        self.max_length = max_length

    def coerce(self, value: Any) -> str:
        if isinstance(value, str):
            if len(value) > self.max_length:
                raise TypeMismatchError(
                    f"string of length {len(value)} exceeds "
                    f"VARCHAR({self.max_length})"
                )
            return value
        raise TypeMismatchError(f"cannot coerce {value!r} to VARCHAR")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VARCHAR({self.max_length})"


class TimestampType(ColumnType):
    """``TIMESTAMP(14)`` — stored as a float of seconds since the epoch.

    The RLS only compares timestamps and subtracts them (soft-state expiry),
    so a POSIX-seconds float is the simplest faithful representation.
    ``datetime`` objects and ISO-8601 strings are accepted and converted.
    """

    name = "TIMESTAMP"

    def coerce(self, value: Any) -> float:
        if isinstance(value, bool):
            raise TypeMismatchError("cannot coerce bool to TIMESTAMP")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, _dt.datetime):
            return value.timestamp()
        if isinstance(value, str):
            try:
                return _dt.datetime.fromisoformat(value).timestamp()
            except ValueError:
                pass
        raise TypeMismatchError(f"cannot coerce {value!r} to TIMESTAMP")


# Canonical shared instances for the common declarations in Figure 3.
INT = IntType(11)
FLOAT = FloatType()
TIMESTAMP = TimestampType()


def VARCHAR(n: int = 250) -> VarcharType:
    """Convenience constructor matching SQL spelling: ``VARCHAR(250)``."""
    return VarcharType(n)


def type_from_sql(name: str, arg: int | None) -> ColumnType:
    """Resolve a SQL type name (as produced by the parser) to a ColumnType."""
    upper = name.upper()
    if upper in ("INT", "INTEGER"):
        return IntType(arg if arg is not None else 11)
    if upper in ("FLOAT", "DOUBLE", "REAL"):
        return FloatType()
    if upper == "VARCHAR":
        return VarcharType(arg if arg is not None else 250)
    if upper == "TIMESTAMP":
        return TimestampType()
    raise TypeMismatchError(f"unknown SQL type: {name!r}")
