"""Write-ahead log with configurable flush policy.

The paper's headline LRC result (Figures 4 and 5) is that add throughput is
dominated by whether the MySQL back end flushes its transaction log to the
physical disk on every commit (~84 adds/s) or only periodically
(>700 adds/s), while query throughput is unaffected.  This module provides
that mechanism:

* every committed mutation appends a :class:`WALRecord` to the log;
* with ``flush_on_commit=True``, each commit performs a device sync whose
  latency models a disk write barrier (default 11 ms — calibrated so a
  single-threaded add loop lands near the paper's 84 adds/s);
* with ``flush_on_commit=False``, records accumulate in a buffer and are
  synced in the background every ``flush_interval`` seconds or when the
  buffer exceeds ``max_buffered_records`` — "loose consistency, providing
  improved performance at some risk of database corruption" (§5.1).

The log is replayable: :func:`replay` yields records back so an engine can
reconstruct state after a crash, which the tests exercise.
"""

from __future__ import annotations

import io
import struct
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.db.profiler import TimedLatch
from repro.obs import reqctx, tracing
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

_HEADER = struct.Struct("<QBI")  # lsn, opcode, payload length

OP_INSERT = 1
OP_DELETE = 2
OP_UPDATE = 3
OP_CHECKPOINT = 4

_OP_NAMES = {
    OP_INSERT: "INSERT",
    OP_DELETE: "DELETE",
    OP_UPDATE: "UPDATE",
    OP_CHECKPOINT: "CHECKPOINT",
}


@dataclass(frozen=True)
class WALRecord:
    """One durable log record."""

    lsn: int
    op: int
    table: str
    payload: tuple[Any, ...]

    @property
    def op_name(self) -> str:
        return _OP_NAMES.get(self.op, f"OP{self.op}")


def _encode_value(out: io.BytesIO, value: Any) -> None:
    """Tiny self-describing encoding for WAL payload scalars."""
    if value is None:
        out.write(b"N")
    elif isinstance(value, bool):
        out.write(b"B" + (b"\x01" if value else b"\x00"))
    elif isinstance(value, int):
        out.write(b"I" + struct.pack("<q", value))
    elif isinstance(value, float):
        out.write(b"F" + struct.pack("<d", value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.write(b"S" + struct.pack("<I", len(data)) + data)
    else:
        raise TypeError(f"unsupported WAL value type: {type(value).__name__}")


def _decode_value(buf: io.BytesIO) -> Any:
    tag = buf.read(1)
    if tag == b"N":
        return None
    if tag == b"B":
        return buf.read(1) == b"\x01"
    if tag == b"I":
        return struct.unpack("<q", buf.read(8))[0]
    if tag == b"F":
        return struct.unpack("<d", buf.read(8))[0]
    if tag == b"S":
        (n,) = struct.unpack("<I", buf.read(4))
        return buf.read(n).decode("utf-8")
    raise ValueError(f"corrupt WAL value tag: {tag!r}")


def encode_record(record: WALRecord) -> bytes:
    body = io.BytesIO()
    _encode_value(body, record.table)
    body.write(struct.pack("<I", len(record.payload)))
    for value in record.payload:
        _encode_value(body, value)
    payload = body.getvalue()
    return _HEADER.pack(record.lsn, record.op, len(payload)) + payload


def decode_records(data: bytes) -> Iterator[WALRecord]:
    """Decode a byte stream of records; stops cleanly at a truncated tail."""
    offset = 0
    size = len(data)
    while offset + _HEADER.size <= size:
        lsn, op, length = _HEADER.unpack_from(data, offset)
        offset += _HEADER.size
        if offset + length > size:
            return  # torn tail write — normal after a crash
        buf = io.BytesIO(data[offset : offset + length])
        offset += length
        table = _decode_value(buf)
        (count,) = struct.unpack("<I", buf.read(4))
        payload = tuple(_decode_value(buf) for _ in range(count))
        yield WALRecord(lsn, op, table, payload)


class LogDevice:
    """Abstract durable device for the WAL."""

    def append(self, data: bytes) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        raise NotImplementedError

    def read_all(self) -> bytes:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class InMemoryLogDevice(LogDevice):
    """RAM-backed device with a modelled sync latency.

    ``sync_latency`` models the disk write barrier: 11 ms default, which is
    the seek+rotate budget of the early-2000s disks in the paper's testbed
    (and yields their ~84 adds/s with flush-on-commit).  Set it to 0 for
    tests that don't care about timing.  ``sleep`` is injectable so the
    discrete-event simulator can charge virtual time instead of real time.
    """

    def __init__(
        self,
        sync_latency: float = 0.011,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._buffer = bytearray()
        self._durable = bytearray()
        self.sync_latency = sync_latency
        self._sleep = sleep
        self.sync_count = 0
        self.bytes_written = 0

    def append(self, data: bytes) -> None:
        self._buffer.extend(data)
        self.bytes_written += len(data)

    def sync(self) -> None:
        if self.sync_latency > 0:
            self._sleep(self.sync_latency)
        self._durable.extend(self._buffer)
        self._buffer.clear()
        self.sync_count += 1

    def read_all(self) -> bytes:
        """Durable contents only — un-synced bytes are lost in a 'crash'."""
        return bytes(self._durable)


class FileLogDevice(LogDevice):
    """Real file-backed device using OS fsync."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "ab+")
        self.sync_count = 0

    def append(self, data: bytes) -> None:
        self._fh.write(data)

    def sync(self) -> None:
        self._fh.flush()
        import os

        os.fsync(self._fh.fileno())
        self.sync_count += 1

    def read_all(self) -> bytes:
        self._fh.flush()
        with open(self.path, "rb") as fh:
            return fh.read()

    def close(self) -> None:
        self._fh.close()


class WriteAheadLog:
    """Append-ordered durable log with per-commit or periodic flushing."""

    def __init__(
        self,
        device: LogDevice | None = None,
        flush_on_commit: bool = True,
        flush_interval: float = 1.0,
        max_buffered_records: int = 1024,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.device = device if device is not None else InMemoryLogDevice()
        self.flush_on_commit = flush_on_commit
        self.flush_interval = flush_interval
        self.max_buffered_records = max_buffered_records
        self._clock = clock
        self._next_lsn = 1
        self._buffered = 0
        self._last_flush = clock()
        self.records_appended = 0
        self._txn = threading.local()
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_flush = registry.histogram("wal.flush_latency")
        self._m_records = registry.counter("wal.records_appended")
        self._m_queue = registry.gauge("wal.queue_depth")
        # Contended acquisitions of the append lock surface as
        # db.wal_lock_wait, separating "waiting for the log" from
        # "waiting for the device" (wal.flush_latency) under load.
        self._lock = TimedLatch(
            hist=registry.histogram("db.wal_lock_wait"), reentrant=False
        )
        #: Optional flight recorder; the server wires this so WAL flushes
        #: land in the same event ring as RPC and update-delivery events.
        self.flight = None

    def _sync_device(self) -> None:
        """Sync the device, recording flush latency and the queue drain.

        Callers hold ``self._lock``.  With no registry installed the
        instrument is a no-op singleton and the timing pair is skipped.
        """
        buffered = self._buffered
        if self._m_flush.noop and not tracing.active() and self.flight is None:
            self.device.sync()
        else:
            from repro.obs.profile import thread_role

            start = time.perf_counter()
            with thread_role("wal.flush"):
                with tracing.span("wal.flush", buffered=buffered):
                    self.device.sync()
            self._m_flush.observe(time.perf_counter() - start)
            if self.flight is not None:
                self.flight.record("wal.flush", buffered=buffered)
        self._buffered = 0
        self._m_queue.set(0)
        self._last_flush = self._clock()

    def transaction(self):
        """Defer per-commit syncs until the enclosing transaction ends.

        A multi-statement RLS operation (e.g. an add touching t_lfn, t_pfn
        and t_map) is one database transaction with ONE durability barrier
        at commit — not one fsync per statement.  Nestable; only the
        outermost exit syncs.
        """
        return _WALTransaction(self)

    def _txn_depth(self) -> int:
        return getattr(self._txn, "depth", 0)

    def log(self, op: int, table: str, payload: tuple[Any, ...]) -> int:
        """Append one record; flush according to policy. Returns its LSN."""
        with self._lock:
            lsn = self._next_lsn
            self._next_lsn += 1
            data = encode_record(WALRecord(lsn, op, table, payload))
            self.device.append(data)
            reqctx.add_wal_bytes(len(data))
            self.records_appended += 1
            self._m_records.inc()
            self._buffered += 1
            self._m_queue.set(self._buffered)
            if self.flush_on_commit:
                if self._txn_depth() > 0:
                    self._txn.pending = True
                    return lsn
                self._sync_device()
            elif (
                self._buffered >= self.max_buffered_records
                or self._clock() - self._last_flush >= self.flush_interval
            ):
                self._sync_device()
            return lsn

    def flush(self) -> None:
        """Force a sync (used on clean shutdown / checkpoint)."""
        with self._lock:
            self._sync_device()

    def records(self) -> list[WALRecord]:
        """Decode every durable record (crash-recovery view)."""
        return list(decode_records(self.device.read_all()))


class _WALTransaction:
    """Context manager deferring commit syncs (see WriteAheadLog.transaction)."""

    __slots__ = ("wal",)

    def __init__(self, wal: WriteAheadLog) -> None:
        self.wal = wal

    def __enter__(self) -> "_WALTransaction":
        local = self.wal._txn
        local.depth = getattr(local, "depth", 0) + 1
        return self

    def __exit__(self, *exc: Any) -> None:
        local = self.wal._txn
        local.depth -= 1
        if (
            local.depth == 0
            and getattr(local, "pending", False)
            and self.wal.flush_on_commit
        ):
            local.pending = False
            with self.wal._lock:
                self.wal._sync_device()


def replay(log: WriteAheadLog) -> Iterator[WALRecord]:
    """Yield durable records in LSN order for recovery."""
    return iter(log.records())
