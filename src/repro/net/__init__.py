"""RPC substrate.

Stands in for the globus_IO-based RPC protocol of the Globus RLS server:
a compact binary wire codec (:mod:`repro.net.codec`), a request/response
protocol (:mod:`repro.net.messages`), transports (in-process and real TCP,
:mod:`repro.net.transport`), and a thread-pooled RPC server plus client
(:mod:`repro.net.rpc`).
"""

from repro.net.codec import decode, encode
from repro.net.errors import (
    NetError,
    ProtocolError,
    RemoteError,
    TransportClosedError,
)
from repro.net.messages import Request, Response
from repro.net.retry import (
    DEFAULT_RETRY,
    NO_RETRY,
    RetryExhaustedError,
    RetryPolicy,
    is_retryable,
    retry_call,
)
from repro.net.rpc import RPCClient, RPCServer
from repro.net.transport import (
    LocalTransport,
    TCPServerTransport,
    connect_local,
    connect_tcp,
)

__all__ = [
    "DEFAULT_RETRY",
    "LocalTransport",
    "NO_RETRY",
    "NetError",
    "ProtocolError",
    "RPCClient",
    "RPCServer",
    "RemoteError",
    "Request",
    "Response",
    "RetryExhaustedError",
    "RetryPolicy",
    "TCPServerTransport",
    "TransportClosedError",
    "connect_local",
    "connect_tcp",
    "decode",
    "encode",
    "is_retryable",
    "retry_call",
]
