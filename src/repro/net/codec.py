"""Binary wire codec.

A small self-describing tagged encoding (no pickle — the wire format is
independent of Python object internals, like the C RLS protocol).  Types:
``None``, bool, int (64-bit signed), float, str, bytes, list/tuple (as
list) and dict with str keys.  NumPy byte buffers travel as ``bytes``
(Bloom filter bitmaps use this path).
"""

from __future__ import annotations

import io
import struct
from typing import Any

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

TAG_NONE = b"N"
TAG_TRUE = b"T"
TAG_FALSE = b"F"
TAG_INT = b"I"
TAG_BIGINT = b"J"  # arbitrary-precision fallback
TAG_FLOAT = b"D"
TAG_STR = b"S"
TAG_BYTES = b"B"
TAG_LIST = b"L"
TAG_DICT = b"M"

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def encode(value: Any) -> bytes:
    """Encode ``value`` into bytes."""
    out = io.BytesIO()
    _encode_into(out, value)
    return out.getvalue()


def _encode_into(out: io.BytesIO, value: Any) -> None:
    if value is None:
        out.write(TAG_NONE)
    elif value is True:
        out.write(TAG_TRUE)
    elif value is False:
        out.write(TAG_FALSE)
    elif isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            out.write(TAG_INT)
            out.write(_I64.pack(value))
        else:
            data = str(value).encode("ascii")
            out.write(TAG_BIGINT)
            out.write(_U32.pack(len(data)))
            out.write(data)
    elif isinstance(value, float):
        out.write(TAG_FLOAT)
        out.write(_F64.pack(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.write(TAG_STR)
        out.write(_U32.pack(len(data)))
        out.write(data)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out.write(TAG_BYTES)
        out.write(_U32.pack(len(data)))
        out.write(data)
    elif isinstance(value, (list, tuple)):
        out.write(TAG_LIST)
        out.write(_U32.pack(len(value)))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out.write(TAG_DICT)
        out.write(_U32.pack(len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError("dict keys on the wire must be str")
            data = key.encode("utf-8")
            out.write(_U32.pack(len(data)))
            out.write(data)
            _encode_into(out, item)
    else:
        raise TypeError(f"cannot encode type {type(value).__name__}")


def decode(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode`."""
    buf = io.BytesIO(data)
    value = _decode_from(buf)
    trailing = buf.read(1)
    if trailing:
        from repro.net.errors import ProtocolError

        raise ProtocolError("trailing bytes after decoded value")
    return value


def _decode_from(buf: io.BytesIO) -> Any:
    from repro.net.errors import ProtocolError

    tag = buf.read(1)
    if tag == TAG_NONE:
        return None
    if tag == TAG_TRUE:
        return True
    if tag == TAG_FALSE:
        return False
    if tag == TAG_INT:
        return _I64.unpack(_read_exact(buf, 8))[0]
    if tag == TAG_BIGINT:
        (n,) = _U32.unpack(_read_exact(buf, 4))
        return int(_read_exact(buf, n).decode("ascii"))
    if tag == TAG_FLOAT:
        return _F64.unpack(_read_exact(buf, 8))[0]
    if tag == TAG_STR:
        (n,) = _U32.unpack(_read_exact(buf, 4))
        return _read_exact(buf, n).decode("utf-8")
    if tag == TAG_BYTES:
        (n,) = _U32.unpack(_read_exact(buf, 4))
        return _read_exact(buf, n)
    if tag == TAG_LIST:
        (n,) = _U32.unpack(_read_exact(buf, 4))
        return [_decode_from(buf) for _ in range(n)]
    if tag == TAG_DICT:
        (n,) = _U32.unpack(_read_exact(buf, 4))
        result = {}
        for _ in range(n):
            (klen,) = _U32.unpack(_read_exact(buf, 4))
            key = _read_exact(buf, klen).decode("utf-8")
            result[key] = _decode_from(buf)
        return result
    raise ProtocolError(f"unknown wire tag {tag!r}")


def _read_exact(buf: io.BytesIO, n: int) -> bytes:
    data = buf.read(n)
    if len(data) != n:
        from repro.net.errors import ProtocolError

        raise ProtocolError("truncated wire data")
    return data
