"""Binary wire codec.

A small self-describing tagged encoding (no pickle — the wire format is
independent of Python object internals, like the C RLS protocol).  Types:
``None``, bool, int (64-bit signed), float, str, bytes, list/tuple (as
list) and dict with str keys.  NumPy byte buffers travel as ``bytes``
(Bloom filter bitmaps use this path).

The hot paths avoid per-field allocation: :func:`encode_into` appends to
a caller-owned ``bytearray`` (reused frame buffers in the transport), and
:func:`decode` walks a flat buffer with an integer cursor and
``struct.unpack_from`` instead of an ``io.BytesIO`` with per-field
``read()`` copies.  ``decode`` accepts ``bytes``, ``bytearray`` or
``memoryview`` input; decoded ``str``/``bytes`` values are materialized
(copied out of the input), so callers may reuse the receive buffer the
moment ``decode`` returns.
"""

from __future__ import annotations

import struct
from typing import Any

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

TAG_NONE = b"N"
TAG_TRUE = b"T"
TAG_FALSE = b"F"
TAG_INT = b"I"
TAG_BIGINT = b"J"  # arbitrary-precision fallback
TAG_FLOAT = b"D"
TAG_STR = b"S"
TAG_BYTES = b"B"
TAG_LIST = b"L"
TAG_DICT = b"M"

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

# Integer tag values for the cursor decoder (one indexed byte, no slice).
_T_NONE = TAG_NONE[0]
_T_TRUE = TAG_TRUE[0]
_T_FALSE = TAG_FALSE[0]
_T_INT = TAG_INT[0]
_T_BIGINT = TAG_BIGINT[0]
_T_FLOAT = TAG_FLOAT[0]
_T_STR = TAG_STR[0]
_T_BYTES = TAG_BYTES[0]
_T_LIST = TAG_LIST[0]
_T_DICT = TAG_DICT[0]


def encode(value: Any) -> bytes:
    """Encode ``value`` into bytes."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def encode_into(out: bytearray, value: Any) -> None:
    """Append the encoding of ``value`` to ``out`` (a reusable buffer)."""
    _encode_into(out, value)


def _encode_into(
    out: bytearray,
    value: Any,
    _pack_i64: Any = _I64.pack,
    _pack_f64: Any = _F64.pack,
    _pack_u32: Any = _U32.pack,
) -> None:
    if value is None:
        out += TAG_NONE
        return
    if value is True:
        out += TAG_TRUE
        return
    if value is False:
        out += TAG_FALSE
        return
    t = type(value)
    if t is str:
        data = value.encode()
        out += TAG_STR
        out += _pack_u32(len(data))
        out += data
    elif t is int:
        if _INT64_MIN <= value <= _INT64_MAX:
            out += TAG_INT
            out += _pack_i64(value)
        else:
            data = str(value).encode("ascii")
            out += TAG_BIGINT
            out += _pack_u32(len(data))
            out += data
    elif t is float:
        out += TAG_FLOAT
        out += _pack_f64(value)
    elif t is list or t is tuple:
        out += TAG_LIST
        out += _pack_u32(len(value))
        for item in value:
            _encode_into(out, item)
    elif t is dict:
        out += TAG_DICT
        out += _pack_u32(len(value))
        for key, item in value.items():
            if type(key) is not str and not isinstance(key, str):
                raise TypeError("dict keys on the wire must be str")
            data = key.encode()
            out += _pack_u32(len(data))
            out += data
            _encode_into(out, item)
    elif t is bytes or t is bytearray or t is memoryview:
        out += TAG_BYTES
        out += _pack_u32(len(value))
        out += value
    # Subclass fallbacks (IntEnum, str subclasses, ...) — same wire form.
    elif isinstance(value, bool):
        out += TAG_TRUE if value else TAG_FALSE
    elif isinstance(value, int):
        _encode_into(out, int(value))
    elif isinstance(value, float):
        _encode_into(out, float(value))
    elif isinstance(value, str):
        _encode_into(out, str(value))
    elif isinstance(value, (bytes, bytearray, memoryview)):
        _encode_into(out, bytes(value))
    elif isinstance(value, (list, tuple)):
        _encode_into(out, list(value))
    elif isinstance(value, dict):
        _encode_into(out, dict(value))
    else:
        raise TypeError(f"cannot encode type {type(value).__name__}")


def decode(data: "bytes | bytearray | memoryview") -> Any:
    """Decode bytes produced by :func:`encode`.

    Any malformation — truncation, bad utf-8, unknown tags, trailing
    bytes — surfaces as :class:`~repro.net.errors.ProtocolError`; lower
    level exceptions (``struct.error``, ``IndexError``) never escape.
    """
    value, pos = _decode_from(data, 0)
    if pos != len(data):
        from repro.net.errors import ProtocolError

        raise ProtocolError("trailing bytes after decoded value")
    return value


def decode_prefix(
    data: "bytes | bytearray | memoryview", pos: int = 0
) -> tuple[Any, int]:
    """Decode one value starting at ``pos``; return ``(value, end_pos)``.

    Unlike :func:`decode` this tolerates trailing bytes.  For repeated
    payload reads over one buffer, build a single :func:`make_reader`
    instead — constructing the reader per call is the expensive part.
    """
    return _decode_from(data, pos)


def make_reader(data: "bytes | bytearray | memoryview"):
    """Build a resumable cursor decoder over ``data``.

    Returns ``(rd, tell, seek)``: ``rd()`` decodes the value at the
    cursor and advances past it, ``tell()`` reports the cursor, and
    ``seek(pos)`` moves it.  One reader amortizes the closure setup over
    every payload field of a frame (the message layer's fused batch
    parser interleaves scaffold parsing with payload ``rd()`` calls).
    ``rd`` raises :class:`~repro.net.errors.ProtocolError` for
    malformations it detects itself but lets ``struct.error`` /
    ``IndexError`` / ``UnicodeDecodeError`` escape on truncation —
    callers must convert those like :func:`decode` does.
    """
    from repro.net.errors import ProtocolError

    end = len(data)
    pos = 0
    unpack_i64 = _I64.unpack_from
    unpack_f64 = _F64.unpack_from
    unpack_u32 = _U32.unpack_from

    def rd() -> Any:
        # The cursor lives in the enclosing cell; struct.unpack_from and
        # buffer indexing raise on truncation and are converted to
        # ProtocolError by the caller below.  Slices silently truncate, so
        # the variable-length arms bounds-check explicitly.
        nonlocal pos
        tag = data[pos]
        pos += 1
        if tag == _T_STR:
            (n,) = unpack_u32(data, pos)
            stop = pos + 4 + n
            if stop > end:
                raise ProtocolError("truncated wire data")
            text = str(data[pos + 4 : stop], "utf-8")
            pos = stop
            return text
        if tag == _T_INT:
            (v,) = unpack_i64(data, pos)
            pos += 8
            return v
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_LIST:
            (n,) = unpack_u32(data, pos)
            if n > end - pos:  # each element is at least one tag byte
                raise ProtocolError("truncated wire data")
            pos += 4
            return [rd() for _ in range(n)]
        if tag == _T_DICT:
            (n,) = unpack_u32(data, pos)
            if n > end - pos:
                raise ProtocolError("truncated wire data")
            pos += 4
            result = {}
            for _ in range(n):
                (klen,) = unpack_u32(data, pos)
                stop = pos + 4 + klen
                if stop > end:
                    raise ProtocolError("truncated wire data")
                key = str(data[pos + 4 : stop], "utf-8")
                pos = stop
                result[key] = rd()
            return result
        if tag == _T_FLOAT:
            (v,) = unpack_f64(data, pos)
            pos += 8
            return v
        if tag == _T_BYTES:
            (n,) = unpack_u32(data, pos)
            stop = pos + 4 + n
            if stop > end:
                raise ProtocolError("truncated wire data")
            blob = bytes(data[pos + 4 : stop])
            pos = stop
            return blob
        if tag == _T_BIGINT:
            (n,) = unpack_u32(data, pos)
            stop = pos + 4 + n
            if stop > end:
                raise ProtocolError("truncated wire data")
            try:
                number = int(bytes(data[pos + 4 : stop]).decode("ascii"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise ProtocolError(
                    f"malformed bigint on the wire: {exc}"
                ) from None
            pos = stop
            return number
        raise ProtocolError(f"unknown wire tag {bytes([tag])!r}")

    def tell() -> int:
        return pos

    def seek(p: int) -> None:
        nonlocal pos
        pos = p

    return rd, tell, seek


def _decode_from(
    data: "bytes | bytearray | memoryview", start: int
) -> tuple[Any, int]:
    from repro.net.errors import ProtocolError

    rd, tell, seek = make_reader(data)
    seek(start)
    try:
        value = rd()
    except ProtocolError:
        raise
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"invalid utf-8 on the wire: {exc}") from None
    except (struct.error, IndexError):
        raise ProtocolError("truncated wire data") from None
    return value, tell()
