"""Exceptions for the RPC substrate."""

from __future__ import annotations


class NetError(Exception):
    """Base class for networking errors."""


class ProtocolError(NetError):
    """Malformed frame or message on the wire."""


class TransportClosedError(NetError):
    """The channel or server was closed."""


class RemoteError(NetError):
    """A server-side exception propagated back to the caller.

    ``error_type`` carries the remote exception class name so clients can
    map well-known RLS errors back to typed exceptions.
    """

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.remote_message = message


class AuthenticationError(NetError):
    """Credential rejected during the connection handshake."""


class AuthorizationError(NetError):
    """Authenticated principal lacks the privilege for an operation."""
