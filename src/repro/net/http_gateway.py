"""OGSA-style web-service gateway (paper §7 direction).

"Through the OGSA Data Replication Services Working Group ... we are
working to standardize a web service interface for replica location
services.  A version of RLS based on this interface is planned for Globus
Toolkit Version 4."  This module is that interface for this
implementation: a small HTTP/JSON front end that proxies onto the binary
RPC protocol, so non-RLS clients (curl, portals) can use the service.

Routes (all request/response bodies are JSON):

====================  ======  =====================================
path                  method  action
====================  ======  =====================================
/mappings/<lfn>       GET     LRC query (replica list for one LFN)
/mappings             POST    {"lfn":..,"pfn":..,"mode":"create|add"}
/mappings             DELETE  {"lfn":..,"pfn":..}
/lfns/<pfn>           GET     reverse query
/index/<lfn>          GET     RLI query (LRC names)
/bulk/query           POST    {"lfns":[...]} -> {lfn: [pfn,...]}
/admin/stats          GET     server statistics
/admin/slo            GET     SLIs, burn rates, budget, alerts
/admin/usage          GET     per-principal usage + heavy hitters
/admin/shard_map      GET     cluster shard map (when clustered)
/admin/traces         GET     tail-retained spans (?limit=N)
/admin/trace/<id>     GET     cluster-stitched trace + critical path
/admin/queries        GET     slow/error statement log (?limit=N)
/admin/profile        GET     sampling-profiler folded stacks
/admin/threads        GET     thread dump + stuck-thread detections
/admin/flight         GET     flight-recorder events (?limit=N)
/admin/update         POST    force a full soft-state update
/metrics              GET     Prometheus-style text metrics dump
====================  ======  =====================================

``/metrics`` responds with ``text/plain`` (Prometheus exposition
format); every other route speaks JSON.

Errors map to HTTP statuses: unknown names → 404, conflicts → 409,
validation → 400, authorization → 403, anything else → 500.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import unquote

from repro.core.client import RLSClient, connect
from repro.core.errors import (
    InvalidNameError,
    MappingExistsError,
    MappingNotFoundError,
)
from repro.net.errors import AuthorizationError, RemoteError


class HTTPGateway:
    """HTTP/JSON bridge onto one RLS server endpoint."""

    def __init__(
        self,
        rls_endpoint: str,
        host: str = "127.0.0.1",
        port: int = 0,
        credential: bytes | None = None,
    ) -> None:
        self.rls_endpoint = rls_endpoint
        self.credential = credential
        gateway = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args):  # silence default stderr logging
                pass

            def _client(self) -> RLSClient:
                return connect(gateway.rls_endpoint, gateway.credential)

            def _send(self, status: int, payload) -> None:
                body = json.dumps(payload).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _send_text(self, status: int, text: str) -> None:
                body = text.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _body(self):
                length = int(self.headers.get("Content-Length", "0"))
                if length == 0:
                    return {}
                return json.loads(self.rfile.read(length).decode("utf-8"))

            def _handle(self, fn) -> None:
                client = None
                try:
                    client = self._client()
                    status, payload = fn(client)
                    self._send(status, payload)
                except MappingNotFoundError as exc:
                    self._send(404, {"error": str(exc)})
                except MappingExistsError as exc:
                    self._send(409, {"error": str(exc)})
                except InvalidNameError as exc:
                    self._send(400, {"error": str(exc)})
                except (AuthorizationError,) as exc:
                    self._send(403, {"error": str(exc)})
                except RemoteError as exc:
                    if exc.error_type == "AuthorizationError":
                        self._send(403, {"error": exc.remote_message})
                    else:
                        self._send(500, {"error": str(exc)})
                except (json.JSONDecodeError, KeyError) as exc:
                    self._send(400, {"error": f"bad request: {exc}"})
                except Exception as exc:  # pragma: no cover - safety net
                    self._send(500, {"error": str(exc)})
                finally:
                    if client is not None:
                        client.close()

            # -- GET ------------------------------------------------------

            def do_GET(self) -> None:
                path = unquote(self.path)
                if path.startswith("/mappings/"):
                    lfn = path[len("/mappings/"):]
                    self._handle(
                        lambda c: (200, {"lfn": lfn, "pfns": c.get_mappings(lfn)})
                    )
                elif path.startswith("/lfns/"):
                    pfn = path[len("/lfns/"):]
                    self._handle(
                        lambda c: (200, {"pfn": pfn, "lfns": c.get_lfns(pfn)})
                    )
                elif path.startswith("/index/"):
                    lfn = path[len("/index/"):]
                    self._handle(
                        lambda c: (200, {"lfn": lfn, "lrcs": c.rli_query(lfn)})
                    )
                elif path == "/admin/stats":
                    self._handle(lambda c: (200, c.stats()))
                elif path == "/admin/slo":
                    self._handle(lambda c: (200, c.slo()))
                elif path == "/admin/usage":
                    self._handle(lambda c: (200, c.usage()))
                elif path.startswith("/admin/trace/"):
                    trace_id = path[len("/admin/trace/"):].partition("?")[0]

                    def fetch_trace(c: RLSClient):
                        payload = c.trace(trace_id)
                        # With a tracer installed, an id no node retains
                        # is a miss; with none, the surface degrades to
                        # {"enabled": false} like the other admin routes.
                        if payload.get("enabled") and not payload.get("spans"):
                            return 404, payload
                        return 200, payload

                    self._handle(fetch_trace)
                elif path == "/admin/shard_map":
                    self._handle(lambda c: (200, c.shard_map()))
                elif path == "/admin/traces" or path.startswith("/admin/traces?"):
                    query = path.partition("?")[2]
                    limit = 100
                    for part in query.split("&"):
                        if part.startswith("limit="):
                            try:
                                limit = int(part[len("limit="):])
                            except ValueError:
                                pass
                    self._handle(lambda c: (200, c.traces(limit=limit)))
                elif path == "/admin/queries" or path.startswith(
                    "/admin/queries?"
                ):
                    query = path.partition("?")[2]
                    limit = 50
                    for part in query.split("&"):
                        if part.startswith("limit="):
                            try:
                                limit = int(part[len("limit="):])
                            except ValueError:
                                pass
                    self._handle(lambda c: (200, c.slow_queries(limit=limit)))
                elif path == "/admin/profile":
                    self._handle(lambda c: (200, c.profile()))
                elif path == "/admin/threads":
                    self._handle(lambda c: (200, c.threads()))
                elif path == "/admin/flight" or path.startswith(
                    "/admin/flight?"
                ):
                    query = path.partition("?")[2]
                    limit = 100
                    for part in query.split("&"):
                        if part.startswith("limit="):
                            try:
                                limit = int(part[len("limit="):])
                            except ValueError:
                                pass
                    self._handle(lambda c: (200, c.flight(limit=limit)))
                elif path == "/metrics":
                    client = None
                    try:
                        client = self._client()
                        self._send_text(200, client.metrics_text())
                    except Exception as exc:
                        self._send(500, {"error": str(exc)})
                    finally:
                        if client is not None:
                            client.close()
                else:
                    self._send(404, {"error": f"no such route: {path}"})

            # -- POST -----------------------------------------------------

            def do_POST(self) -> None:
                path = unquote(self.path)
                if path == "/mappings":
                    body = self._body()

                    def create(c: RLSClient):
                        lfn, pfn = body["lfn"], body["pfn"]
                        if body.get("mode", "create") == "add":
                            c.add(lfn, pfn)
                        else:
                            c.create(lfn, pfn)
                        return 201, {"lfn": lfn, "pfn": pfn}

                    self._handle(create)
                elif path == "/bulk/query":
                    body = self._body()
                    self._handle(
                        lambda c: (200, c.bulk_query(list(body["lfns"])))
                    )
                elif path == "/admin/update":
                    self._handle(
                        lambda c: (200, {"duration": c.trigger_full_update()})
                    )
                else:
                    self._send(404, {"error": f"no such route: {path}"})

            # -- DELETE ---------------------------------------------------

            def do_DELETE(self) -> None:
                if unquote(self.path) == "/mappings":
                    body = self._body()

                    def delete(c: RLSClient):
                        c.delete(body["lfn"], body["pfn"])
                        return 200, {"deleted": [body["lfn"], body["pfn"]]}

                    self._handle(delete)
                else:
                    self._send(404, {"error": "no such route"})

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"rls-http-{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "HTTPGateway":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
