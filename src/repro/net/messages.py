"""Request/response message types for the RPC protocol.

Protocol versions (negotiated via :class:`Hello`, see docs/PROTOCOL.md):

* **v1** — one outstanding request per connection; ``Request`` envelopes
  have 3-4 fields, ``Response`` envelopes exactly 5.
* **v2** — adds an optional trailing *correlation id* to ``Request`` (5th
  field) and ``Response`` (6th field) so many requests can be in flight
  on one socket, a compact 4-field success form ``[kind, True, value,
  id]`` for id-bearing responses, plus a :class:`Batch` envelope (kind 3)
  that carries a burst of requests or responses in a single frame.

A v2 peer never sends id-bearing or batch envelopes to a v1 peer, so the
v1 decoder never sees them; the v2 decoder accepts both shapes.

Every field of every message kind is validated defensively: a malformed
envelope — wrong types, short lists, bogus nesting — raises
:class:`~repro.net.errors.ProtocolError`, never ``IndexError`` or
``TypeError``, so hostile frames cannot kill a server handler thread.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any

from repro.net.codec import (
    _T_FALSE,
    _T_INT,
    _T_LIST,
    _T_NONE,
    _T_STR,
    _T_TRUE,
    decode,
    encode,
    encode_into,
    make_reader,
)
from repro.net.errors import ProtocolError

_I64 = struct.Struct("<q")
_U32 = struct.Struct("<I")

_REQUEST_KIND = 0
_RESPONSE_KIND = 1
_HELLO_KIND = 2
_BATCH_KIND = 3

#: Highest protocol version this build speaks.  Peers negotiate down to
#: ``min(client version, server version)`` during the Hello handshake.
PROTOCOL_VERSION = 2


@dataclass(frozen=True)
class Request:
    """One RPC call: a method name plus positional arguments.

    ``trace`` optionally carries ``(trace_id, parent_span_id)`` so a
    server-side span can join the client's trace (see
    :mod:`repro.obs.tracing`).  It is omitted from the wire encoding when
    absent, keeping the frame identical to the pre-tracing protocol.

    ``id`` is the v2 correlation id: when set, the matching ``Response``
    echoes it so a pipelined client can dispatch replies that arrive
    out of order with respect to its waiters.
    """

    method: str
    args: tuple[Any, ...] = ()
    trace: tuple[str, str] | None = None
    id: int | None = None

    def envelope(self) -> list[Any]:
        # Tuples encode identically to lists, so args/trace ride as-is
        # (the hot path encodes thousands of envelopes per burst).
        if self.id is not None:
            return [
                _REQUEST_KIND,
                self.method,
                self.args,
                self.trace or (),
                self.id,
            ]
        if self.trace is None:
            return [_REQUEST_KIND, self.method, self.args]
        return [_REQUEST_KIND, self.method, self.args, self.trace]

    def to_bytes(self) -> bytes:
        return encode(self.envelope())


@dataclass(frozen=True)
class Response:
    """RPC result: either a value or a propagated error.

    ``id`` echoes the correlation id of the request being answered
    (v2 only; ``None`` on v1 connections and for connection-level errors
    that cannot be attributed to a specific request).
    """

    ok: bool
    value: Any = None
    error_type: str = ""
    error_message: str = ""
    id: int | None = None

    @classmethod
    def success(cls, value: Any, id: int | None = None) -> "Response":
        return cls(ok=True, value=value, id=id)

    @classmethod
    def failure(cls, exc: BaseException, id: int | None = None) -> "Response":
        return cls(
            ok=False,
            error_type=type(exc).__name__,
            error_message=str(exc),
            id=id,
        )

    def envelope(self) -> list[Any]:
        if self.id is not None:
            # v2 only (v1 peers never see correlation ids).  Successes use
            # the compact 4-field form; failures carry the error fields.
            if self.ok and not self.error_type and not self.error_message:
                return [_RESPONSE_KIND, True, self.value, self.id]
            return [
                _RESPONSE_KIND,
                self.ok,
                self.value,
                self.error_type,
                self.error_message,
                self.id,
            ]
        return [
            _RESPONSE_KIND,
            self.ok,
            self.value,
            self.error_type,
            self.error_message,
        ]

    def to_bytes(self) -> bytes:
        return encode(self.envelope())


#: Hello attribute naming the client's declared accounting principal.
PRINCIPAL_ATTRIBUTE = "principal"


@dataclass(frozen=True)
class Hello:
    """Connection handshake: protocol version + optional credential blob.

    ``attributes`` may carry a ``principal`` string — the client's
    *declared* accounting identity, used only when no credential is
    presented (an authenticated DN always wins).  The attribute dict has
    been part of the Hello envelope since v1, so principal-bearing
    Hellos interoperate with every protocol version: a v1 peer simply
    ignores the key.
    """

    version: int = 1
    credential: bytes | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def principal(self) -> str | None:
        """The declared accounting principal, if any."""
        return self.attributes.get(PRINCIPAL_ATTRIBUTE)

    def envelope(self) -> list[Any]:
        return [_HELLO_KIND, self.version, self.credential, dict(self.attributes)]

    def to_bytes(self) -> bytes:
        return encode(self.envelope())


@dataclass(frozen=True)
class Batch:
    """A burst of requests (or responses) carried in one frame (v2).

    The server decodes the frame once, dispatches every request without
    per-message thread handoff, and answers with a single ``Batch`` of
    responses in the same order.  Nested batches are not allowed.
    """

    items: tuple[Any, ...] = ()

    def envelope(self) -> list[Any]:
        return [_BATCH_KIND, [item.envelope() for item in self.items]]

    def to_bytes(self) -> bytes:
        return encode(self.envelope())


def encode_message_into(out: bytearray, message: Any) -> None:
    """Append ``message``'s wire encoding to a reusable buffer.

    Batches take a fused path that writes the envelope scaffold (list
    headers, kinds, correlation ids) directly and only runs the generic
    codec over the payload fields — byte-identical to the generic
    encoding, but without materializing per-item envelope lists.
    """
    if type(message) is Batch:
        _encode_batch_into(out, message)
    else:
        encode_into(out, message.envelope())


#: ``[BATCH_KIND, [`` — list(2), int 3, opening item list tag.
_BATCH_PREFIX = (
    b"L" + _U32.pack(2) + b"I" + _I64.pack(_BATCH_KIND) + b"L"
)
#: ``[REQUEST_KIND,`` for the id-bearing 5-field request form.
_REQ5_PREFIX = b"L" + _U32.pack(5) + b"I" + _I64.pack(_REQUEST_KIND)
#: ``[RESPONSE_KIND, True,`` for the compact 4-field success form.
_RESP4_PREFIX = (
    b"L" + _U32.pack(4) + b"I" + _I64.pack(_RESPONSE_KIND) + b"T"
)


def _encode_batch_into(out: bytearray, batch: Batch) -> None:
    pack_u32 = _U32.pack
    pack_i64 = _I64.pack
    items = batch.items
    out += _BATCH_PREFIX
    out += pack_u32(len(items))
    for item in items:
        t = type(item)
        if t is Request and item.id is not None:
            out += _REQ5_PREFIX
            data = item.method.encode()
            out += b"S"
            out += pack_u32(len(data))
            out += data
            encode_into(out, item.args)
            encode_into(out, item.trace or ())
            out += b"I"
            out += pack_i64(item.id)
        elif (
            t is Response
            and item.id is not None
            and item.ok
            and not item.error_type
            and not item.error_message
        ):
            out += _RESP4_PREFIX
            encode_into(out, item.value)
            out += b"I"
            out += pack_i64(item.id)
        else:
            encode_into(out, item.envelope())


def _check_id(value: Any) -> int | None:
    if value is None:
        return None
    if type(value) is not int:
        raise ProtocolError("malformed correlation id")
    return value


def _request_from_envelope(decoded: list[Any]) -> Request:
    if not 3 <= len(decoded) <= 5:
        raise ProtocolError("malformed request")
    method = decoded[1]
    args = decoded[2]
    if not isinstance(method, str) or not isinstance(args, list):
        raise ProtocolError("malformed request")
    trace = None
    if len(decoded) >= 4 and decoded[3]:
        raw_trace = decoded[3]
        if (
            not isinstance(raw_trace, (list, tuple))
            or len(raw_trace) < 2
            or not isinstance(raw_trace[0], str)
            or not isinstance(raw_trace[1], str)
        ):
            raise ProtocolError("malformed request trace")
        trace = (raw_trace[0], raw_trace[1])
    request_id = _check_id(decoded[4]) if len(decoded) == 5 else None
    return Request(method, tuple(args), trace, request_id)


def _response_from_envelope(decoded: list[Any]) -> Response:
    if len(decoded) == 4:
        # Compact v2 success: [kind, True, value, id]; id is mandatory.
        if decoded[1] is not True or decoded[3] is None:
            raise ProtocolError("malformed response")
        return Response(True, decoded[2], "", "", _check_id(decoded[3]))
    if len(decoded) not in (5, 6):
        raise ProtocolError("malformed response")
    ok, error_type, error_message = decoded[1], decoded[3], decoded[4]
    if (
        not isinstance(ok, bool)
        or not isinstance(error_type, str)
        or not isinstance(error_message, str)
    ):
        raise ProtocolError("malformed response")
    response_id = _check_id(decoded[5]) if len(decoded) == 6 else None
    return Response(ok, decoded[2], error_type, error_message, response_id)


def _hello_from_envelope(decoded: list[Any]) -> Hello:
    if len(decoded) != 4:
        raise ProtocolError("malformed hello")
    version, credential, attributes = decoded[1], decoded[2], decoded[3]
    if type(version) is not int:
        raise ProtocolError("malformed hello version")
    if credential is not None and not isinstance(credential, bytes):
        raise ProtocolError("malformed hello credential")
    if not isinstance(attributes, dict):
        raise ProtocolError("malformed hello attributes")
    declared = attributes.get(PRINCIPAL_ATTRIBUTE)
    if declared is not None and not isinstance(declared, str):
        raise ProtocolError("malformed hello principal")
    return Hello(version=version, credential=credential, attributes=attributes)


def _batch_from_envelope(decoded: list[Any]) -> Batch:
    if len(decoded) != 2 or not isinstance(decoded[1], list):
        raise ProtocolError("malformed batch")
    items = []
    for env in decoded[1]:
        if not isinstance(env, list) or not env:
            raise ProtocolError("malformed batch item")
        kind = env[0]
        if kind == _REQUEST_KIND:
            items.append(_request_from_envelope(env))
        elif kind == _RESPONSE_KIND:
            items.append(_response_from_envelope(env))
        else:
            raise ProtocolError(f"invalid message kind {kind!r} inside batch")
    return Batch(items=tuple(items))


def _parse_id_at(data: Any, pos: int) -> tuple[int | None, int]:
    tag = data[pos]
    if tag == _T_INT:
        (value,) = _I64.unpack_from(data, pos + 1)
        return value, pos + 9
    if tag == _T_NONE:
        return None, pos + 1
    raise ProtocolError("malformed correlation id")


def _parse_str_at(data: Any, pos: int) -> tuple[str, int]:
    if data[pos] != _T_STR:
        raise ProtocolError("malformed response")
    (n,) = _U32.unpack_from(data, pos + 1)
    stop = pos + 5 + n
    if stop > len(data):
        raise ProtocolError("truncated wire data")
    return str(data[pos + 5 : stop], "utf-8"), stop


def _parse_batch(data: Any) -> Batch:
    """Fused scaffold parser for canonical batch frames.

    Walks the wire bytes directly — list headers, kinds, ids — and only
    hands payload fields (args, trace, value) to one shared codec reader,
    skipping the intermediate envelope lists entirely.  Every
    malformation surfaces as :class:`ProtocolError`, same as the generic
    path.
    """
    end = len(data)
    unpack_u32 = _U32.unpack_from
    unpack_i64 = _I64.unpack_from
    rd, tell, seek = make_reader(data)
    try:
        if data[14] != _T_LIST:
            raise ProtocolError("malformed batch")
        (count,) = unpack_u32(data, 15)
        pos = 19
        if count > end - pos:
            raise ProtocolError("truncated wire data")
        items = []
        for _ in range(count):
            if data[pos] != _T_LIST:
                raise ProtocolError("malformed batch item")
            (flen,) = unpack_u32(data, pos + 1)
            pos += 5
            if data[pos] != _T_INT:
                raise ProtocolError("malformed batch item")
            (kind,) = unpack_i64(data, pos + 1)
            pos += 9
            if kind == _RESPONSE_KIND:
                if flen == 4:
                    # Compact v2 success: [kind, True, value, id].
                    if data[pos] != _T_TRUE:
                        raise ProtocolError("malformed response")
                    seek(pos + 1)
                    value = rd()
                    rid, pos = _parse_id_at(data, tell())
                    if rid is None:
                        raise ProtocolError("malformed response")
                    items.append(Response(True, value, "", "", rid))
                    continue
                if flen not in (5, 6):
                    raise ProtocolError("malformed response")
                tag = data[pos]
                if tag == _T_TRUE:
                    ok = True
                elif tag == _T_FALSE:
                    ok = False
                else:
                    raise ProtocolError("malformed response")
                seek(pos + 1)
                value = rd()
                error_type, pos = _parse_str_at(data, tell())
                error_message, pos = _parse_str_at(data, pos)
                rid = None
                if flen == 6:
                    rid, pos = _parse_id_at(data, pos)
                items.append(
                    Response(ok, value, error_type, error_message, rid)
                )
            elif kind == _REQUEST_KIND:
                if not 3 <= flen <= 5:
                    raise ProtocolError("malformed request")
                if data[pos] != _T_STR:
                    raise ProtocolError("malformed request")
                (n,) = unpack_u32(data, pos + 1)
                stop = pos + 5 + n
                if stop > end:
                    raise ProtocolError("truncated wire data")
                method = str(data[pos + 5 : stop], "utf-8")
                if data[stop] != _T_LIST:
                    raise ProtocolError("malformed request")
                seek(stop)
                args = rd()
                trace = None
                if flen >= 4:
                    raw_trace = rd()
                    if raw_trace:
                        if (
                            not isinstance(raw_trace, (list, tuple))
                            or len(raw_trace) < 2
                            or not isinstance(raw_trace[0], str)
                            or not isinstance(raw_trace[1], str)
                        ):
                            raise ProtocolError("malformed request trace")
                        trace = (raw_trace[0], raw_trace[1])
                rid = None
                pos = tell()
                if flen == 5:
                    rid, pos = _parse_id_at(data, pos)
                items.append(Request(method, tuple(args), trace, rid))
            else:
                raise ProtocolError(
                    f"invalid message kind {kind!r} inside batch"
                )
        if pos != end:
            raise ProtocolError("trailing bytes after decoded value")
        return Batch(tuple(items))
    except ProtocolError:
        raise
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"invalid utf-8 on the wire: {exc}") from None
    except (struct.error, IndexError):
        raise ProtocolError("truncated wire data") from None


def message_from_bytes(
    data: "bytes | bytearray | memoryview",
) -> Request | Response | Hello | Batch:
    # Fused fast path for canonical batch frames: [kind=3, [items...]]
    # encoded as L(2) I(3) ...  Non-canonical encodings of the same
    # envelope (e.g. bigint kinds) still go through the generic decoder.
    if len(data) >= 19 and data[0] == _T_LIST and data[5] == _T_INT:
        (n,) = _U32.unpack_from(data, 1)
        if n == 2:
            (kind,) = _I64.unpack_from(data, 6)
            if kind == _BATCH_KIND:
                return _parse_batch(data)
    decoded = decode(data)
    if not isinstance(decoded, list) or not decoded:
        raise ProtocolError("malformed message envelope")
    kind = decoded[0]
    if kind == _REQUEST_KIND:
        return _request_from_envelope(decoded)
    if kind == _RESPONSE_KIND:
        return _response_from_envelope(decoded)
    if kind == _HELLO_KIND:
        return _hello_from_envelope(decoded)
    if kind == _BATCH_KIND:
        return _batch_from_envelope(decoded)
    raise ProtocolError(f"unknown message kind {kind!r}")
