"""Request/response message types for the RPC protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net.codec import decode, encode
from repro.net.errors import ProtocolError

_REQUEST_KIND = 0
_RESPONSE_KIND = 1
_HELLO_KIND = 2


@dataclass(frozen=True)
class Request:
    """One RPC call: a method name plus positional arguments.

    ``trace`` optionally carries ``(trace_id, parent_span_id)`` so a
    server-side span can join the client's trace (see
    :mod:`repro.obs.tracing`).  It is omitted from the wire encoding when
    absent, keeping the frame identical to the pre-tracing protocol.
    """

    method: str
    args: tuple[Any, ...] = ()
    trace: tuple[str, str] | None = None

    def to_bytes(self) -> bytes:
        if self.trace is None:
            return encode([_REQUEST_KIND, self.method, list(self.args)])
        return encode(
            [_REQUEST_KIND, self.method, list(self.args), list(self.trace)]
        )


@dataclass(frozen=True)
class Response:
    """RPC result: either a value or a propagated error."""

    ok: bool
    value: Any = None
    error_type: str = ""
    error_message: str = ""

    @classmethod
    def success(cls, value: Any) -> "Response":
        return cls(ok=True, value=value)

    @classmethod
    def failure(cls, exc: BaseException) -> "Response":
        return cls(
            ok=False,
            error_type=type(exc).__name__,
            error_message=str(exc),
        )

    def to_bytes(self) -> bytes:
        return encode(
            [_RESPONSE_KIND, self.ok, self.value, self.error_type, self.error_message]
        )


@dataclass(frozen=True)
class Hello:
    """Connection handshake: protocol version + optional credential blob."""

    version: int = 1
    credential: bytes | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        return encode(
            [_HELLO_KIND, self.version, self.credential, dict(self.attributes)]
        )


def message_from_bytes(data: bytes) -> Request | Response | Hello:
    decoded = decode(data)
    if not isinstance(decoded, list) or not decoded:
        raise ProtocolError("malformed message envelope")
    kind = decoded[0]
    if kind == _REQUEST_KIND:
        if len(decoded) not in (3, 4):
            raise ProtocolError("malformed request")
        trace = None
        if len(decoded) == 4 and decoded[3]:
            trace = (decoded[3][0], decoded[3][1])
        return Request(method=decoded[1], args=tuple(decoded[2]), trace=trace)
    if kind == _RESPONSE_KIND:
        if len(decoded) != 5:
            raise ProtocolError("malformed response")
        return Response(
            ok=decoded[1],
            value=decoded[2],
            error_type=decoded[3],
            error_message=decoded[4],
        )
    if kind == _HELLO_KIND:
        if len(decoded) != 4:
            raise ProtocolError("malformed hello")
        return Hello(
            version=decoded[1], credential=decoded[2], attributes=decoded[3]
        )
    raise ProtocolError(f"unknown message kind {kind!r}")
