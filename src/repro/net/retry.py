"""Retry policy: bounded attempts, per-call timeout, backoff with jitter.

The soft-state design (§3.2–§3.5) tolerates *lost* updates — a later
refresh heals the index — but a transient network failure should not have
to wait for the next full update when a couple of quick retries would
deliver the same bytes seconds later.  :class:`RetryPolicy` is the one
shared description of "how hard to try": the RPC client, the TCP
connector, and the update manager's per-target redelivery all consult it.

Everything time-related is injectable (``sleep``, ``rng``) so tests assert
exact backoff schedules with fake clocks instead of sleeping.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.net.errors import NetError, ProtocolError, RemoteError, TransportClosedError

T = TypeVar("T")

#: Exception types worth retrying: the request may never have reached the
#: server (or the server vanished mid-call), so a later attempt can win.
_RETRYABLE = (ConnectionError, TimeoutError, OSError, TransportClosedError)

#: Exception types that must never be retried, even though they derive
#: from a retryable base: the server *answered* (RemoteError) or spoke
#: garbage (ProtocolError) — retrying would repeat a completed operation
#: or re-parse the same bad bytes.
_FATAL = (RemoteError, ProtocolError)


def is_retryable(exc: BaseException) -> bool:
    """True when ``exc`` signals a transient transport-level failure."""
    if isinstance(exc, _FATAL):
        return False
    return isinstance(exc, _RETRYABLE)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry knobs shared by RPC calls, connects, and redelivery.

    ``backoff(attempt)`` grows exponentially from ``backoff_base`` and is
    capped at ``backoff_max``; ``jitter`` spreads each delay uniformly in
    ``[delay * (1 - jitter), delay * (1 + jitter)]`` so a fleet of LRCs
    retrying the same dead RLI does not stampede it in lockstep.
    """

    max_attempts: int = 3
    #: Per-call timeout in seconds (socket timeout for TCP transports).
    call_timeout: float | None = 10.0
    backoff_base: float = 0.5
    backoff_multiplier: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.1

    def backoff(
        self, attempt: int, rng: Callable[[], float] | None = None
    ) -> float:
        """Delay in seconds before retry number ``attempt`` (0-based)."""
        nominal = min(
            self.backoff_max,
            self.backoff_base * self.backoff_multiplier**attempt,
        )
        if self.jitter <= 0:
            return nominal
        roll = random.random() if rng is None else rng()
        return nominal * (1.0 - self.jitter + 2.0 * self.jitter * roll)

    def delays(
        self, rng: Callable[[], float] | None = None
    ) -> list[float]:
        """The full backoff schedule (one delay between each attempt pair)."""
        return [
            self.backoff(attempt, rng)
            for attempt in range(max(self.max_attempts - 1, 0))
        ]


#: A conservative default for soft-state delivery: three attempts, short
#: backoff — anything still failing is left to the next scheduled update.
DEFAULT_RETRY = RetryPolicy()

#: No retries at all, for callers that want the policy plumbing (timeouts)
#: without repeated attempts.
NO_RETRY = RetryPolicy(max_attempts=1)


class RetryExhaustedError(NetError):
    """Every attempt allowed by the policy failed.

    The final underlying failure is chained as ``__cause__`` and exposed
    as ``last_error``.
    """

    def __init__(self, attempts: int, last_error: BaseException) -> None:
        super().__init__(
            f"{attempts} attempt(s) failed; last error: "
            f"{type(last_error).__name__}: {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy,
    sleep: Callable[[float], None] = time.sleep,
    rng: Callable[[], float] | None = None,
    retryable: Callable[[BaseException], bool] = is_retryable,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn`` under ``policy``, backing off between attempts.

    Non-retryable exceptions propagate immediately.  When every attempt
    fails with a retryable error, the *last* error is re-raised (not
    wrapped), so caller-visible exception types are unchanged by adding a
    policy.  ``on_retry(attempt, exc)`` fires before each backoff sleep —
    the hook the update manager uses to count ``updates.retries``.
    """
    attempts = max(policy.max_attempts, 1)
    last: BaseException | None = None
    for attempt in range(attempts):
        try:
            return fn()
        except BaseException as exc:
            if not retryable(exc):
                raise
            last = exc
            if attempt + 1 >= attempts:
                break
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.backoff(attempt, rng))
    assert last is not None
    raise last
