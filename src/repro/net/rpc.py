"""RPC server and client.

The server owns a method table and an optional authenticator; the client
wraps a channel with a convenient ``call()`` that re-raises remote errors
as typed exceptions (registered via :func:`register_error_type`).

Pipelining: ``call_async()`` queues a request without waiting,
``flush()`` pushes queued requests onto the wire (one ``Batch`` frame on
a v2 TCP connection), and ``drain()`` blocks until every outstanding
response has arrived.  ``PendingCall.result()`` yields the value (or
raises the typed error) exactly like ``call()``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.errors import ProtocolError, RemoteError
from repro.net.messages import Batch, Hello, Request, Response
from repro.net.retry import RetryPolicy, is_retryable, retry_call
from repro.net.transport import Channel, PendingResponse
from repro.obs import reqctx, tracing
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.slo import classify_method
from repro.obs.usage import ANONYMOUS_PRINCIPAL


@dataclass
class ConnectionContext:
    """Per-connection state created at handshake time.

    ``principal`` is the *authenticated* identity (subject DN) and feeds
    authorization checks; ``usage_principal`` is the bounded accounting
    label (gridmap local user, sanitized declared name, or
    ``anonymous``) and feeds only attribution — keeping the two separate
    means accounting can never widen or narrow what a caller may do.
    """

    peer: str
    principal: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    usage_principal: str = ANONYMOUS_PRINCIPAL


Handler = Callable[[ConnectionContext, tuple], Any]
Authenticator = Callable[[Hello, str], str | None]

#: Bounded label for requests naming a method the server doesn't have.
#: Using the client-supplied name would let a hostile or typo'd client
#: mint unbounded ``rpc.errors{method=...}`` label cardinality.
UNKNOWN_METHOD_LABEL = "<unknown>"


class RPCServer:
    """Dispatches requests to registered method handlers.

    Parameters
    ----------
    authenticator:
        Callable invoked once per connection with ``(hello, peer)``.
        Returns the authenticated principal name (or ``None`` for
        anonymous) or raises to reject the connection.  ``None`` disables
        authentication entirely — the paper's "no authentication or
        authorization" server mode.
    flight:
        Optional :class:`~repro.obs.flight.FlightRecorder`.  When set,
        dispatch appends ``rpc.in``/``rpc.out`` events, handler failures
        append an ``error`` event, and each failure freezes a black-box
        dump of the ring (the events *leading up to* the error).
    """

    def __init__(
        self,
        authenticator: Authenticator | None = None,
        metrics: MetricsRegistry | None = None,
        flight: Any = None,
        name: str = "",
        usage: Any = None,
        principal_mapper: Callable[[str | None, str | None], str] | None = None,
    ) -> None:
        self._methods: dict[str, Handler] = {}
        self._authenticator = authenticator
        #: Optional :class:`~repro.obs.usage.UsageAccountant`; when set,
        #: every request is charged to ``(usage_principal, op_class)``.
        self.usage = usage
        #: Maps ``(authenticated_dn, declared_principal)`` to the bounded
        #: accounting label (the server passes the authorizer's gridmap
        #: mapping; bare test servers fall back to the declared name).
        self._principal_mapper = principal_mapper
        self._lock = threading.Lock()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.flight = flight
        #: Server identity stamped as ``node=`` on every rpc.handle span,
        #: so cross-node trace assembly can attribute fragments even when
        #: several servers share one in-process tracer.
        self.name = name
        self._span_tags: dict[str, str] = {"node": name} if name else {}
        self._instruments: dict[str, tuple[Any, Any, Any]] = {}
        self._m_unknown_method = self.metrics.counter(
            "rpc.errors", method=UNKNOWN_METHOD_LABEL
        )
        # Requests currently inside handlers: the dispatcher-level queue
        # signal the saturation detector watches (Fig. 13 contention).
        self._m_inflight = self.metrics.gauge("rpc.inflight")
        self.requests_served = 0
        self.errors_returned = 0

    @property
    def inflight(self) -> float:
        """Requests currently inside handlers (stuck-thread detector gate)."""
        return self._m_inflight.value

    def _method_instruments(self, method: str) -> tuple[Any, Any, Any]:
        """(requests counter, errors counter, latency histogram) per method."""
        cached = self._instruments.get(method)
        if cached is None:
            cached = (
                self.metrics.counter("rpc.requests", method=method),
                self.metrics.counter("rpc.errors", method=method),
                self.metrics.histogram("rpc.latency", method=method),
            )
            self._instruments[method] = cached
        return cached

    def register(self, method: str, handler: Handler) -> None:
        self._methods[method] = handler

    def register_all(self, handlers: dict[str, Handler]) -> None:
        self._methods.update(handlers)

    def methods(self) -> list[str]:
        return sorted(self._methods)

    def handshake(self, hello: Hello, peer: str) -> ConnectionContext:
        principal = None
        if self._authenticator is not None:
            principal = self._authenticator(hello, peer)
        declared = hello.principal
        if self._principal_mapper is not None:
            usage_principal = self._principal_mapper(principal, declared)
        else:
            usage_principal = declared or principal or ANONYMOUS_PRINCIPAL
        return ConnectionContext(
            peer=peer,
            principal=principal,
            attributes=dict(hello.attributes),
            usage_principal=usage_principal,
        )

    def handle(
        self,
        ctx: ConnectionContext,
        request: Request,
        queue_wait: float = 0.0,
    ) -> Response:
        """Dispatch one request, charging its cost vector when accounting
        is on.  ``queue_wait`` is the time the request sat decoded but
        unserviced (batch items behind their predecessors)."""
        usage = self.usage
        if usage is None:
            return self._dispatch(ctx, request)
        start = time.perf_counter()
        costs = reqctx.activate(ctx.usage_principal)
        try:
            response = self._dispatch(ctx, request)
        finally:
            reqctx.deactivate()
        op_class = classify_method(request.method)
        args = request.args
        # Namespace heat: sample the LFN argument of classified calls
        # (add/query/wildcard lead with the name; bulk payloads are
        # lists and are skipped rather than walked on the hot path).
        lfn = (
            args[0]
            if op_class is not None and args and type(args[0]) is str
            else None
        )
        usage.account(
            ctx.usage_principal,
            op_class,
            wall_time=time.perf_counter() - start,
            queue_wait=queue_wait,
            rows_examined=costs.rows_examined,
            wal_bytes=costs.wal_bytes,
            error=not response.ok,
            lfn=lfn,
        )
        return response

    def _dispatch(self, ctx: ConnectionContext, request: Request) -> Response:
        handler = self._methods.get(request.method)
        if handler is None:
            self.errors_returned += 1
            self._m_unknown_method.inc()
            return Response(
                ok=False,
                error_type="NoSuchMethodError",
                error_message=f"unknown method {request.method!r}",
                id=request.id,
            )
        requests, errors, latency = self._method_instruments(request.method)
        timed = not latency.noop
        start = time.perf_counter() if timed else 0.0
        self._m_inflight.inc()
        if not tracing.active() and self.flight is None:
            # Hot path: no tracer and no flight recorder installed means
            # the span and every record() below are no-ops — skip them.
            try:
                value = handler(ctx, request.args)
            except Exception as exc:
                self.errors_returned += 1
                errors.inc()
                if timed:
                    latency.observe(time.perf_counter() - start)
                return Response.failure(exc, id=request.id)
            finally:
                self._m_inflight.dec()
            self.requests_served += 1
            requests.inc()
            if timed:
                latency.observe(time.perf_counter() - start)
            return Response(True, value, "", "", request.id)
        try:
            with tracing.span(
                "rpc.handle",
                parent=request.trace,
                method=request.method,
                **self._span_tags,
            ) as span:
                if self.flight is not None:
                    self.flight.record(
                        "rpc.in",
                        detail=request.method,
                        principal=ctx.usage_principal,
                    )
                try:
                    value = handler(ctx, request.args)
                    if self.flight is not None:
                        self.flight.record("rpc.out", detail=request.method)
                except Exception as exc:
                    span.set_error(type(exc).__name__)
                    self.errors_returned += 1
                    errors.inc()
                    if timed:
                        latency.observe(time.perf_counter() - start)
                    if self.flight is not None:
                        # Black box: freeze the events leading up to the
                        # failure so a later wrap can't erase them.
                        self.flight.record(
                            "error",
                            detail=f"{request.method}: {type(exc).__name__}",
                            error=True,
                            message=str(exc),
                        )
                        self.flight.dump(
                            reason=f"{request.method}: {type(exc).__name__}"
                        )
                    return Response.failure(exc, id=request.id)
        finally:
            self._m_inflight.dec()
        self.requests_served += 1
        requests.inc()
        if timed:
            latency.observe(time.perf_counter() - start)
        return Response(True, value, "", "", request.id)

    def handle_batch(self, ctx: ConnectionContext, batch: Batch) -> Batch:
        """Dispatch a pipelined burst on the calling thread.

        The transport decoded the whole frame once; every item must be a
        :class:`Request`.  Responses come back in request order, each
        echoing its correlation id, as one :class:`Batch`.
        """
        replies = []
        accounted = self.usage is not None
        arrival = time.perf_counter() if accounted else 0.0
        for item in batch.items:
            if not isinstance(item, Request):
                raise ProtocolError("batch items must be requests")
            # Queue wait: a batch item's dwell time behind its
            # predecessors in the same frame (0 for the first item).
            wait = time.perf_counter() - arrival if accounted else 0.0
            replies.append(self.handle(ctx, item, queue_wait=wait))
        return Batch(tuple(replies))


# Registry mapping remote error type names back to local exception classes,
# so clients raise e.g. MappingExistsError rather than a bare RemoteError.
_ERROR_TYPES: dict[str, type[Exception]] = {}


def register_error_type(exc_type: type[Exception]) -> type[Exception]:
    """Register (or decorate) an exception class for client-side re-raising."""
    _ERROR_TYPES[exc_type.__name__] = exc_type
    return exc_type


# A server that rejects a frame answers with a typed ProtocolError response;
# re-raising it as ProtocolError client-side keeps it out of the retryable
# set (see repro.net.retry._FATAL) so the client never blindly re-sends a
# possibly-completed mutation over a conversation the server gave up on.
register_error_type(ProtocolError)


class PendingCall:
    """Handle to an in-flight ``call_async``; ``result()`` completes it."""

    __slots__ = ("_client", "_pending", "method")

    def __init__(
        self, client: "RPCClient", pending: PendingResponse, method: str
    ) -> None:
        self._client = client
        self._pending = pending
        self.method = method

    @property
    def done(self) -> bool:
        return self._pending.done

    def result(self) -> Any:
        if not self._pending.done:
            self._client.drain()
        return _unwrap(self._pending.get())


def _unwrap(response: Response) -> Any:
    if response.ok:
        return response.value
    exc_type = _ERROR_TYPES.get(response.error_type)
    if exc_type is not None:
        raise exc_type(response.error_message)
    raise RemoteError(response.error_type, response.error_message)


class RPCClient:
    """Typed convenience wrapper over a :class:`Channel`.

    Safe to share across threads: the underlying channels lock their
    sockets, and channel replacement / retry accounting here is guarded
    by a client-level lock (a failed attempt in one thread must not yank
    the channel out from under another thread's attempt, and lifetime
    retry counts are incremented atomically).

    Parameters
    ----------
    retry:
        Optional :class:`~repro.net.retry.RetryPolicy`.  Transport-level
        failures (connection reset, timeout, closed channel) are retried
        with backoff; server-side errors (``RemoteError``) never are — the
        server answered, so a retry could repeat a completed mutation.
    reconnect:
        Optional factory returning a fresh :class:`Channel`.  Between
        retry attempts the client replaces its channel through this —
        necessary for TCP, where a failed socket stays dead.
    sleep:
        Injectable backoff sleeper (tests pass a recorder).
    """

    def __init__(
        self,
        channel: Channel,
        retry: RetryPolicy | None = None,
        reconnect: Callable[[], Channel] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.channel = channel
        self.retry = retry
        self.reconnect = reconnect
        self._sleep = sleep
        self._lock = threading.Lock()
        #: Transport-level retries performed over this client's lifetime.
        #: Guarded by ``_lock``; per-call deltas are counted locally in
        #: ``call()`` rather than diffing this shared counter.
        self.retries = 0

    def _current_channel(self) -> Channel:
        with self._lock:
            return self.channel

    def _request(
        self, request: Request, retry_count: list[int] | None = None
    ) -> Response:
        if self.retry is None:
            return self._current_channel().request(request)
        tracer = tracing.current_tracer()
        attempt_no = [1]

        def attempt() -> Response:
            channel = self._current_channel()
            if tracer is None:
                return channel.request(request)
            # One child span per attempt under the enclosing rpc.call, so
            # a retried request shows its full timeline: failed attempts
            # carry the transport error, the last one carries the answer.
            with tracer.span(
                "rpc.attempt", method=request.method, attempt=attempt_no[0]
            ):
                return channel.request(request)

        def on_retry(attempt: int, exc: BaseException) -> None:
            # retry_call's attempt is the 0-based index of the attempt
            # that just failed; the next span is 1-based attempt + 2.
            attempt_no[0] = attempt + 2
            if retry_count is not None:
                retry_count[0] += 1
            with self._lock:
                self.retries += 1
                if self.reconnect is None:
                    return
                old = self.channel
                try:
                    old.close()
                except Exception:
                    pass
                try:
                    # Holding the lock during reconnect also collapses a
                    # thundering herd: one thread dials while the others
                    # queue up to reuse the fresh channel.
                    self.channel = self.reconnect()
                except Exception:
                    # Leave the dead channel in place; the next attempt
                    # fails fast and the loop backs off again.
                    pass

        return retry_call(
            attempt,
            self.retry,
            sleep=self._sleep,
            retryable=is_retryable,
            on_retry=on_retry,
        )

    def call(self, method: str, *args: Any) -> Any:
        tracer = tracing.current_tracer()
        if tracer is None:
            response = self._request(Request(method, args))
        else:
            with tracer.span("rpc.call", method=method) as span:
                retry_count = [0]
                response = self._request(
                    Request(method, args, trace=(span.trace_id, span.span_id)),
                    retry_count,
                )
                if self.retry is not None:
                    span.set_tag("retries", retry_count[0])
        return _unwrap(response)

    # -- pipelined surface ------------------------------------------------

    def call_async(self, method: str, *args: Any) -> PendingCall:
        """Queue a call without waiting for its response.

        On a pipelined (TCP v2) channel the request is buffered and goes
        out on the next :meth:`flush`/:meth:`drain`, many per frame; on
        synchronous channels it completes immediately.  Async calls do
        not reconnect-retry — a transport failure surfaces from
        ``result()``, and callers that need redelivery wrap the whole
        burst (as :class:`~repro.core.updates.UpdateManager` does).
        """
        channel = self._current_channel()
        pending = channel.submit(Request(method, args))
        return PendingCall(self, pending, method)

    def flush(self) -> None:
        """Push queued async calls onto the wire without waiting."""
        self._current_channel().flush()

    def drain(self) -> None:
        """Flush, then block until every outstanding response arrived."""
        channel = self._current_channel()
        tracer = tracing.current_tracer()
        if tracer is None:
            channel.drain()
            return
        with tracer.span("rpc.drain"):
            channel.drain()

    @property
    def pipelined(self) -> bool:
        """True when async calls genuinely overlap on the wire."""
        return getattr(self._current_channel(), "pipelined", False)

    def close(self) -> None:
        self._current_channel().close()

    def __enter__(self) -> "RPCClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
