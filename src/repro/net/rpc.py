"""RPC server and client.

The server owns a method table and an optional authenticator; the client
wraps a channel with a convenient ``call()`` that re-raises remote errors
as typed exceptions (registered via :func:`register_error_type`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.errors import RemoteError
from repro.net.messages import Hello, Request, Response
from repro.net.transport import Channel


@dataclass
class ConnectionContext:
    """Per-connection state created at handshake time."""

    peer: str
    principal: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict)


Handler = Callable[[ConnectionContext, tuple], Any]
Authenticator = Callable[[Hello, str], str | None]


class RPCServer:
    """Dispatches requests to registered method handlers.

    Parameters
    ----------
    authenticator:
        Callable invoked once per connection with ``(hello, peer)``.
        Returns the authenticated principal name (or ``None`` for
        anonymous) or raises to reject the connection.  ``None`` disables
        authentication entirely — the paper's "no authentication or
        authorization" server mode.
    """

    def __init__(self, authenticator: Authenticator | None = None) -> None:
        self._methods: dict[str, Handler] = {}
        self._authenticator = authenticator
        self._lock = threading.Lock()
        self.requests_served = 0
        self.errors_returned = 0

    def register(self, method: str, handler: Handler) -> None:
        self._methods[method] = handler

    def register_all(self, handlers: dict[str, Handler]) -> None:
        self._methods.update(handlers)

    def methods(self) -> list[str]:
        return sorted(self._methods)

    def handshake(self, hello: Hello, peer: str) -> ConnectionContext:
        principal = None
        if self._authenticator is not None:
            principal = self._authenticator(hello, peer)
        return ConnectionContext(peer=peer, principal=principal)

    def handle(self, ctx: ConnectionContext, request: Request) -> Response:
        handler = self._methods.get(request.method)
        if handler is None:
            self.errors_returned += 1
            return Response(
                ok=False,
                error_type="NoSuchMethodError",
                error_message=f"unknown method {request.method!r}",
            )
        try:
            value = handler(ctx, request.args)
        except Exception as exc:
            self.errors_returned += 1
            return Response.failure(exc)
        self.requests_served += 1
        return Response.success(value)


# Registry mapping remote error type names back to local exception classes,
# so clients raise e.g. MappingExistsError rather than a bare RemoteError.
_ERROR_TYPES: dict[str, type[Exception]] = {}


def register_error_type(exc_type: type[Exception]) -> type[Exception]:
    """Register (or decorate) an exception class for client-side re-raising."""
    _ERROR_TYPES[exc_type.__name__] = exc_type
    return exc_type


class RPCClient:
    """Typed convenience wrapper over a :class:`Channel`."""

    def __init__(self, channel: Channel) -> None:
        self.channel = channel

    def call(self, method: str, *args: Any) -> Any:
        response = self.channel.request(Request(method, args))
        if response.ok:
            return response.value
        exc_type = _ERROR_TYPES.get(response.error_type)
        if exc_type is not None:
            raise exc_type(response.error_message)
        raise RemoteError(response.error_type, response.error_message)

    def close(self) -> None:
        self.channel.close()

    def __enter__(self) -> "RPCClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
