"""RPC server and client.

The server owns a method table and an optional authenticator; the client
wraps a channel with a convenient ``call()`` that re-raises remote errors
as typed exceptions (registered via :func:`register_error_type`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.errors import RemoteError
from repro.net.messages import Hello, Request, Response
from repro.net.retry import RetryPolicy, is_retryable, retry_call
from repro.net.transport import Channel
from repro.obs import tracing
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY


@dataclass
class ConnectionContext:
    """Per-connection state created at handshake time."""

    peer: str
    principal: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict)


Handler = Callable[[ConnectionContext, tuple], Any]
Authenticator = Callable[[Hello, str], str | None]


class RPCServer:
    """Dispatches requests to registered method handlers.

    Parameters
    ----------
    authenticator:
        Callable invoked once per connection with ``(hello, peer)``.
        Returns the authenticated principal name (or ``None`` for
        anonymous) or raises to reject the connection.  ``None`` disables
        authentication entirely — the paper's "no authentication or
        authorization" server mode.
    flight:
        Optional :class:`~repro.obs.flight.FlightRecorder`.  When set,
        dispatch appends ``rpc.in``/``rpc.out`` events, handler failures
        append an ``error`` event, and each failure freezes a black-box
        dump of the ring (the events *leading up to* the error).
    """

    def __init__(
        self,
        authenticator: Authenticator | None = None,
        metrics: MetricsRegistry | None = None,
        flight: Any = None,
        name: str = "",
    ) -> None:
        self._methods: dict[str, Handler] = {}
        self._authenticator = authenticator
        self._lock = threading.Lock()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.flight = flight
        #: Server identity stamped as ``node=`` on every rpc.handle span,
        #: so cross-node trace assembly can attribute fragments even when
        #: several servers share one in-process tracer.
        self.name = name
        self._span_tags: dict[str, str] = {"node": name} if name else {}
        self._instruments: dict[str, tuple[Any, Any, Any]] = {}
        # Requests currently inside handlers: the dispatcher-level queue
        # signal the saturation detector watches (Fig. 13 contention).
        self._m_inflight = self.metrics.gauge("rpc.inflight")
        self.requests_served = 0
        self.errors_returned = 0

    @property
    def inflight(self) -> float:
        """Requests currently inside handlers (stuck-thread detector gate)."""
        return self._m_inflight.value

    def _method_instruments(self, method: str) -> tuple[Any, Any, Any]:
        """(requests counter, errors counter, latency histogram) per method."""
        cached = self._instruments.get(method)
        if cached is None:
            cached = (
                self.metrics.counter("rpc.requests", method=method),
                self.metrics.counter("rpc.errors", method=method),
                self.metrics.histogram("rpc.latency", method=method),
            )
            self._instruments[method] = cached
        return cached

    def register(self, method: str, handler: Handler) -> None:
        self._methods[method] = handler

    def register_all(self, handlers: dict[str, Handler]) -> None:
        self._methods.update(handlers)

    def methods(self) -> list[str]:
        return sorted(self._methods)

    def handshake(self, hello: Hello, peer: str) -> ConnectionContext:
        principal = None
        if self._authenticator is not None:
            principal = self._authenticator(hello, peer)
        return ConnectionContext(peer=peer, principal=principal)

    def handle(self, ctx: ConnectionContext, request: Request) -> Response:
        handler = self._methods.get(request.method)
        if handler is None:
            self.errors_returned += 1
            self.metrics.counter("rpc.errors", method=request.method).inc()
            return Response(
                ok=False,
                error_type="NoSuchMethodError",
                error_message=f"unknown method {request.method!r}",
            )
        requests, errors, latency = self._method_instruments(request.method)
        timed = not latency.noop
        start = time.perf_counter() if timed else 0.0
        self._m_inflight.inc()
        try:
            with tracing.span(
                "rpc.handle",
                parent=request.trace,
                method=request.method,
                **self._span_tags,
            ) as span:
                if self.flight is not None:
                    self.flight.record("rpc.in", detail=request.method)
                try:
                    value = handler(ctx, request.args)
                    if self.flight is not None:
                        self.flight.record("rpc.out", detail=request.method)
                except Exception as exc:
                    span.set_error(type(exc).__name__)
                    self.errors_returned += 1
                    errors.inc()
                    if timed:
                        latency.observe(time.perf_counter() - start)
                    if self.flight is not None:
                        # Black box: freeze the events leading up to the
                        # failure so a later wrap can't erase them.
                        self.flight.record(
                            "error",
                            detail=f"{request.method}: {type(exc).__name__}",
                            error=True,
                            message=str(exc),
                        )
                        self.flight.dump(
                            reason=f"{request.method}: {type(exc).__name__}"
                        )
                    return Response.failure(exc)
        finally:
            self._m_inflight.dec()
        self.requests_served += 1
        requests.inc()
        if timed:
            latency.observe(time.perf_counter() - start)
        return Response.success(value)


# Registry mapping remote error type names back to local exception classes,
# so clients raise e.g. MappingExistsError rather than a bare RemoteError.
_ERROR_TYPES: dict[str, type[Exception]] = {}


def register_error_type(exc_type: type[Exception]) -> type[Exception]:
    """Register (or decorate) an exception class for client-side re-raising."""
    _ERROR_TYPES[exc_type.__name__] = exc_type
    return exc_type


class RPCClient:
    """Typed convenience wrapper over a :class:`Channel`.

    Parameters
    ----------
    retry:
        Optional :class:`~repro.net.retry.RetryPolicy`.  Transport-level
        failures (connection reset, timeout, closed channel) are retried
        with backoff; server-side errors (``RemoteError``) never are — the
        server answered, so a retry could repeat a completed mutation.
    reconnect:
        Optional factory returning a fresh :class:`Channel`.  Between
        retry attempts the client replaces its channel through this —
        necessary for TCP, where a failed socket stays dead.
    sleep:
        Injectable backoff sleeper (tests pass a recorder).
    """

    def __init__(
        self,
        channel: Channel,
        retry: RetryPolicy | None = None,
        reconnect: Callable[[], Channel] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.channel = channel
        self.retry = retry
        self.reconnect = reconnect
        self._sleep = sleep
        #: Transport-level retries performed over this client's lifetime.
        self.retries = 0

    def _request(self, request: Request) -> Response:
        if self.retry is None:
            return self.channel.request(request)
        tracer = tracing.current_tracer()
        attempt_no = [1]

        def attempt() -> Response:
            if tracer is None:
                return self.channel.request(request)
            # One child span per attempt under the enclosing rpc.call, so
            # a retried request shows its full timeline: failed attempts
            # carry the transport error, the last one carries the answer.
            with tracer.span(
                "rpc.attempt", method=request.method, attempt=attempt_no[0]
            ):
                return self.channel.request(request)

        def on_retry(attempt: int, exc: BaseException) -> None:
            self.retries += 1
            # retry_call's attempt is the 0-based index of the attempt
            # that just failed; the next span is 1-based attempt + 2.
            attempt_no[0] = attempt + 2
            if self.reconnect is not None:
                try:
                    self.channel.close()
                except Exception:
                    pass
                try:
                    self.channel = self.reconnect()
                except Exception:
                    # Leave the dead channel in place; the next attempt
                    # fails fast and the loop backs off again.
                    pass

        return retry_call(
            attempt,
            self.retry,
            sleep=self._sleep,
            retryable=is_retryable,
            on_retry=on_retry,
        )

    def call(self, method: str, *args: Any) -> Any:
        tracer = tracing.current_tracer()
        if tracer is None:
            response = self._request(Request(method, args))
        else:
            with tracer.span("rpc.call", method=method) as span:
                before = self.retries
                response = self._request(
                    Request(method, args, trace=(span.trace_id, span.span_id))
                )
                if self.retry is not None:
                    span.set_tag("retries", self.retries - before)
        if response.ok:
            return response.value
        exc_type = _ERROR_TYPES.get(response.error_type)
        if exc_type is not None:
            raise exc_type(response.error_message)
        raise RemoteError(response.error_type, response.error_message)

    def close(self) -> None:
        self.channel.close()

    def __enter__(self) -> "RPCClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
