"""Transports: in-process channels and real TCP sockets.

Two interchangeable ways for a client to reach an RPC server:

* :class:`LocalTransport` — the client thread calls straight into the
  server's dispatcher (after the same handshake/auth path).  This mirrors
  the paper's multi-threaded server — concurrency comes from the client
  threads themselves — with negligible transport overhead, so throughput
  benchmarks measure the server, not the plumbing.  An optional per-call
  ``latency`` models a network round trip in real time.
* :class:`TCPServerTransport` / :func:`connect_tcp` — a real socket server
  with length-prefixed frames and a handler thread per connection, used by
  the examples to run a genuinely distributed RLS on localhost.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.net.errors import ProtocolError, TransportClosedError
from repro.net.messages import Hello, Request, Response, message_from_bytes
from repro.net.retry import RetryPolicy, retry_call
from repro.obs import tracing

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.rpc import RPCServer

_FRAME = struct.Struct("<I")
_MAX_FRAME = 256 * 1024 * 1024  # 256 MiB: a 5M-entry Bloom filter is ~6 MiB


class Channel:
    """Client-side handle to a server: synchronous request/response."""

    def request(self, request: Request) -> Response:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "Channel":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# In-process transport
# ---------------------------------------------------------------------------


class LocalTransport:
    """In-process transport endpoint for one RPC server.

    The transport keeps a registry so clients can connect by name, the way
    TCP clients connect by host:port.

    ``service_time`` models per-server *capacity* (as opposed to the
    channel-level ``latency``, which models the network round trip and is
    paid concurrently by every caller): requests serialize through one
    modeled service stage of that duration, capping the endpoint at
    ~1/service_time ops/s no matter how many client threads pile on — the
    Figure 6 saturation plateau.  Multi-server experiments (shard
    scale-out) rely on this: each in-process server gets its own stage,
    so aggregate throughput genuinely scales with server count.
    """

    _registry: dict[str, "LocalTransport"] = {}
    _registry_lock = threading.Lock()

    def __init__(
        self,
        server: "RPCServer",
        name: str | None = None,
        service_time: float = 0.0,
    ) -> None:
        self.server = server
        self.name = name
        self.service_time = service_time
        self._service_lock = threading.Lock()
        self.closed = False
        metrics = server.metrics
        self._m_bytes_in = metrics.counter("net.bytes_in", transport="local")
        self._m_bytes_out = metrics.counter("net.bytes_out", transport="local")
        self._m_connections = metrics.counter(
            "net.connections_total", transport="local"
        )
        if name is not None:
            with LocalTransport._registry_lock:
                LocalTransport._registry[name] = self

    @classmethod
    def lookup(cls, name: str) -> "LocalTransport":
        with cls._registry_lock:
            transport = cls._registry.get(name)
        if transport is None or transport.closed:
            raise TransportClosedError(f"no local endpoint named {name!r}")
        return transport

    def open_channel(
        self,
        credential: bytes | None = None,
        latency: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "LocalChannel":
        if self.closed:
            raise TransportClosedError("transport closed")
        ctx = self.server.handshake(Hello(credential=credential), peer="local")
        self._m_connections.inc()
        return LocalChannel(self, ctx, latency, sleep)

    def close(self) -> None:
        self.closed = True
        if self.name is not None:
            with LocalTransport._registry_lock:
                LocalTransport._registry.pop(self.name, None)


class LocalChannel(Channel):
    """Channel that invokes the server dispatcher in the caller's thread."""

    def __init__(
        self,
        transport: LocalTransport,
        ctx: Any,
        latency: float,
        sleep: Callable[[float], None],
    ) -> None:
        self._transport = transport
        self._ctx = ctx
        self._latency = latency
        self._sleep = sleep
        self._closed = False

    def request(self, request: Request) -> Response:
        if self._closed or self._transport.closed:
            raise TransportClosedError("channel closed")
        if self._latency > 0:
            self._sleep(self._latency)
        service_time = self._transport.service_time
        if service_time > 0:
            # Serialized modeled service stage: holding the lock while
            # sleeping is the model — it is what bounds this endpoint's
            # throughput at ~1/service_time regardless of caller count.
            with self._transport._service_lock:
                self._sleep(service_time)
        # Round-trip through the wire codec so the serialization cost and
        # type constraints are identical to the TCP path.
        wire = request.to_bytes()
        with tracing.span("transport.decode"):
            decoded = message_from_bytes(wire)
        assert isinstance(decoded, Request)
        self._transport._m_bytes_in.inc(len(wire))
        response = self._transport.server.handle(self._ctx, decoded)
        reply_wire = response.to_bytes()
        self._transport._m_bytes_out.inc(len(reply_wire))
        return message_from_bytes(reply_wire)  # type: ignore[return-value]

    def close(self) -> None:
        self._closed = True


def connect_local(
    name: str,
    credential: bytes | None = None,
    latency: float = 0.0,
) -> LocalChannel:
    """Connect to a named in-process server endpoint."""
    return LocalTransport.lookup(name).open_channel(credential, latency)


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_FRAME.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise TransportClosedError("peer closed connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> bytes:
    header = _recv_exact(sock, _FRAME.size)
    (length,) = _FRAME.unpack(header)
    if length > _MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    return _recv_exact(sock, length)


class TCPServerTransport:
    """Socket listener feeding connections to an RPC server.

    One handler thread per connection, like the Globus RLS server's
    thread-per-connection model.
    """

    def __init__(self, server: "RPCServer", host: str = "127.0.0.1", port: int = 0):
        self.server = server
        metrics = server.metrics
        self._m_bytes_in = metrics.counter("net.bytes_in", transport="tcp")
        self._m_bytes_out = metrics.counter("net.bytes_out", transport="tcp")
        self._m_conns_total = metrics.counter(
            "net.connections_total", transport="tcp"
        )
        self._m_conns_active = metrics.gauge(
            "net.connections_active", transport="tcp"
        )
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._closed = threading.Event()
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"rls-accept-{self.port}", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return
            with self._conns_lock:
                if self._closed.is_set():
                    conn.close()
                    return
                self._conns.add(conn)
                # Reap finished handler threads so connection churn does
                # not grow the list without bound.
                self._threads = [t for t in self._threads if t.is_alive()]
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, addr),
                name=f"rls-conn-{addr[1]}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket, addr: tuple) -> None:
        from repro.obs.profile import register_thread, unregister_thread

        peer = f"{addr[0]}:{addr[1]}"
        register_thread("rpc.worker")
        self._m_conns_total.inc()
        self._m_conns_active.inc()
        try:
            with conn:
                hello = message_from_bytes(_recv_frame(conn))
                if not isinstance(hello, Hello):
                    raise ProtocolError("expected Hello")
                try:
                    ctx = self.server.handshake(hello, peer=peer)
                except Exception as exc:  # auth failure -> error + close
                    _send_frame(conn, Response.failure(exc).to_bytes())
                    return
                _send_frame(conn, Response.success("welcome").to_bytes())
                while not self._closed.is_set():
                    frame = _recv_frame(conn)
                    self._m_bytes_in.inc(len(frame) + _FRAME.size)
                    with tracing.span("transport.decode"):
                        request = message_from_bytes(frame)
                    if not isinstance(request, Request):
                        raise ProtocolError("expected Request")
                    response = self.server.handle(ctx, request)
                    reply = response.to_bytes()
                    self._m_bytes_out.inc(len(reply) + _FRAME.size)
                    _send_frame(conn, reply)
        except (TransportClosedError, ConnectionError, OSError):
            return
        except ProtocolError:
            # Malformed or oversized frame: drop this connection; the
            # listener and every other connection stay healthy.
            return
        finally:
            unregister_thread()
            self._m_conns_active.dec()
            with self._conns_lock:
                self._conns.discard(conn)

    def close(self, join_timeout: float = 5.0) -> None:
        """Stop accepting, shut down live connections, join handlers."""
        self._closed.set()
        # A thread blocked in accept() is not reliably interrupted by
        # close() alone: shutdown() wakes it on Linux, and the self-connect
        # poke covers platforms where shutdown() of a listener is a no-op.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            host = "127.0.0.1" if self.host in ("0.0.0.0", "") else self.host
            socket.create_connection((host, self.port), timeout=0.5).close()
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        with self._conns_lock:
            live = list(self._conns)
            self._conns.clear()
            threads = list(self._threads)
            self._threads = []
        for conn in live:
            # Unblock handler threads parked in recv(); close() alone
            # does not interrupt a blocking read on every platform.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._accept_thread.join(timeout=join_timeout)
        for thread in threads:
            thread.join(timeout=join_timeout)


class TCPChannel(Channel):
    """Client side of one TCP connection."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._lock = threading.Lock()
        self._closed = False

    def request(self, request: Request) -> Response:
        if self._closed:
            raise TransportClosedError("channel closed")
        with self._lock:
            _send_frame(self._sock, request.to_bytes())
            message = message_from_bytes(_recv_frame(self._sock))
        if not isinstance(message, Response):
            raise ProtocolError("expected Response")
        return message

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass


def connect_tcp(
    host: str,
    port: int,
    credential: bytes | None = None,
    timeout: float = 10.0,
    retry: RetryPolicy | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> TCPChannel:
    """Open a TCP channel and perform the Hello handshake.

    With a :class:`~repro.net.retry.RetryPolicy`, connection establishment
    (socket connect + handshake) is retried with backoff — the reconnect
    path an LRC takes when its RLI restarts mid-deployment.  The policy's
    ``call_timeout`` (when set) overrides ``timeout`` as the per-attempt
    socket timeout.
    """

    def attempt() -> TCPChannel:
        attempt_timeout = timeout
        if retry is not None and retry.call_timeout is not None:
            attempt_timeout = retry.call_timeout
        sock = socket.create_connection((host, port), timeout=attempt_timeout)
        sock.settimeout(attempt_timeout)
        try:
            _send_frame(sock, Hello(credential=credential).to_bytes())
            reply = message_from_bytes(_recv_frame(sock))
        except BaseException:
            sock.close()
            raise
        if not isinstance(reply, Response):
            sock.close()
            raise ProtocolError("expected handshake Response")
        if not reply.ok:
            sock.close()
            from repro.net.errors import RemoteError

            raise RemoteError(reply.error_type, reply.error_message)
        return TCPChannel(sock)

    if retry is None:
        return attempt()
    return retry_call(attempt, retry, sleep=sleep)
