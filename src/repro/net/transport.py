"""Transports: in-process channels and real TCP sockets.

Two interchangeable ways for a client to reach an RPC server:

* :class:`LocalTransport` — the client thread calls straight into the
  server's dispatcher (after the same handshake/auth path).  This mirrors
  the paper's multi-threaded server — concurrency comes from the client
  threads themselves — with negligible transport overhead, so throughput
  benchmarks measure the server, not the plumbing.  An optional per-call
  ``latency`` models a network round trip in real time.
* :class:`TCPServerTransport` / :func:`connect_tcp` — a real socket server
  with length-prefixed frames and a handler thread per connection, used by
  the examples to run a genuinely distributed RLS on localhost.

The TCP path speaks protocol v2 when both ends do (negotiated in the
Hello handshake, see docs/PROTOCOL.md): requests carry correlation ids so
one socket can have many requests in flight, and bursts of requests
coalesce into a single :class:`~repro.net.messages.Batch` frame that the
server decodes once and answers in one frame.  Receive paths fill
preallocated per-connection buffers via ``recv_into`` instead of
allocating per read.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.net.errors import ProtocolError, TransportClosedError
from repro.net.messages import (
    PRINCIPAL_ATTRIBUTE,
    PROTOCOL_VERSION,
    Batch,
    Hello,
    Request,
    Response,
    encode_message_into,
    message_from_bytes,
)
from repro.net.retry import RetryPolicy, retry_call
from repro.obs import tracing

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.rpc import RPCServer

_FRAME = struct.Struct("<I")
_MAX_FRAME = 256 * 1024 * 1024  # 256 MiB: a 5M-entry Bloom filter is ~6 MiB


class PendingResponse:
    """Placeholder for the response to a pipelined request.

    Completed by the channel (immediately for synchronous channels; by
    the response-dispatch reader for pipelined TCP).  ``get()`` never
    blocks — call :meth:`Channel.drain` first.
    """

    __slots__ = ("response", "exc", "done")

    def __init__(self) -> None:
        self.response: Response | None = None
        self.exc: BaseException | None = None
        self.done = False

    def _set(self, response: Response) -> None:
        self.response = response
        self.done = True

    def _set_exc(self, exc: BaseException) -> None:
        self.exc = exc
        self.done = True

    def get(self) -> Response:
        if not self.done:
            raise RuntimeError("pending response not complete; drain() first")
        if self.exc is not None:
            raise self.exc
        assert self.response is not None
        return self.response


class Channel:
    """Client-side handle to a server: synchronous request/response,
    plus a pipelined ``submit``/``flush``/``drain`` surface.

    The base implementation completes each submit synchronously, so
    callers can use the pipelined API uniformly over any channel; only
    transports that really pipeline (TCP v2) override it.
    """

    #: True when submit() genuinely overlaps requests on the wire.
    pipelined = False

    def request(self, request: Request) -> Response:
        raise NotImplementedError

    def submit(self, request: Request) -> PendingResponse:
        pending = PendingResponse()
        try:
            pending._set(self.request(request))
        except Exception as exc:
            pending._set_exc(exc)
        return pending

    def flush(self) -> None:
        """Write any buffered submits to the wire (no-op when synchronous)."""

    def drain(self) -> None:
        """Flush, then wait until every outstanding submit has completed."""
        self.flush()

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "Channel":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# In-process transport
# ---------------------------------------------------------------------------


class LocalTransport:
    """In-process transport endpoint for one RPC server.

    The transport keeps a registry so clients can connect by name, the way
    TCP clients connect by host:port.

    ``service_time`` models per-server *capacity* (as opposed to the
    channel-level ``latency``, which models the network round trip and is
    paid concurrently by every caller): requests serialize through one
    modeled service stage of that duration, capping the endpoint at
    ~1/service_time ops/s no matter how many client threads pile on — the
    Figure 6 saturation plateau.  Multi-server experiments (shard
    scale-out) rely on this: each in-process server gets its own stage,
    so aggregate throughput genuinely scales with server count.
    """

    _registry: dict[str, "LocalTransport"] = {}
    _registry_lock = threading.Lock()

    def __init__(
        self,
        server: "RPCServer",
        name: str | None = None,
        service_time: float = 0.0,
    ) -> None:
        self.server = server
        self.name = name
        self.service_time = service_time
        self._service_lock = threading.Lock()
        self.closed = False
        metrics = server.metrics
        self._m_bytes_in = metrics.counter("net.bytes_in", transport="local")
        self._m_bytes_out = metrics.counter("net.bytes_out", transport="local")
        self._m_connections = metrics.counter(
            "net.connections_total", transport="local"
        )
        if name is not None:
            with LocalTransport._registry_lock:
                LocalTransport._registry[name] = self

    @classmethod
    def lookup(cls, name: str) -> "LocalTransport":
        with cls._registry_lock:
            transport = cls._registry.get(name)
        if transport is None or transport.closed:
            raise TransportClosedError(f"no local endpoint named {name!r}")
        return transport

    def open_channel(
        self,
        credential: bytes | None = None,
        latency: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
        principal: str | None = None,
    ) -> "LocalChannel":
        if self.closed:
            raise TransportClosedError("transport closed")
        attributes = (
            {PRINCIPAL_ATTRIBUTE: principal} if principal is not None else {}
        )
        ctx = self.server.handshake(
            Hello(credential=credential, attributes=attributes), peer="local"
        )
        self._m_connections.inc()
        return LocalChannel(self, ctx, latency, sleep)

    def close(self) -> None:
        self.closed = True
        if self.name is not None:
            with LocalTransport._registry_lock:
                LocalTransport._registry.pop(self.name, None)


class LocalChannel(Channel):
    """Channel that invokes the server dispatcher in the caller's thread."""

    def __init__(
        self,
        transport: LocalTransport,
        ctx: Any,
        latency: float,
        sleep: Callable[[float], None],
    ) -> None:
        self._transport = transport
        self._ctx = ctx
        self._latency = latency
        self._sleep = sleep
        self._closed = False

    def request(self, request: Request) -> Response:
        if self._closed or self._transport.closed:
            raise TransportClosedError("channel closed")
        if self._latency > 0:
            self._sleep(self._latency)
        service_time = self._transport.service_time
        if service_time > 0:
            # Serialized modeled service stage: holding the lock while
            # sleeping is the model — it is what bounds this endpoint's
            # throughput at ~1/service_time regardless of caller count.
            with self._transport._service_lock:
                self._sleep(service_time)
        # Round-trip through the wire codec so the serialization cost and
        # type constraints are identical to the TCP path.
        wire = request.to_bytes()
        with tracing.span("transport.decode"):
            decoded = message_from_bytes(wire)
        assert isinstance(decoded, Request)
        self._transport._m_bytes_in.inc(len(wire))
        server = self._transport.server
        response = server.handle(self._ctx, decoded)
        reply_wire = response.to_bytes()
        self._transport._m_bytes_out.inc(len(reply_wire))
        usage = server.usage
        if usage is not None:
            usage.record_bytes(
                self._ctx.usage_principal, len(wire), len(reply_wire)
            )
        return message_from_bytes(reply_wire)  # type: ignore[return-value]

    def close(self) -> None:
        self._closed = True


def connect_local(
    name: str,
    credential: bytes | None = None,
    latency: float = 0.0,
    principal: str | None = None,
) -> LocalChannel:
    """Connect to a named in-process server endpoint."""
    return LocalTransport.lookup(name).open_channel(
        credential, latency, principal=principal
    )


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------


def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_FRAME.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise TransportClosedError("peer closed connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> bytes:
    header = _recv_exact(sock, _FRAME.size)
    (length,) = _FRAME.unpack(header)
    if length > _MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    return _recv_exact(sock, length)


def _recv_exact_into(sock: socket.socket, view: memoryview) -> None:
    offset = 0
    end = len(view)
    while offset < end:
        n = sock.recv_into(view[offset:])
        if n == 0:
            raise TransportClosedError("peer closed connection")
        offset += n


class _FrameIO:
    """Per-connection reusable frame buffers (one reader/writer at a time).

    Receives fill a preallocated ``bytearray`` via ``recv_into`` — no
    per-read chunk allocation or join — and hand back a ``memoryview``
    that is valid until the next ``recv_frame`` call (the codec
    materializes decoded values, so this is safe).  Sends build the
    4-byte length prefix and payload in one reused buffer so each frame
    is a single ``sendall``.
    """

    __slots__ = ("_recv_buf", "_header", "_send_buf")

    def __init__(self) -> None:
        self._recv_buf = bytearray(64 * 1024)
        self._header = bytearray(_FRAME.size)
        self._send_buf = bytearray()

    def recv_frame(self, sock: socket.socket) -> memoryview:
        header = memoryview(self._header)
        _recv_exact_into(sock, header)
        (length,) = _FRAME.unpack(header)
        if length > _MAX_FRAME:
            raise ProtocolError(f"frame of {length} bytes exceeds limit")
        if length > len(self._recv_buf):
            self._recv_buf = bytearray(length)
        view = memoryview(self._recv_buf)[:length]
        _recv_exact_into(sock, view)
        return view

    def send_message(self, sock: socket.socket, message: Any) -> int:
        """Encode ``message`` and send it as one frame; returns frame size."""
        buf = self._send_buf
        del buf[:]
        buf += b"\x00\x00\x00\x00"
        encode_message_into(buf, message)
        _FRAME.pack_into(buf, 0, len(buf) - _FRAME.size)
        sock.sendall(buf)
        return len(buf)


class TCPServerTransport:
    """Socket listener feeding connections to an RPC server.

    One handler thread per connection, like the Globus RLS server's
    thread-per-connection model.  A pipelined (v2) client may have many
    requests in flight; the connection thread answers them in arrival
    order, and whole bursts arrive as one ``Batch`` frame that is decoded
    once and answered with one ``Batch`` frame.
    """

    def __init__(self, server: "RPCServer", host: str = "127.0.0.1", port: int = 0):
        self.server = server
        metrics = server.metrics
        self._m_bytes_in = metrics.counter("net.bytes_in", transport="tcp")
        self._m_bytes_out = metrics.counter("net.bytes_out", transport="tcp")
        self._m_conns_total = metrics.counter(
            "net.connections_total", transport="tcp"
        )
        self._m_conns_active = metrics.gauge(
            "net.connections_active", transport="tcp"
        )
        self._m_batches = metrics.counter("net.batch_frames", transport="tcp")
        self._m_protocol_errors = metrics.counter(
            "net.protocol_errors", transport="tcp"
        )
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._closed = threading.Event()
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"rls-accept-{self.port}", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - platform without NODELAY
                pass
            with self._conns_lock:
                if self._closed.is_set():
                    conn.close()
                    return
                self._conns.add(conn)
                # Reap finished handler threads so connection churn does
                # not grow the list without bound.
                self._threads = [t for t in self._threads if t.is_alive()]
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, addr),
                name=f"rls-conn-{addr[1]}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket, addr: tuple) -> None:
        from repro.obs.profile import register_thread, unregister_thread

        peer = f"{addr[0]}:{addr[1]}"
        register_thread("rpc.worker")
        self._m_conns_total.inc()
        self._m_conns_active.inc()
        io = _FrameIO()
        try:
            with conn:
                try:
                    hello = message_from_bytes(io.recv_frame(conn))
                    if not isinstance(hello, Hello):
                        raise ProtocolError("expected Hello")
                    try:
                        ctx = self.server.handshake(hello, peer=peer)
                    except Exception as exc:  # auth failure -> error + close
                        io.send_message(conn, Response.failure(exc))
                        return
                    proto = max(1, min(hello.version, PROTOCOL_VERSION))
                    # v1 clients ignore the welcome value; v2 clients read
                    # the negotiated protocol version out of the dict.
                    io.send_message(
                        conn,
                        Response.success({"message": "welcome", "proto": proto}),
                    )
                    usage = self.server.usage
                    while not self._closed.is_set():
                        frame = io.recv_frame(conn)
                        frame_in = len(frame) + _FRAME.size
                        self._m_bytes_in.inc(frame_in)
                        with tracing.span("transport.decode"):
                            message = message_from_bytes(frame)
                        if isinstance(message, Request):
                            reply = self.server.handle(ctx, message)
                            if message.id is not None:
                                reply = _with_id(reply, message.id)
                            sent = io.send_message(conn, reply)
                            self._m_bytes_out.inc(sent)
                            if usage is not None:
                                usage.record_bytes(
                                    ctx.usage_principal, frame_in, sent
                                )
                        elif isinstance(message, Batch) and proto >= 2:
                            # Decoded once above; dispatch the whole burst
                            # on this thread — no per-message handoff —
                            # and answer with a single frame.
                            self._m_batches.inc()
                            replies = self.server.handle_batch(ctx, message)
                            sent = io.send_message(conn, replies)
                            self._m_bytes_out.inc(sent)
                            if usage is not None:
                                usage.record_bytes(
                                    ctx.usage_principal, frame_in, sent
                                )
                        else:
                            raise ProtocolError(
                                f"unexpected {type(message).__name__} frame"
                            )
                except ProtocolError as exc:
                    # Malformed or oversized frame.  Tell the client with a
                    # typed, non-retryable error before closing — a silent
                    # drop looks like a network failure, and a retrying
                    # client would re-send a possibly-completed mutation.
                    # The listener and every other connection stay healthy.
                    self._m_protocol_errors.inc()
                    try:
                        io.send_message(conn, Response.failure(exc))
                    except OSError:
                        pass
                    return
                except (TransportClosedError, ConnectionError, OSError):
                    raise
                except Exception as exc:  # defense in depth: keep the
                    # listener and sibling connections alive no matter
                    # what escapes a handler.
                    self._m_protocol_errors.inc()
                    try:
                        io.send_message(conn, Response.failure(exc))
                    except OSError:
                        pass
                    return
        except (TransportClosedError, ConnectionError, OSError):
            return
        finally:
            unregister_thread()
            self._m_conns_active.dec()
            with self._conns_lock:
                self._conns.discard(conn)

    def close(self, join_timeout: float = 5.0) -> None:
        """Stop accepting, shut down live connections, join handlers."""
        self._closed.set()
        # A thread blocked in accept() is not reliably interrupted by
        # close() alone: shutdown() wakes it on Linux, and the self-connect
        # poke covers platforms where shutdown() of a listener is a no-op.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            host = "127.0.0.1" if self.host in ("0.0.0.0", "") else self.host
            socket.create_connection((host, self.port), timeout=0.5).close()
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        with self._conns_lock:
            live = list(self._conns)
            self._conns.clear()
            threads = list(self._threads)
            self._threads = []
        for conn in live:
            # Unblock handler threads parked in recv(); close() alone
            # does not interrupt a blocking read on every platform.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._accept_thread.join(timeout=join_timeout)
        for thread in threads:
            thread.join(timeout=join_timeout)


def _with_id(response: Response, request_id: int) -> Response:
    if response.id == request_id:
        return response
    return Response(
        ok=response.ok,
        value=response.value,
        error_type=response.error_type,
        error_message=response.error_message,
        id=request_id,
    )


class TCPChannel(Channel):
    """Client side of one TCP connection.

    On a v2 connection many requests can be in flight at once: writers
    append to a send queue under a short lock, ``flush`` coalesces queued
    requests into one ``Batch`` frame, and whichever waiter arrives first
    becomes the *response-dispatch reader* — it reads frames off the
    socket and completes pending requests by correlation id until its own
    answer shows up, then hands the reader role to the next waiter.  No
    background thread, no lock held across a round trip.

    On a v1 connection (old peer) the channel falls back to the classic
    one-outstanding-request behavior under a single lock.
    """

    def __init__(self, sock: socket.socket, proto: int = 1) -> None:
        self._sock = sock
        self.proto = proto
        self._closed = False
        self._lock = threading.Lock()  # v1 round trip; v2 socket writes
        self._io = _FrameIO()
        # v2 pipelining state, all guarded by _cv's lock.
        self._cv = threading.Condition()
        self._pending: dict[int, PendingResponse] = {}
        self._queue: list[Request] = []
        self._next_id = 1
        self._reader_active = False
        self._broken: BaseException | None = None

    @property
    def pipelined(self) -> bool:
        return self.proto >= 2

    # -- v1 path ---------------------------------------------------------

    def _request_serial(self, request: Request) -> Response:
        with self._lock:
            _send_frame(self._sock, request.to_bytes())
            message = message_from_bytes(self._io.recv_frame(self._sock))
        if not isinstance(message, Response):
            raise ProtocolError("expected Response")
        return message

    # -- v2 pipelined path ----------------------------------------------

    def submit(self, request: Request) -> PendingResponse:
        if self.proto < 2:
            return super().submit(request)
        pending = PendingResponse()
        with self._cv:
            if self._closed or self._broken is not None:
                pending._set_exc(
                    self._broken or TransportClosedError("channel closed")
                )
                return pending
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = pending
            # submit() takes ownership of the request object: stamp the
            # correlation id in place rather than rebuilding the (frozen)
            # dataclass — callers hand over freshly built requests.
            object.__setattr__(request, "id", request_id)
            self._queue.append(request)
        return pending

    def flush(self) -> None:
        if self.proto < 2:
            return
        with self._cv:
            if not self._queue:
                return
            batch = self._queue
            self._queue = []
        message: Any = batch[0] if len(batch) == 1 else Batch(tuple(batch))
        try:
            with self._lock:
                self._io.send_message(self._sock, message)
        except (OSError, ConnectionError) as exc:
            self._fail_all(exc)
            raise

    def drain(self) -> None:
        if self.proto < 2:
            return
        self.flush()
        while True:
            with self._cv:
                target = next(iter(self._pending.values()), None)
            if target is None:
                return
            self._await(target)

    def request(self, request: Request) -> Response:
        if self._closed:
            raise TransportClosedError("channel closed")
        if self.proto < 2:
            return self._request_serial(request)
        pending = self.submit(request)
        self.flush()
        return self._await(pending)

    def _await(self, pending: PendingResponse) -> Response:
        """Wait for ``pending``, taking the reader role when it is free."""
        while True:
            with self._cv:
                while True:
                    if pending.done:
                        return pending.get()
                    if not self._reader_active:
                        self._reader_active = True
                        break
                    self._cv.wait()
            # Reader role: read and dispatch frames until our response
            # arrives.  The socket is only ever read by the one thread
            # holding the reader role, so the reused recv buffer is safe.
            try:
                while not pending.done:
                    frame = self._io.recv_frame(self._sock)
                    with tracing.span("transport.decode"):
                        message = message_from_bytes(frame)
                    self._dispatch(message)
            except BaseException as exc:
                self._fail_all(exc)
            finally:
                with self._cv:
                    self._reader_active = False
                    self._cv.notify_all()
            return pending.get()

    def _dispatch(self, message: Any) -> None:
        if isinstance(message, Batch):
            # One lock round and one wake-up for the whole burst.
            plain = []
            with self._cv:
                for item in message.items:
                    if (
                        isinstance(item, Response)
                        and item.id is not None
                    ):
                        pending = self._pending.pop(item.id, None)
                        if pending is not None:
                            pending._set(item)
                    else:
                        plain.append(item)
                self._cv.notify_all()
            for item in plain:
                self._dispatch(item)
            return
        if not isinstance(message, Response):
            raise ProtocolError("expected Response")
        if message.id is None:
            # Connection-level failure (e.g. the server could not frame or
            # parse something we sent): no request can be matched, and the
            # server closes after sending, so fail everything in flight.
            if not message.ok:
                from repro.net.errors import RemoteError

                raise RemoteError(message.error_type, message.error_message)
            raise ProtocolError("response without correlation id")
        with self._cv:
            pending = self._pending.pop(message.id, None)
            if pending is not None:
                pending._set(message)
                self._cv.notify_all()

    def _fail_all(self, exc: BaseException) -> None:
        with self._cv:
            if self._broken is None:
                self._broken = exc
            for pending in self._pending.values():
                if not pending.done:
                    pending._set_exc(exc)
            self._pending.clear()
            self._queue.clear()
            self._cv.notify_all()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fail_all(TransportClosedError("channel closed"))
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass


def connect_tcp(
    host: str,
    port: int,
    credential: bytes | None = None,
    timeout: float = 10.0,
    retry: RetryPolicy | None = None,
    sleep: Callable[[float], None] = time.sleep,
    principal: str | None = None,
) -> TCPChannel:
    """Open a TCP channel and perform the Hello handshake.

    The Hello advertises :data:`~repro.net.messages.PROTOCOL_VERSION`;
    the server answers with the version it will speak (old servers answer
    a bare ``"welcome"`` string, which negotiates down to v1), so old and
    new peers interoperate in both directions.

    With a :class:`~repro.net.retry.RetryPolicy`, connection establishment
    (socket connect + handshake) is retried with backoff — the reconnect
    path an LRC takes when its RLI restarts mid-deployment.  The policy's
    ``call_timeout`` (when set) overrides ``timeout`` as the per-attempt
    socket timeout.
    """

    def attempt() -> TCPChannel:
        attempt_timeout = timeout
        if retry is not None and retry.call_timeout is not None:
            attempt_timeout = retry.call_timeout
        sock = socket.create_connection((host, port), timeout=attempt_timeout)
        sock.settimeout(attempt_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - platform without NODELAY
            pass
        attributes = (
            {PRINCIPAL_ATTRIBUTE: principal} if principal is not None else {}
        )
        try:
            _send_frame(
                sock,
                Hello(
                    version=PROTOCOL_VERSION,
                    credential=credential,
                    attributes=attributes,
                ).to_bytes(),
            )
            reply = message_from_bytes(_recv_frame(sock))
        except BaseException:
            sock.close()
            raise
        if not isinstance(reply, Response):
            sock.close()
            raise ProtocolError("expected handshake Response")
        if not reply.ok:
            sock.close()
            from repro.net.errors import RemoteError

            raise RemoteError(reply.error_type, reply.error_message)
        proto = 1
        if isinstance(reply.value, dict):
            advertised = reply.value.get("proto", 1)
            if type(advertised) is int:
                proto = max(1, min(advertised, PROTOCOL_VERSION))
        return TCPChannel(sock, proto=proto)

    if retry is None:
        return attempt()
    return retry_call(attempt, retry, sleep=sleep)
