"""Telemetry subsystem: metrics, tracing, time series, and analysis.

The paper evaluates the RLS purely from the outside (operation rates
measured by the client harness); this package gives the reproduction the
*inside* view — where time goes within the server, database and update
pipeline — and the *time* axis the paper's figures are drawn on:

* :mod:`repro.obs.metrics` — counters, gauges, log-bucketed latency
  histograms, and a thread-safe :class:`MetricsRegistry` whose snapshots
  merge across servers and subtract across time windows;
* :mod:`repro.obs.tracing` — :class:`Span`/:class:`Tracer` with context
  propagation through the RPC layer, plus :class:`SpanSink` tail-based
  retention (error spans and slow spans survive buffer wrap);
* :mod:`repro.obs.timeseries` — bounded ring-buffer series and the
  :class:`Scraper` that turns periodic snapshots into rates;
* :mod:`repro.obs.collector` — :class:`ClusterCollector`, scraping every
  LRC/RLI of a deployment and deriving cluster-wide signals;
* :mod:`repro.obs.analyze` — pathology detectors (VACUUM sawtooth,
  staleness-SLO burn, SLO burn-rate, queue saturation, baseline
  regression, stuck threads);
* :mod:`repro.obs.assemble` — :class:`TraceAssembler`, stitching span
  fragments gathered from every node of a cluster into one cross-node
  tree (explicit gap markers for missing fragments) and attributing the
  trace's wall time to critical-path segments;
* :mod:`repro.obs.slo` — per-operation-class SLIs from the metric
  stream, multi-window multi-burn-rate alerting, and error-budget
  accounting (:class:`SLITracker` / :class:`SLIRecorder`);
* :mod:`repro.obs.profile` — wall-clock :class:`SamplingProfiler` over
  ``sys._current_frames()`` folding samples into a :class:`StackProfile`,
  a thread registry (:func:`register_thread` / :class:`thread_role`)
  attributing samples to named roles, and thread-state introspection;
* :mod:`repro.obs.flight` — :class:`FlightRecorder`, a bounded ring of
  typed events (RPC dispatch, update delivery, WAL flush, errors) with
  error-preferential retention and automatic black-box dumps;
* exposure surfaces wired elsewhere — the ``admin_stats``/``admin_metrics``
  /``admin_traces``/``admin_trace``/``admin_slo``/``admin_profile``
  /``admin_flight`` RPCs, ``GET /metrics`` and ``GET /admin/slo`` /
  ``GET /admin/trace/<id>`` on the HTTP gateway, and the ``rls stats`` /
  ``rls top`` / ``rls trace`` / ``rls slo`` / ``rls profile`` / ``rls
  flight`` CLI commands.

Everything defaults to off: with no registry passed and no tracer
installed, instrumentation sites hit no-op singletons.  See
``docs/OBSERVABILITY.md`` for the metric-name and span taxonomy, scraper
and detector semantics, and the benchmark artifact schema.
"""

from repro.obs.analyze import (
    Detection,
    analyze_store,
    compare_baseline,
    detect_queue_saturation,
    detect_sawtooth,
    detect_slo_burn,
    detect_staleness_burn,
    detect_stuck_threads,
)
from repro.obs.assemble import (
    AssembledTrace,
    Segment,
    TraceAssembler,
    TraceSource,
    render_critical_path,
    render_trace,
    segment_kind,
    sink_source,
    tracer_source,
)
from repro.obs.flight import (
    FlightEvent,
    FlightRecorder,
)
from repro.obs.collector import (
    ClusterCollector,
    ClusterSample,
    NodeSample,
    NodeSource,
    client_source,
    registry_source,
    server_source,
)
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_REGISTRY,
    NullRegistry,
    merge_snapshots,
    metric_key,
    split_metric_key,
)
from repro.obs.profile import (
    SamplingProfiler,
    StackProfile,
    fold_stack,
    register_thread,
    registered_threads,
    thread_role,
    unregister_thread,
)
from repro.obs.slo import (
    DEFAULT_LATENCY_THRESHOLDS,
    OPERATION_CLASSES,
    SLIRecorder,
    SLITracker,
    SLOPolicy,
    classify_method,
)
from repro.obs.timeseries import (
    ScrapeResult,
    Scraper,
    SeriesStore,
    TimeSeries,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    SpanSink,
    Tracer,
    current_sink,
    current_tracer,
    format_tree,
    install_tracer,
    span,
    walk_tree,
)

__all__ = [
    "AssembledTrace",
    "BUCKET_BOUNDS",
    "ClusterCollector",
    "ClusterSample",
    "Counter",
    "DEFAULT_LATENCY_THRESHOLDS",
    "Detection",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NodeSample",
    "NodeSource",
    "NullRegistry",
    "OPERATION_CLASSES",
    "SLIRecorder",
    "SLITracker",
    "SLOPolicy",
    "SamplingProfiler",
    "ScrapeResult",
    "Scraper",
    "Segment",
    "SeriesStore",
    "Span",
    "SpanSink",
    "StackProfile",
    "TimeSeries",
    "TraceAssembler",
    "TraceSource",
    "Tracer",
    "analyze_store",
    "classify_method",
    "client_source",
    "compare_baseline",
    "current_sink",
    "current_tracer",
    "detect_queue_saturation",
    "detect_sawtooth",
    "detect_slo_burn",
    "detect_staleness_burn",
    "detect_stuck_threads",
    "fold_stack",
    "format_tree",
    "install_tracer",
    "merge_snapshots",
    "metric_key",
    "register_thread",
    "registered_threads",
    "registry_source",
    "render_critical_path",
    "render_trace",
    "segment_kind",
    "server_source",
    "sink_source",
    "span",
    "split_metric_key",
    "thread_role",
    "tracer_source",
    "unregister_thread",
    "walk_tree",
]
