"""Telemetry subsystem: metrics, tracing, and live stats surfaces.

The paper evaluates the RLS purely from the outside (operation rates
measured by the client harness); this package gives the reproduction the
*inside* view — where time goes within the server, database and update
pipeline — through three pieces:

* :mod:`repro.obs.metrics` — counters, gauges, log-bucketed latency
  histograms, and a thread-safe :class:`MetricsRegistry` whose snapshots
  merge across servers and subtract across time windows;
* :mod:`repro.obs.tracing` — :class:`Span`/:class:`Tracer` with context
  propagation through the RPC layer, so one client call yields a span
  tree covering transport decode, ACL check, SQL execution and WAL flush;
* exposure surfaces wired elsewhere — the ``admin_stats``/``admin_metrics``
  RPCs, ``GET /metrics`` on the HTTP gateway, the ``rls stats`` CLI
  command, and benchmark report breakdowns.

Everything defaults to off: with no registry passed and no tracer
installed, instrumentation sites hit no-op singletons.  See
``docs/OBSERVABILITY.md`` for the metric-name and span taxonomy.
"""

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_REGISTRY,
    NullRegistry,
    merge_snapshots,
    metric_key,
    split_metric_key,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    current_tracer,
    format_tree,
    install_tracer,
    span,
    walk_tree,
)

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NullRegistry",
    "Span",
    "Tracer",
    "current_tracer",
    "format_tree",
    "install_tracer",
    "merge_snapshots",
    "metric_key",
    "span",
    "split_metric_key",
    "walk_tree",
]
