"""Telemetry subsystem: metrics, tracing, time series, and analysis.

The paper evaluates the RLS purely from the outside (operation rates
measured by the client harness); this package gives the reproduction the
*inside* view — where time goes within the server, database and update
pipeline — and the *time* axis the paper's figures are drawn on:

* :mod:`repro.obs.metrics` — counters, gauges, log-bucketed latency
  histograms, and a thread-safe :class:`MetricsRegistry` whose snapshots
  merge across servers and subtract across time windows;
* :mod:`repro.obs.tracing` — :class:`Span`/:class:`Tracer` with context
  propagation through the RPC layer, plus :class:`SpanSink` tail-based
  retention (error spans and slow spans survive buffer wrap);
* :mod:`repro.obs.timeseries` — bounded ring-buffer series and the
  :class:`Scraper` that turns periodic snapshots into rates;
* :mod:`repro.obs.collector` — :class:`ClusterCollector`, scraping every
  LRC/RLI of a deployment and deriving cluster-wide signals;
* :mod:`repro.obs.analyze` — pathology detectors (VACUUM sawtooth,
  staleness-SLO burn, queue saturation, baseline regression, stuck
  threads);
* :mod:`repro.obs.profile` — wall-clock :class:`SamplingProfiler` over
  ``sys._current_frames()`` folding samples into a :class:`StackProfile`,
  a thread registry (:func:`register_thread` / :class:`thread_role`)
  attributing samples to named roles, and thread-state introspection;
* :mod:`repro.obs.flight` — :class:`FlightRecorder`, a bounded ring of
  typed events (RPC dispatch, update delivery, WAL flush, errors) with
  error-preferential retention and automatic black-box dumps;
* exposure surfaces wired elsewhere — the ``admin_stats``/``admin_metrics``
  /``admin_traces``/``admin_profile``/``admin_flight`` RPCs,
  ``GET /metrics`` on the HTTP gateway, and the ``rls stats`` / ``rls
  top`` / ``rls trace`` / ``rls profile`` / ``rls flight`` CLI commands.

Everything defaults to off: with no registry passed and no tracer
installed, instrumentation sites hit no-op singletons.  See
``docs/OBSERVABILITY.md`` for the metric-name and span taxonomy, scraper
and detector semantics, and the benchmark artifact schema.
"""

from repro.obs.analyze import (
    Detection,
    analyze_store,
    compare_baseline,
    detect_queue_saturation,
    detect_sawtooth,
    detect_staleness_burn,
    detect_stuck_threads,
)
from repro.obs.flight import (
    FlightEvent,
    FlightRecorder,
)
from repro.obs.collector import (
    ClusterCollector,
    ClusterSample,
    NodeSample,
    NodeSource,
    client_source,
    registry_source,
    server_source,
)
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_REGISTRY,
    NullRegistry,
    merge_snapshots,
    metric_key,
    split_metric_key,
)
from repro.obs.profile import (
    SamplingProfiler,
    StackProfile,
    fold_stack,
    register_thread,
    registered_threads,
    thread_role,
    unregister_thread,
)
from repro.obs.timeseries import (
    ScrapeResult,
    Scraper,
    SeriesStore,
    TimeSeries,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    SpanSink,
    Tracer,
    current_sink,
    current_tracer,
    format_tree,
    install_tracer,
    span,
    walk_tree,
)

__all__ = [
    "BUCKET_BOUNDS",
    "ClusterCollector",
    "ClusterSample",
    "Counter",
    "Detection",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NodeSample",
    "NodeSource",
    "NullRegistry",
    "SamplingProfiler",
    "ScrapeResult",
    "Scraper",
    "SeriesStore",
    "Span",
    "SpanSink",
    "StackProfile",
    "TimeSeries",
    "Tracer",
    "analyze_store",
    "client_source",
    "compare_baseline",
    "current_sink",
    "current_tracer",
    "detect_queue_saturation",
    "detect_sawtooth",
    "detect_staleness_burn",
    "detect_stuck_threads",
    "fold_stack",
    "format_tree",
    "install_tracer",
    "merge_snapshots",
    "metric_key",
    "register_thread",
    "registered_threads",
    "registry_source",
    "server_source",
    "span",
    "split_metric_key",
    "thread_role",
    "unregister_thread",
    "walk_tree",
]
