"""Automatic pathology detection over collected time series.

Each detector encodes one failure shape the paper's evaluation surfaces:

* :func:`detect_sawtooth` — periodic throughput collapse-and-recovery, the
  PostgreSQL dead-tuple/VACUUM cycle of Figure 8;
* :func:`detect_staleness_burn` — an RLI whose soft-state view stays older
  than its SLO (the §3.2/§4.2 consistency budget) for a sustained window;
* :func:`detect_queue_saturation` — a queue-depth gauge (WAL buffer,
  update backlog) growing without drain, the precursor of the Figure 13
  contention knee;
* :func:`compare_baseline` — throughput regression against a recorded
  baseline series (used by the benchmark trajectory artifacts);
* :func:`detect_stuck_threads` — a server thread pinned on the same
  non-idle frame across consecutive profiler samples while requests are
  in flight (fed by :class:`repro.obs.profile.SamplingProfiler`);
* :func:`detect_slo_burn` — sustained error-budget burn in a
  ``slo.burn_rate`` series (fed by :class:`repro.obs.slo.SLIRecorder` or
  the cluster simulator's fault runs);
* :func:`detect_noisy_neighbor` — a queue-saturation or SLO-burn window
  whose request traffic is dominated by one principal (fed by the
  per-principal ``usage.requests`` series from
  :class:`repro.obs.usage.UsageAccountant`).

Thresholds are fixed defaults chosen to clear measurement noise, not
tuning knobs the caller must supply: every detector is usable as
``detect_x(values)``.  The numbers are documented in
``docs/OBSERVABILITY.md``; change them there and here together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs.metrics import split_metric_key
from repro.obs.timeseries import SeriesStore, TimeSeries

#: A sawtooth recovery must jump at least this fraction in one step.
SAWTOOTH_MIN_RECOVERY = 0.10
#: ... after the series decayed at least this fraction from its local peak.
SAWTOOTH_MIN_DECAY = 0.08

#: Staleness burn: fraction of recent samples over the SLO that fires.
STALENESS_BURN_FRACTION = 0.5
#: Minimum samples before the staleness detector will speak.
STALENESS_MIN_SAMPLES = 4

#: Queue saturation: depth must grow by this factor over the run...
QUEUE_GROWTH_FACTOR = 2.0
#: ... across at least this many consecutive non-decreasing samples...
QUEUE_MIN_RUN = 5
#: ... and end above this absolute depth (tiny queues are not pathologies).
QUEUE_MIN_DEPTH = 8.0

#: Baseline regression tolerance (fractional drop in the mean).
BASELINE_TOLERANCE = 0.15

#: Consecutive identical non-idle top frames before a thread is "stuck".
STUCK_MIN_SAMPLES = 5

#: SLO burn-rate thresholds (see repro.obs.slo): fast burn is critical,
#: sustained on-schedule burn is a warning.
SLO_FAST_BURN = 14.4
SLO_SLOW_BURN = 1.0
#: Consecutive over-threshold samples before the burn detector fires.
SLO_BURN_MIN_RUN = 3

#: Noisy neighbor: one principal must hold at least this request share
#: inside a saturation/burn window to be named the dominant consumer...
NOISY_NEIGHBOR_SHARE = 0.5
#: ... and the window must contain at least this many requests in total
#: (an idle cluster where one probe issued 3 of 4 requests is not noisy).
NOISY_NEIGHBOR_MIN_REQUESTS = 20.0


@dataclass
class Detection:
    """One detected pathology, plain-data for artifacts and RPC replies."""

    kind: str
    summary: str
    severity: str = "warning"
    start: float = 0.0
    end: float = 0.0
    details: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "summary": self.summary,
            "severity": self.severity,
            "start": self.start,
            "end": self.end,
            "details": dict(self.details),
        }


def _as_points(
    series: TimeSeries | Sequence[float] | Sequence[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Accept a TimeSeries, a value list, or a point list uniformly."""
    if isinstance(series, TimeSeries):
        return series.points()
    items = list(series)
    if not items:
        return []
    first = items[0]
    if isinstance(first, tuple) and len(first) == 2:
        return [(float(t), float(v)) for t, v in items]  # type: ignore[misc]
    return [(float(i), float(v)) for i, v in enumerate(items)]  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Sawtooth (Figure 8)
# ---------------------------------------------------------------------------


def detect_sawtooth(
    series: TimeSeries | Sequence[float] | Sequence[tuple[float, float]],
    min_recovery: float = SAWTOOTH_MIN_RECOVERY,
    min_decay: float = SAWTOOTH_MIN_DECAY,
) -> list[Detection]:
    """Find collapse-then-snap-back teeth in a throughput series.

    A *tooth* is a segment where the value decays from a local peak by at
    least ``min_decay`` (cumulatively) and then recovers by at least
    ``min_recovery`` in a single step — the signature of an external reset
    (VACUUM, cache rebuild, failover) rather than gradual noise.  Each
    detection reports the tooth's period (peak-to-recovery span), its
    amplitude (fractional drop from peak to trough), and the recovery
    jump.
    """
    points = _as_points(series)
    if len(points) < 3:
        return []
    detections: list[Detection] = []
    peak_t, peak_v = points[0]
    trough_t, trough_v = points[0]
    last_recovery_t: float | None = None
    for (prev_t, prev_v), (t, v) in zip(points, points[1:]):
        if v < trough_v:
            trough_t, trough_v = t, v
        decayed = peak_v > 0 and (peak_v - trough_v) / peak_v >= min_decay
        jumped = prev_v > 0 and (v - prev_v) / prev_v >= min_recovery
        if decayed and jumped and trough_t >= peak_t:
            amplitude = (peak_v - trough_v) / peak_v
            period = t - (last_recovery_t if last_recovery_t is not None
                          else peak_t)
            detections.append(
                Detection(
                    kind="sawtooth",
                    summary=(
                        f"throughput fell {amplitude * 100:.0f}% "
                        f"({peak_v:.1f} -> {trough_v:.1f}) then recovered "
                        f"{(v - prev_v) / prev_v * 100:.0f}% at t={t:g} "
                        f"(period {period:g})"
                    ),
                    start=peak_t,
                    end=t,
                    details={
                        "period": period,
                        "amplitude": amplitude,
                        "peak": peak_v,
                        "trough": trough_v,
                        "recovered_to": v,
                        "recovery_jump": (v - prev_v) / prev_v,
                    },
                )
            )
            last_recovery_t = t
            peak_t, peak_v = t, v
            trough_t, trough_v = t, v
            continue
        if v > peak_v:
            peak_t, peak_v = t, v
            trough_t, trough_v = t, v
    return detections


# ---------------------------------------------------------------------------
# Staleness SLO burn (§3.2 / §4.2)
# ---------------------------------------------------------------------------


def detect_staleness_burn(
    series: TimeSeries | Sequence[float] | Sequence[tuple[float, float]],
    slo_seconds: float,
    burn_fraction: float = STALENESS_BURN_FRACTION,
    min_samples: int = STALENESS_MIN_SAMPLES,
) -> list[Detection]:
    """Fire when soft state stays older than ``slo_seconds`` persistently.

    ``slo_seconds`` is the deployment's staleness budget — typically the
    full-update interval plus slack (a healthy index's age sawtooths just
    under it).  The detector reports the burn fraction (samples over SLO)
    and the worst observed age; it stays silent below ``min_samples``.
    """
    points = _as_points(series)
    if len(points) < min_samples:
        return []
    over = [(t, v) for t, v in points if v > slo_seconds]
    fraction = len(over) / len(points)
    if fraction < burn_fraction:
        return []
    worst_t, worst_v = max(over, key=lambda point: point[1])
    return [
        Detection(
            kind="staleness_burn",
            severity="critical" if fraction >= 0.9 else "warning",
            summary=(
                f"soft-state age exceeded the {slo_seconds:g}s SLO in "
                f"{fraction * 100:.0f}% of samples (worst {worst_v:.1f}s)"
            ),
            start=over[0][0],
            end=points[-1][0],
            details={
                "slo_seconds": slo_seconds,
                "burn_fraction": fraction,
                "worst_age": worst_v,
                "worst_at": worst_t,
                "samples": len(points),
            },
        )
    ]


# ---------------------------------------------------------------------------
# Queue-depth saturation (Figure 13 contention precursor)
# ---------------------------------------------------------------------------


def detect_queue_saturation(
    series: TimeSeries | Sequence[float] | Sequence[tuple[float, float]],
    growth_factor: float = QUEUE_GROWTH_FACTOR,
    min_run: int = QUEUE_MIN_RUN,
    min_depth: float = QUEUE_MIN_DEPTH,
) -> list[Detection]:
    """Find sustained queue growth with no drain.

    Fires on a run of at least ``min_run`` consecutive non-decreasing
    samples over which depth multiplies by ``growth_factor`` and ends at
    ``min_depth`` or more — a producer outpacing its consumer, not a
    transient burst.
    """
    points = _as_points(series)
    if len(points) < min_run:
        return []
    detections: list[Detection] = []
    run_start = 0
    for i in range(1, len(points) + 1):
        ended = i == len(points) or points[i][1] < points[i - 1][1]
        if not ended:
            continue
        run = points[run_start:i]
        run_start = i
        if len(run) < min_run:
            continue
        first_v, last_v = run[0][1], run[-1][1]
        baseline = max(first_v, 1.0)
        if last_v >= min_depth and last_v / baseline >= growth_factor:
            detections.append(
                Detection(
                    kind="queue_saturation",
                    summary=(
                        f"queue depth grew {first_v:g} -> {last_v:g} over "
                        f"{len(run)} samples without draining"
                    ),
                    start=run[0][0],
                    end=run[-1][0],
                    details={
                        "start_depth": first_v,
                        "end_depth": last_v,
                        "samples": len(run),
                        "growth": last_v / baseline,
                    },
                )
            )
    return detections


# ---------------------------------------------------------------------------
# Baseline regression (benchmark trajectories)
# ---------------------------------------------------------------------------


def compare_baseline(
    current: Sequence[float],
    baseline: Sequence[float],
    tolerance: float = BASELINE_TOLERANCE,
    name: str = "throughput",
) -> Detection | None:
    """Mean-vs-mean regression check; ``None`` when within tolerance.

    Both inputs are value sequences (e.g. the ``ops:rate`` series from two
    benchmark runs).  Higher is assumed better; a current mean more than
    ``tolerance`` below the baseline mean is a regression.
    """
    if not current or not baseline:
        return None
    current_mean = sum(current) / len(current)
    baseline_mean = sum(baseline) / len(baseline)
    if baseline_mean <= 0:
        return None
    drop = (baseline_mean - current_mean) / baseline_mean
    if drop <= tolerance:
        return None
    return Detection(
        kind="baseline_regression",
        severity="critical" if drop > 2 * tolerance else "warning",
        summary=(
            f"{name} mean {current_mean:.1f} is {drop * 100:.0f}% below "
            f"baseline {baseline_mean:.1f} (tolerance {tolerance * 100:.0f}%)"
        ),
        details={
            "current_mean": current_mean,
            "baseline_mean": baseline_mean,
            "drop": drop,
            "tolerance": tolerance,
        },
    )


# ---------------------------------------------------------------------------
# Stuck threads (sampling-profiler input)
# ---------------------------------------------------------------------------


def detect_stuck_threads(
    threads: Sequence[dict[str, Any]],
    min_samples: int = STUCK_MIN_SAMPLES,
    inflight: float = 0.0,
) -> list[Detection]:
    """Fire for threads pinned on one non-idle frame while work is queued.

    ``threads`` is the profiler's per-thread run bookkeeping
    (:meth:`~repro.obs.profile.SamplingProfiler.thread_states`): dicts
    with ``role``, ``top_frame``, ``consecutive`` (identical top-frame
    samples in a row) and ``idle``.  A thread parked in a wait primitive
    is never stuck, and with ``inflight == 0`` nothing fires — an idle
    server legitimately shows unchanging stacks.
    """
    if inflight <= 0:
        return []
    detections: list[Detection] = []
    for state in threads:
        if state.get("idle"):
            continue
        run = int(state.get("consecutive", 0))
        if run < min_samples:
            continue
        role = state.get("role", "other")
        top = state.get("top_frame", "?")
        detections.append(
            Detection(
                kind="stuck_thread",
                severity="critical" if run >= 2 * min_samples else "warning",
                summary=(
                    f"thread role={role} pinned on {top} for {run} "
                    f"consecutive samples with {inflight:g} requests in flight"
                ),
                details={
                    "ident": state.get("ident"),
                    "role": role,
                    "top_frame": top,
                    "consecutive": run,
                    "inflight": inflight,
                },
            )
        )
    return detections


# ---------------------------------------------------------------------------
# SLO burn-rate (repro.obs.slo series)
# ---------------------------------------------------------------------------


def detect_slo_burn(
    series: TimeSeries | Sequence[float] | Sequence[tuple[float, float]],
    fast_burn: float = SLO_FAST_BURN,
    slow_burn: float = SLO_SLOW_BURN,
    min_run: int = SLO_BURN_MIN_RUN,
) -> list[Detection]:
    """Fire on sustained error-budget burn in a ``slo.burn_rate`` series.

    The series values are burn rates ((1 - SLI)/(1 - target), 1.0 =
    spending the budget exactly on schedule).  A run of at least
    ``min_run`` consecutive samples at or above ``fast_burn`` is critical
    (the multi-window fast alert, seen through the scrape pipeline); a
    run at or above ``slow_burn`` that never reaches fast is a warning.
    Each qualifying run yields one detection spanning it.
    """
    points = _as_points(series)
    if len(points) < min_run:
        return []
    detections: list[Detection] = []
    run: list[tuple[float, float]] = []

    def flush() -> None:
        if len(run) < min_run:
            return
        worst = max(v for _, v in run)
        fast = worst >= fast_burn
        detections.append(
            Detection(
                kind="slo_burn",
                severity="critical" if fast else "warning",
                summary=(
                    f"error-budget burn {'>=' if fast else 'over'} "
                    f"{(fast_burn if fast else slow_burn):g}x for "
                    f"{len(run)} samples (worst {worst:.1f}x)"
                ),
                start=run[0][0],
                end=run[-1][0],
                details={
                    "samples": len(run),
                    "worst_burn": worst,
                    "fast_threshold": fast_burn,
                    "slow_threshold": slow_burn,
                },
            )
        )

    for t, v in points:
        if v >= slow_burn:
            run.append((t, v))
        else:
            flush()
            run = []
    flush()
    return detections


# ---------------------------------------------------------------------------
# Noisy neighbor (per-principal usage attribution)
# ---------------------------------------------------------------------------

#: Detections of these kinds define the windows a neighbor can pollute.
_NOISY_TRIGGER_KINDS = ("queue_saturation", "slo_burn")


def detect_noisy_neighbor(
    store: SeriesStore,
    triggers: Sequence[Detection],
    share_threshold: float = NOISY_NEIGHBOR_SHARE,
    min_requests: float = NOISY_NEIGHBOR_MIN_REQUESTS,
) -> list[Detection]:
    """Attribute saturation/burn windows to a dominant principal.

    For every queue-saturation or SLO-burn detection in ``triggers``, sum
    each principal's ``usage.requests{principal=...}`` samples inside the
    detection window.  If one principal holds at least ``share_threshold``
    of a window containing ``min_requests`` or more requests, that window
    has a noisy neighbor — the dominant consumer is named, which is the
    evidence ROADMAP item 4's admission control needs.  With traffic spread
    evenly (or no usage series recorded) nothing fires.
    """
    usage: dict[str, list[tuple[float, float]]] = {}
    for key, series in store.items():
        if "usage.requests" not in key:
            continue
        _, labels = split_metric_key(key)
        principal = labels.get("principal")
        if principal is None:
            continue
        usage.setdefault(principal, []).extend(series.points())
    if not usage:
        return []
    detections: list[Detection] = []
    attributed: set[tuple[str, float, float]] = set()
    for trigger in triggers:
        if trigger.kind not in _NOISY_TRIGGER_KINDS:
            continue
        start, end = trigger.start, trigger.end
        totals: dict[str, float] = {}
        for principal, points in usage.items():
            in_window = [v for t, v in points if start <= t <= end]
            totals[principal] = sum(in_window)
        total = sum(totals.values())
        if total < min_requests:
            continue
        principal, count = max(totals.items(), key=lambda item: item[1])
        share = count / total
        if share < share_threshold:
            continue
        window = (principal, start, end)
        if window in attributed:
            continue  # several shards can flag the same window
        attributed.add(window)
        detections.append(
            Detection(
                kind="noisy_neighbor",
                severity=trigger.severity,
                summary=(
                    f"principal {principal} issued {share * 100:.0f}% of "
                    f"{total:g} requests during {trigger.kind} window "
                    f"t={start:g}..{end:g}"
                ),
                start=start,
                end=end,
                details={
                    "principal": principal,
                    "share": share,
                    "requests": count,
                    "total_requests": total,
                    "trigger": trigger.kind,
                    "trigger_series": trigger.details.get("series"),
                },
            )
        )
    return detections


# ---------------------------------------------------------------------------
# Store-wide sweep
# ---------------------------------------------------------------------------

#: Substring routing: which detector looks at which series keys.
_THROUGHPUT_MARKERS = ("ops:rate", "cluster.ops_rate", "add_rate")
_QUEUE_MARKERS = ("queue_depth", "pending_changes", "inflight", "retry_backlog")
_STALENESS_MARKERS = ("staleness_age",)
_SLO_MARKERS = ("slo.burn_rate",)


def analyze_store(
    store: SeriesStore,
    staleness_slo: float | None = None,
) -> list[Detection]:
    """Run every applicable detector over a store's series.

    Throughput-shaped keys get sawtooth detection, queue-depth keys get
    saturation detection, staleness keys get SLO-burn detection (when a
    budget is supplied).  Each detection's details carry the series key it
    came from.  A final pass attributes any saturation/burn windows to a
    dominant principal when per-principal usage series are present.
    """
    detections: list[Detection] = []
    for key, series in store.items():
        found: list[Detection] = []
        if any(marker in key for marker in _THROUGHPUT_MARKERS):
            found.extend(detect_sawtooth(series))
        if any(marker in key for marker in _QUEUE_MARKERS):
            found.extend(detect_queue_saturation(series))
        if staleness_slo is not None and any(
            marker in key for marker in _STALENESS_MARKERS
        ):
            found.extend(detect_staleness_burn(series, staleness_slo))
        if any(marker in key for marker in _SLO_MARKERS):
            found.extend(detect_slo_burn(series))
        for detection in found:
            detection.details.setdefault("series", key)
        detections.extend(found)
    detections.extend(detect_noisy_neighbor(store, detections))
    return detections
