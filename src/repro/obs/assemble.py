"""Cluster-wide trace assembly and critical-path analysis.

One logical request in a sharded deployment crosses several servers
(combined client -> shard master -> mirrors), and each node's tracer and
:class:`~repro.obs.tracing.SpanSink` retain only their *local* fragments
of the span tree.  A :class:`TraceAssembler` gathers the fragments for a
``trace_id`` from a set of :class:`TraceSource`\\ s, deduplicates by span
id, and stitches them into a single cross-node tree.

Fragments are expected to be *partial*: a node may have restarted, its
trace may have been evicted (orphan fragments, retained by the sink with
reason ``...,orphan``), or the node may simply be unreachable.  Missing
parents are made explicit with synthetic **gap markers** rather than the
children being silently dropped, and unreachable sources are reported in
``missing`` instead of failing the whole assembly.

The assembled tree supports **critical-path** extraction: a cursor walk
that attributes every moment of the root span's wall time to a segment —
client routing (``cluster.*`` own time), network/queue wait (the gap
between ``rpc.call``/``rpc.attempt`` and the server's ``rpc.handle``
start), server dispatch, authorization, DB operators, the WAL flush
barrier, or mirror replication.  In-process timestamps come from one
``time.perf_counter()`` clock, so segment durations sum to the root span
duration exactly; over TCP the per-process clocks make the net.wait
segments approximate, which is flagged in the payload (``clock``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.obs.tracing import Span, SpanSink, Tracer

__all__ = [
    "AssembledTrace",
    "Segment",
    "TraceAssembler",
    "TraceSource",
    "render_critical_path",
    "render_trace",
    "segment_kind",
    "sink_source",
    "tracer_source",
]


@dataclass(frozen=True)
class TraceSource:
    """One node's fragment feed: ``fetch(trace_id)`` returns its spans.

    ``fetch`` may return :class:`Span` objects or wire dicts (the
    ``admin_trace_fragments`` payload shape); exceptions are tolerated —
    the assembler records the node as missing and keeps stitching.
    """

    name: str
    fetch: Callable[[str], Iterable[Any]]


def tracer_source(
    name: str, tracer: Tracer, node: str | None = None
) -> TraceSource:
    """Source over a local tracer (store + sink orphans).

    With ``node=`` the fragments are filtered to spans tagged
    ``node=<node>`` — this partitions a *shared in-process* tracer into
    per-node feeds, which is how single-process cluster tests model
    multiple processes' sinks.  Untagged spans belong to the client and
    are returned only by the ``node=None`` source.
    """

    def fetch(trace_id: str) -> list[Span]:
        spans = tracer.fragments(trace_id)
        if node is None:
            return spans
        return [s for s in spans if str(s.tags.get("node", "")) == node]

    return TraceSource(name=name, fetch=fetch)


def sink_source(name: str, sink: SpanSink) -> TraceSource:
    """Source over a bare span sink (retained fragments only)."""
    return TraceSource(name=name, fetch=sink.trace)


# -- segment classification -------------------------------------------------

#: Span-name prefix -> critical-path segment kind.  Order matters: the
#: first matching prefix wins.
_SEGMENT_KINDS: tuple[tuple[str, str], ...] = (
    ("cluster.", "client.routing"),
    ("rpc.call", "net.wait"),
    ("rpc.attempt", "net.wait"),
    ("rpc.handle", "server.handle"),
    ("acl.check", "acl"),
    ("sql.", "db"),
    ("wal.", "wal"),
    ("mirror", "replication"),
    ("update", "replication"),
)


def segment_kind(span_name: str) -> str:
    """Critical-path segment kind for a span's *own* (un-childed) time."""
    for prefix, kind in _SEGMENT_KINDS:
        if span_name.startswith(prefix):
            return kind
    return span_name


@dataclass
class Segment:
    """One critical-path slice: ``duration`` seconds of the root span's
    wall clock attributed to ``kind`` inside span ``name`` on ``node``."""

    kind: str
    name: str
    node: str
    start: float
    duration: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "duration": self.duration,
        }


@dataclass
class AssembledTrace:
    """The stitched cross-node view of one trace."""

    trace_id: str
    spans: list[Span] = field(default_factory=list)
    #: source name -> number of spans that source contributed
    nodes: dict[str, int] = field(default_factory=dict)
    #: source name -> error string for sources that could not be reached
    missing: dict[str, str] = field(default_factory=dict)
    #: parent span ids referenced but never gathered (gap markers)
    gaps: list[str] = field(default_factory=list)

    # -- tree --------------------------------------------------------------

    def tree(self) -> list[dict[str, Any]]:
        """Forest of ``{span, children, gap}`` nodes, children by start.

        Spans whose parent id was never gathered hang under a synthetic
        gap node (``gap=True``, ``span=None``, ``span_id=<missing id>``)
        so partial fragments stay visibly partial instead of floating up
        as fake roots.
        """
        by_id = {s.span_id: s for s in self.spans}
        nodes: dict[str, dict[str, Any]] = {
            sid: {"span": s, "span_id": sid, "gap": False, "children": []}
            for sid, s in by_id.items()
        }
        gap_nodes: dict[str, dict[str, Any]] = {}
        roots: list[dict[str, Any]] = []
        for s in sorted(self.spans, key=lambda s: s.start):
            node = nodes[s.span_id]
            if s.parent_id is None:
                roots.append(node)
            elif s.parent_id in nodes:
                nodes[s.parent_id]["children"].append(node)
            else:
                gap = gap_nodes.get(s.parent_id)
                if gap is None:
                    gap = {
                        "span": None,
                        "span_id": s.parent_id,
                        "gap": True,
                        "children": [],
                    }
                    gap_nodes[s.parent_id] = gap
                    roots.append(gap)
                gap["children"].append(node)
        return roots

    # -- critical path -----------------------------------------------------

    def _root_node(self) -> dict[str, Any] | None:
        """The tree to walk: the root covering the most wall time."""

        def extent(node: dict[str, Any]) -> float:
            span = node["span"]
            if span is not None:
                return span.duration
            ends = [
                c["span"].start + c["span"].duration
                for c in node["children"]
                if c["span"] is not None
            ]
            starts = [
                c["span"].start
                for c in node["children"]
                if c["span"] is not None
            ]
            if not starts:
                return 0.0
            return max(ends) - min(starts)

        forest = self.tree()
        if not forest:
            return None
        return max(forest, key=extent)

    def critical_path(self) -> list[Segment]:
        """Wall-time attribution of the (largest) root span.

        A cursor walks each span's interval: time before a child starts
        is the span's *own* time (classified by :func:`segment_kind`),
        the child's interval is attributed recursively, and time after
        the last child is the span's tail.  For ``rpc.call`` /
        ``rpc.attempt`` spans the own time *is* network + server queue
        wait — the gap until the server's ``rpc.handle`` starts and
        after it ends — which is how cross-process waiting shows up
        without any server-side cooperation.
        """
        root = self._root_node()
        if root is None:
            return []
        segments: list[Segment] = []

        def walk(node: dict[str, Any], inherited: str) -> None:
            span = node["span"]
            children = sorted(
                (c for c in node["children"] if c["span"] is not None),
                key=lambda c: c["span"].start,
            )
            if span is None:
                # Gap marker: nothing is known about the parent, so only
                # the children's intervals can be attributed.
                for child in children:
                    walk(child, inherited)
                return
            kind = segment_kind(span.name)
            # Only rpc.handle spans carry a node= tag; everything nested
            # under one (acl, sql, wal, ...) ran on the same server.
            label = str(span.tags.get("node", "")) or inherited
            cursor = span.start
            end = span.start + span.duration
            for child in children:
                child_start = child["span"].start
                child_end = child["span"].start + child["span"].duration
                if child_start > cursor:
                    segments.append(
                        Segment(kind, span.name, label, cursor,
                                child_start - cursor)
                    )
                walk(child, label)
                cursor = max(cursor, min(child_end, end))
            if end > cursor:
                segments.append(
                    Segment(kind, span.name, label, cursor, end - cursor)
                )

        walk(root, "client")
        return segments

    def root_duration(self) -> float:
        root = self._root_node()
        if root is None:
            return 0.0
        span = root["span"]
        if span is not None:
            return span.duration
        ends = [
            c["span"].start + c["span"].duration
            for c in root["children"]
            if c["span"] is not None
        ]
        starts = [
            c["span"].start for c in root["children"]
            if c["span"] is not None
        ]
        return (max(ends) - min(starts)) if starts else 0.0

    # -- wire form ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        def encode(node: dict[str, Any]) -> dict[str, Any]:
            return {
                "span": (
                    node["span"].to_dict() if node["span"] is not None
                    else None
                ),
                "span_id": node["span_id"],
                "gap": node["gap"],
                "children": [encode(c) for c in node["children"]],
            }

        path = self.critical_path()
        root_duration = self.root_duration()
        covered = sum(seg.duration for seg in path)
        return {
            "trace_id": self.trace_id,
            "spans": [s.to_dict() for s in self.spans],
            "tree": [encode(n) for n in self.tree()],
            "critical_path": [seg.to_dict() for seg in path],
            "root_duration": root_duration,
            "path_duration": covered,
            "coverage": (covered / root_duration) if root_duration else 0.0,
            "nodes": dict(self.nodes),
            "missing": dict(self.missing),
            "gaps": list(self.gaps),
            # One perf_counter clock in-process; per-process clocks over
            # TCP make cross-node gaps approximate.
            "clock": "shared",
        }


class TraceAssembler:
    """Stitches per-node span fragments into one cross-node trace."""

    def __init__(self, sources: Sequence[TraceSource]) -> None:
        self.sources = list(sources)

    def gather(
        self, trace_id: str
    ) -> tuple[dict[str, list[Span]], dict[str, str]]:
        """Fetch fragments from every source; failures don't abort.

        Returns ``(fragments_by_source, errors_by_source)``.
        """
        fragments: dict[str, list[Span]] = {}
        errors: dict[str, str] = {}
        for source in self.sources:
            try:
                raw = source.fetch(trace_id)
            except Exception as exc:  # noqa: BLE001 - partial by design
                errors[source.name] = f"{type(exc).__name__}: {exc}"
                continue
            spans: list[Span] = []
            for item in raw or ():
                if isinstance(item, Span):
                    spans.append(item)
                else:
                    spans.append(Span.from_dict(item))
            fragments[source.name] = spans
        return fragments, errors

    def assemble(self, trace_id: str) -> AssembledTrace:
        fragments, errors = self.gather(trace_id)
        by_id: dict[str, Span] = {}
        nodes: dict[str, int] = {}
        for name, spans in fragments.items():
            contributed = 0
            for span in spans:
                if span.trace_id != trace_id:
                    continue
                if span.span_id not in by_id:
                    by_id[span.span_id] = span
                    contributed += 1
            nodes[name] = contributed
        spans = sorted(by_id.values(), key=lambda s: s.start)
        gaps = sorted(
            {
                s.parent_id
                for s in spans
                if s.parent_id is not None and s.parent_id not in by_id
            }
        )
        return AssembledTrace(
            trace_id=trace_id,
            spans=spans,
            nodes=nodes,
            missing=errors,
            gaps=gaps,
        )


# -- rendering --------------------------------------------------------------
#
# These operate on the *wire payload* (AssembledTrace.to_dict() or the
# admin_trace RPC result) so the CLI renders server-assembled and
# client-assembled traces identically.


def render_trace(payload: dict[str, Any]) -> str:
    """Indented stitched tree, one line per span, gaps marked."""
    lines = [
        f"trace {payload.get('trace_id', '?')}: "
        f"{len(payload.get('spans', []))} spans from "
        f"{len(payload.get('nodes', {}))} nodes"
    ]
    for name, count in sorted(payload.get("nodes", {}).items()):
        lines.append(f"  node {name}: {count} spans")
    for name, err in sorted(payload.get("missing", {}).items()):
        lines.append(f"  node {name}: MISSING ({err})")

    def emit(node: dict[str, Any], depth: int) -> None:
        indent = "  " * depth
        span = node.get("span")
        if span is None:
            lines.append(
                f"{indent}[gap: missing span {node.get('span_id')}]"
            )
        else:
            tags = span.get("tags", {})
            extra = "".join(
                f" {k}={tags[k]}"
                for k in ("node", "method", "shard", "endpoint", "failover")
                if k in tags
            )
            err = f" ERROR:{span['error']}" if span.get("error") else ""
            lines.append(
                f"{indent}{span['name']} "
                f"{span.get('duration', 0.0) * 1e3:.3f}ms{extra}{err}"
            )
        for child in node.get("children", []):
            emit(child, depth + 1)

    for root in payload.get("tree", []):
        emit(root, 1)
    return "\n".join(lines)


def render_critical_path(payload: dict[str, Any]) -> str:
    """Critical-path table: per-segment and per-kind attribution."""
    path = payload.get("critical_path", [])
    root = payload.get("root_duration", 0.0) or 0.0
    lines = [
        "critical path "
        f"({payload.get('path_duration', 0.0) * 1e3:.3f}ms of "
        f"{root * 1e3:.3f}ms root, "
        f"{payload.get('coverage', 0.0) * 100:.1f}% attributed):"
    ]
    for seg in path:
        pct = (seg["duration"] / root * 100) if root else 0.0
        lines.append(
            f"  {seg['duration'] * 1e3:9.3f}ms {pct:5.1f}%  "
            f"{seg['kind']:<14} {seg['name']} @ {seg['node']}"
        )
    by_kind: dict[str, float] = {}
    for seg in path:
        by_kind[seg["kind"]] = by_kind.get(seg["kind"], 0.0) + seg["duration"]
    if by_kind:
        lines.append("by kind:")
        for kind, total in sorted(
            by_kind.items(), key=lambda kv: -kv[1]
        ):
            pct = (total / root * 100) if root else 0.0
            lines.append(f"  {total * 1e3:9.3f}ms {pct:5.1f}%  {kind}")
    return "\n".join(lines)
