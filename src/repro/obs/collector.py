"""Cluster-wide metrics collection (the scraper/aggregator architecture).

Grid monitoring studies (Zhang et al., cs/0304015) converge on one shape
for many-node monitoring: a periodic collector pulls per-node snapshots
and aggregates them centrally.  :class:`ClusterCollector` is that layer
for an RLS deployment: every scrape round it pulls one
:class:`~repro.obs.metrics.MetricsSnapshot` from each LRC/RLI node —
in-process registries and remote ``admin_metrics`` RPCs mix freely —
computes per-node interval rates via snapshot subtraction, and derives
cluster signals:

==============================  =============================================
cluster series key              meaning
==============================  =============================================
``cluster.ops_rate``            sum of node operation rates, this round
``cluster.wal_queue_depth``     sum of per-node WAL queue depths
``cluster.rli_staleness_age``   worst (max) RLI staleness across nodes
``cluster.nodes_up``            nodes that answered this scrape round
``node.ops_rate{node=N}``       per-node operation rate (cluster store copy)
``node.up{node=N}``             1.0 answered / 0.0 failed, per round
==============================  =============================================

**Aggregate consistency.**  ``cluster.ops_rate`` is computed as the exact
sum of the ``node.ops_rate{node=...}`` values recorded in the same round
(not re-derived from merged snapshots), so per-node and cluster rates
always add up within one scrape interval — the invariant ``rls top``
renders and the acceptance tests assert.

Per-node raw series (every counter rate, gauge, histogram p95) live in
each node's own :class:`~repro.obs.timeseries.SeriesStore`, reachable via
:meth:`ClusterCollector.node_store`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, split_metric_key
from repro.obs.timeseries import (
    DEFAULT_CAPACITY,
    DEFAULT_INTERVAL,
    OPS_RATE_KEY,
    Scraper,
    SeriesStore,
)

#: Gauge keys folded into cluster aggregates: (metric key, aggregation).
_SUM_GAUGES = ("wal.queue_depth",)
_MAX_GAUGES = ("rli.staleness_age",)


@dataclass
class NodeSource:
    """One scrape target: a name plus a snapshot fetcher."""

    name: str
    fetch: Callable[[], MetricsSnapshot]


def registry_source(name: str, registry: MetricsRegistry) -> NodeSource:
    """Scrape an in-process registry (same-process server or test)."""
    return NodeSource(name=name, fetch=registry.snapshot)


def server_source(server: Any) -> NodeSource:
    """Scrape an in-process :class:`~repro.core.server.RLSServer`."""
    return registry_source(server.config.name, server.metrics)


def client_source(name: str, client: Any) -> NodeSource:
    """Scrape a remote node through the ``admin_metrics`` RPC.

    ``client`` is an :class:`~repro.core.client.RLSClient` (or anything
    with a ``metrics()`` returning the snapshot dict); the caller owns the
    connection's lifetime.
    """
    return NodeSource(
        name=name,
        fetch=lambda: MetricsSnapshot.from_dict(client.metrics()),
    )


@dataclass
class NodeSample:
    """One node's contribution to a scrape round."""

    name: str
    up: bool
    ops_rate: float = 0.0
    wal_queue_depth: float = 0.0
    rli_staleness_age: float = 0.0
    error: str | None = None


@dataclass
class ClusterSample:
    """One collector round: per-node samples plus derived aggregates."""

    t: float
    interval: float
    nodes: dict[str, NodeSample] = field(default_factory=dict)

    @property
    def cluster_ops_rate(self) -> float:
        """Exact sum of per-node rates in this round (the invariant)."""
        return sum(n.ops_rate for n in self.nodes.values() if n.up)

    @property
    def nodes_up(self) -> int:
        return sum(1 for n in self.nodes.values() if n.up)


class ClusterCollector:
    """Scrapes every node of a deployment and derives cluster signals."""

    def __init__(
        self,
        nodes: Sequence[NodeSource],
        interval: float = DEFAULT_INTERVAL,
        clock: Callable[[], float] = time.monotonic,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if not nodes:
            raise ValueError("collector needs at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {names}")
        self.interval = interval
        self.clock = clock
        #: Cluster-level derived series.
        self.store = SeriesStore(capacity)
        self._node_stores: dict[str, SeriesStore] = {
            node.name: SeriesStore(capacity) for node in nodes
        }
        self._scrapers: dict[str, Scraper] = {
            node.name: Scraper(
                node.fetch,
                store=self._node_stores[node.name],
                interval=interval,
                clock=clock,
            )
            for node in nodes
        }
        self.rounds = 0
        self.last_sample: ClusterSample | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- structure -------------------------------------------------------

    @property
    def node_names(self) -> list[str]:
        return list(self._node_stores)

    def node_store(self, name: str) -> SeriesStore:
        return self._node_stores[name]

    # -- scraping --------------------------------------------------------

    def scrape_once(self, now: float | None = None) -> ClusterSample:
        """Run one scrape round over every node.

        A node whose fetch raises is marked down for the round
        (``node.up{node=N}`` = 0) and contributes nothing to the
        aggregates; the collector keeps going — partial visibility beats
        none when a node is mid-restart.
        """
        t = self.clock() if now is None else now
        sample = ClusterSample(t=t, interval=self.interval)
        for name, scraper in self._scrapers.items():
            try:
                result = scraper.scrape_once(now=t)
            except Exception as exc:
                sample.nodes[name] = NodeSample(
                    name=name, up=False, error=f"{type(exc).__name__}: {exc}"
                )
                continue
            if result is None:
                # Priming scrape (or stalled clock): node is up, no rates.
                snapshot = scraper.last_snapshot
                sample.nodes[name] = NodeSample(
                    name=name,
                    up=True,
                    wal_queue_depth=_gauge_sum(snapshot, _SUM_GAUGES[0]),
                    rli_staleness_age=_gauge_max(snapshot, _MAX_GAUGES[0]),
                )
                continue
            sample.nodes[name] = NodeSample(
                name=name,
                up=True,
                ops_rate=result.ops_rate(),
                wal_queue_depth=_gauge_sum(result.snapshot, _SUM_GAUGES[0]),
                rli_staleness_age=_gauge_max(result.snapshot, _MAX_GAUGES[0]),
            )
        self._record(sample)
        self.rounds += 1
        self.last_sample = sample
        return sample

    def _record(self, sample: ClusterSample) -> None:
        t = sample.t
        rated = self.rounds > 0  # first round only primes the scrapers
        for name, node in sample.nodes.items():
            self.store.record(f"node.up{{node={name}}}", t, 1.0 if node.up else 0.0)
            if node.up and rated:
                self.store.record(
                    f"node.ops_rate{{node={name}}}", t, node.ops_rate
                )
        if rated:
            self.store.record("cluster.ops_rate", t, sample.cluster_ops_rate)
        up = [n for n in sample.nodes.values() if n.up]
        self.store.record(
            "cluster.wal_queue_depth", t, sum(n.wal_queue_depth for n in up)
        )
        self.store.record(
            "cluster.rli_staleness_age",
            t,
            max((n.rli_staleness_age for n in up), default=0.0),
        )
        self.store.record("cluster.nodes_up", t, float(len(up)))

    # -- background operation -------------------------------------------

    def start(self) -> "ClusterCollector":
        if self._thread is not None:
            return self
        self._stop.clear()
        self.scrape_once()  # priming round
        self._thread = threading.Thread(
            target=self._loop, name="obs-collector", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.scrape_once()
            except Exception:
                continue

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ClusterCollector":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


def _gauge_sum(snapshot: MetricsSnapshot | None, name: str) -> float:
    if snapshot is None:
        return 0.0
    return sum(
        value
        for key, value in snapshot.gauges.items()
        if split_metric_key(key)[0] == name
    )


def _gauge_max(snapshot: MetricsSnapshot | None, name: str) -> float:
    if snapshot is None:
        return 0.0
    return max(
        (
            value
            for key, value in snapshot.gauges.items()
            if split_metric_key(key)[0] == name
        ),
        default=0.0,
    )
