"""Black-box flight recorder: a bounded ring of typed server events.

When a server misbehaves, the question is rarely "what is happening now"
— it is "what happened in the seconds *before* this error".  The flight
recorder answers it the way an aircraft black box does: every layer
appends small typed events (RPC dispatch, update delivery attempts and
retries, WAL flushes, errors) into a bounded thread-safe ring, correlated
with span ids from the tracer, and the ring is snapshotted on demand
(``admin_flight`` / ``rls flight``) or automatically when a handler
raises.

Retention mirrors :class:`~repro.obs.tracing.SpanSink`: every event lands
in a **recent** ring (capacity ``capacity``) and error events *also* land
in a smaller **errors** ring, so a flood of healthy traffic can never
push out the failure evidence — the property the wrap test asserts.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping

_event_seq = itertools.count(1)

#: Event kinds the instrumentation sites emit (informative, not enforced).
EVENT_KINDS = (
    "rpc.in",
    "rpc.out",
    "update.attempt",
    "update.retry",
    "wal.flush",
    "error",
)


@dataclass(frozen=True)
class FlightEvent:
    """One recorded event; ``seq`` totally orders events across rings."""

    seq: int
    t: float
    kind: str
    detail: str = ""
    trace_id: str | None = None
    span_id: str | None = None
    error: bool = False
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "t": self.t,
            "kind": self.kind,
            "detail": self.detail,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "error": self.error,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlightEvent":
        return cls(
            seq=int(data["seq"]),
            t=float(data.get("t", 0.0)),
            kind=data["kind"],
            detail=data.get("detail", ""),
            trace_id=data.get("trace_id"),
            span_id=data.get("span_id"),
            error=bool(data.get("error", False)),
            data=dict(data.get("data", {})),
        )


class FlightRecorder:
    """Bounded, thread-safe event ring with error-preferential retention.

    ``record`` is the single producer entry point; with ``span=None`` the
    event adopts the calling thread's current trace context (if a tracer
    is installed), so instrumentation sites get correlation for free.
    """

    def __init__(
        self,
        capacity: int = 256,
        error_capacity: int | None = None,
        clock: Any = time.time,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.error_capacity = (
            error_capacity if error_capacity is not None
            else max(16, capacity // 4)
        )
        self.clock = clock
        self._lock = threading.Lock()
        self._recent: "OrderedDict[int, FlightEvent]" = OrderedDict()
        self._errors: "OrderedDict[int, FlightEvent]" = OrderedDict()
        self.recorded = 0
        self.error_count = 0
        #: Snapshot taken by :meth:`dump` (the last unhandled-error dump).
        self.last_dump: dict[str, Any] | None = None

    def record(
        self,
        kind: str,
        detail: str = "",
        span: tuple[str, str] | None = None,
        error: bool = False,
        **data: Any,
    ) -> FlightEvent:
        """Append one event; returns it (tests assert on the result)."""
        if span is None:
            from repro.obs import tracing

            span = tracing.context()
        event = FlightEvent(
            seq=next(_event_seq),
            t=self.clock(),
            kind=kind,
            detail=detail,
            trace_id=span[0] if span else None,
            span_id=span[1] if span else None,
            error=error,
            data=data,
        )
        with self._lock:
            self.recorded += 1
            self._recent[event.seq] = event
            while len(self._recent) > self.capacity:
                self._recent.popitem(last=False)
            if error:
                self.error_count += 1
                self._errors[event.seq] = event
                while len(self._errors) > self.error_capacity:
                    self._errors.popitem(last=False)
        return event

    def events(self) -> list[FlightEvent]:
        """Union of both rings in sequence order (oldest first).

        Errors evicted from the recent ring survive via the error ring;
        the union is deduplicated by ``seq``.
        """
        with self._lock:
            merged = dict(self._errors)
            merged.update(self._recent)
        return [merged[seq] for seq in sorted(merged)]

    def errors(self) -> list[FlightEvent]:
        with self._lock:
            return list(self._errors.values())

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "recorded": self.recorded,
                "errors": self.error_count,
                "recent": len(self._recent),
                "retained_errors": len(self._errors),
                "capacity": self.capacity,
                "error_capacity": self.error_capacity,
            }

    def to_dict(self, limit: int | None = None) -> dict[str, Any]:
        """RPC payload: stats, the event tail, and the last error dump."""
        events = self.events()
        if limit is not None and limit >= 0:
            events = events[-limit:]
        return {
            "stats": self.stats(),
            "events": [event.to_dict() for event in events],
            "last_dump": self.last_dump,
        }

    def dump(self, reason: str) -> dict[str, Any]:
        """Freeze the current ring into ``last_dump`` (auto on errors).

        The dump survives subsequent wraps of the live ring, so the
        events *leading up to* the error stay retrievable even after the
        server has moved on.
        """
        snapshot = {
            "reason": reason,
            "t": self.clock(),
            "stats": self.stats(),
            "events": [event.to_dict() for event in self.events()],
        }
        self.last_dump = snapshot
        return snapshot

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
            self._errors.clear()
        self.last_dump = None
