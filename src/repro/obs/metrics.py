"""Metrics: counters, gauges and log-bucketed latency histograms.

The paper's contribution is *measurement*, and its successor work (Zhang
et al., cs/0304015) shows grid services need built-in monitoring surfaces
to be evaluated at scale.  This module is that surface's data model:

* :class:`Counter` — monotonically increasing count (requests, bytes);
* :class:`Gauge` — point-in-time value (queue depth, open connections);
* :class:`Histogram` — log-bucketed latency distribution with p50/p95/p99;
* :class:`MetricsRegistry` — a thread-safe, label-aware instrument store
  whose :meth:`~MetricsRegistry.snapshot` is a plain-data, *mergeable*
  value (snapshots from many servers combine into a deployment view, and
  two snapshots subtract to isolate one benchmark run).

**Cost model.**  Instrumented code paths resolve their instruments once
(at construction) and call ``inc()``/``observe()`` per operation.  When no
registry is installed the module-level :data:`NULL_REGISTRY` hands out
no-op singletons whose methods are empty, so the per-operation cost is one
cheap method call; hot paths can additionally skip ``perf_counter`` pairs
by checking the instrument's ``noop`` attribute (or ``registry.enabled``).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

# Log-spaced latency buckets: 1 µs doubling up to ~134 s, plus overflow.
# Fine enough that p95/p99 interpolation lands within a factor of 2 of the
# true value anywhere in the range an RLS operation can take.
_BUCKET_START = 1e-6
NUM_BUCKETS = 28
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    _BUCKET_START * (2.0**i) for i in range(NUM_BUCKETS)
)


def bucket_index(value: float) -> int:
    """Index of the histogram bucket holding ``value`` (last = overflow)."""
    return bisect_left(BUCKET_BOUNDS, value)


class Counter:
    """Thread-safe monotonically increasing counter."""

    noop = False
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Thread-safe point-in-time value."""

    noop = False
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Log-bucketed distribution of non-negative values (usually seconds)."""

    noop = False
    __slots__ = ("_lock", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (NUM_BUCKETS + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            value = 0.0
        idx = bisect_left(BUCKET_BOUNDS, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def snapshot(self) -> "HistogramSnapshot":
        with self._lock:
            return HistogramSnapshot(
                counts=tuple(self._counts),
                count=self._count,
                sum=self._sum,
                min=self._min if self._count else 0.0,
                max=self._max,
            )

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, p: float) -> float:
        return self.snapshot().percentile(p)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable histogram state; merges with and subtracts from peers."""

    counts: tuple[int, ...]
    count: int
    sum: float
    min: float
    max: float

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (0-100) by linear interpolation
        within the covering log bucket.  Exact at bucket edges; within one
        bucket width (factor of 2) everywhere else."""
        if self.count == 0:
            return 0.0
        if p <= 0:
            return self.min
        if p >= 100:
            return self.max
        rank = (p / 100.0) * self.count
        cumulative = 0
        for idx, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lower = 0.0 if idx == 0 else BUCKET_BOUNDS[idx - 1]
                upper = (
                    self.max
                    if idx >= NUM_BUCKETS
                    else min(BUCKET_BOUNDS[idx], max(self.max, lower))
                )
                if upper < lower:
                    upper = lower
                fraction = (rank - cumulative) / n
                return lower + (upper - lower) * fraction
            cumulative += n
        return self.max

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Combine two snapshots (e.g. the same metric from two servers)."""
        return HistogramSnapshot(
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            count=self.count + other.count,
            sum=self.sum + other.sum,
            min=min(self.min, other.min) if other.count and self.count
            else (self.min if self.count else other.min),
            max=max(self.max, other.max),
        )

    def delta(self, earlier: "HistogramSnapshot") -> "HistogramSnapshot":
        """Observations recorded since ``earlier`` (cumulative subtraction).

        ``min``/``max`` cannot be subtracted, so the delta keeps this
        snapshot's extremes — an upper bound on the interval's range.
        """
        return HistogramSnapshot(
            counts=tuple(
                max(0, a - b) for a, b in zip(self.counts, earlier.counts)
            ),
            count=max(0, self.count - earlier.count),
            sum=max(0.0, self.sum - earlier.sum),
            min=self.min,
            max=self.max,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "HistogramSnapshot":
        return cls(
            counts=tuple(data["counts"]),
            count=data["count"],
            sum=data["sum"],
            min=data["min"],
            max=data["max"],
        )


# ---------------------------------------------------------------------------
# No-op instruments (installed-registry-absent fast path)
# ---------------------------------------------------------------------------


class _NullCounter:
    noop = True
    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    noop = True
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    noop = True
    __slots__ = ()
    count = 0

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot((0,) * (NUM_BUCKETS + 1), 0, 0.0, 0.0, 0.0)

    def percentile(self, p: float) -> float:
        return 0.0


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Registry stand-in that hands out no-op singletons."""

    enabled = False

    def counter(self, name: str, **labels: str) -> _NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str, **labels: str) -> _NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str, **labels: str) -> _NullHistogram:
        return NULL_HISTOGRAM

    def register_gauge_fn(
        self, name: str, fn: Callable[[], float], **labels: str
    ) -> None:
        pass

    def snapshot(self) -> "MetricsSnapshot":
        return MetricsSnapshot()


NULL_REGISTRY = NullRegistry()


def metric_key(name: str, labels: dict[str, str]) -> str:
    """Flattened instrument key: ``name{k=v,...}`` with sorted label keys."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`metric_key`."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels = {}
    for pair in rest[:-1].split(","):
        if pair:
            k, _, v = pair.partition("=")
            labels[k] = v
    return name, labels


def flatten_metric_name(name: str) -> str:
    """Dotted internal name -> Prometheus-legal flat name."""
    return name.replace(".", "_").replace("-", "_")


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format (0.0.4)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def escape_help_text(text: str) -> str:
    """Escape ``# HELP`` free text (backslash and newline only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


#: Exposition HELP strings for the stable metric inventory (see
#: docs/OBSERVABILITY.md); unknown names get a generated fallback.
_METRIC_HELP: dict[str, str] = {
    "rpc_requests": "Requests dispatched per RPC method",
    "rpc_errors": "Requests that raised, including unknown methods",
    "rpc_latency": "RPC handler latency in seconds (ACL+SQL+WAL inclusive)",
    "rpc_inflight": "Requests currently executing in handlers",
    "net_bytes_in": "Wire bytes received, including frame headers",
    "net_bytes_out": "Wire bytes sent, including frame headers",
    "net_connections_total": "Connections accepted",
    "net_connections_active": "Currently open TCP connections",
    "wal_flush_latency": "WAL device sync latency in seconds",
    "wal_records_appended": "Records written to the write-ahead log",
    "wal_queue_depth": "Records buffered since the last WAL sync",
    "lrc_mappings_created": "Mappings created via the catalog API",
    "lrc_mappings_added": "Replica mappings added via the catalog API",
    "lrc_mappings_deleted": "Mappings deleted via the catalog API",
    "lrc_mappings_bulk_loaded": "Mappings ingested via bulk_load",
    "lrc_lfns": "Live logical-name count",
    "lrc_mappings": "Live mapping count",
    "rli_updates_applied": "Soft-state updates absorbed by the index",
    "rli_update_apply_latency": "Seconds to apply one soft-state update",
    "rli_entries_expired": "Index mappings dropped by timeout sweeps",
    "rli_mappings": "Index mapping count",
    "rli_bloom_filters": "Bloom filters held by the index",
    "rli_staleness_age": "Seconds since the least-recently-updated LRC",
    "updates_sent": "Soft-state updates pushed to RLIs",
    "updates_duration": "End-to-end soft-state update send time in seconds",
    "updates_bloom_generation": "Bloom filter (re)build time in seconds",
    "updates_names_sent": "LFNs shipped in full/incremental updates",
    "updates_bloom_bytes_sent": "Compressed filter bytes shipped",
    "updates_pending_changes": "Immediate-mode backlog across RLIs",
    "db_statements": "SQL statements executed, by statement class",
    "db_statement_latency": "Per-statement execution time in seconds",
    "db_slow_statements": "Statements at or above the slow-query threshold",
    "db_stmt_cache_hits": "Parsed-statement cache hits",
    "db_stmt_cache_misses": "Parsed-statement cache misses (parses)",
    "db_latch_wait": "Seconds spent waiting for a contended table latch",
    "db_wal_lock_wait": "Seconds spent waiting for the WAL append lock",
    "db_table_live_tuples": "Live rows in the table heap",
    "db_table_dead_tuples": "Dead (tombstoned) tuples awaiting VACUUM",
    "db_table_inserts": "Rows inserted since table creation",
    "db_table_deletes": "Rows deleted since table creation",
    "db_table_dead_index_hits": "Index probes that landed on dead tuples",
    "db_table_vacuums": "VACUUM passes completed",
    "db_table_tuples_reclaimed": "Dead tuples reclaimed by VACUUM",
    "obs_profiler_samples": "Thread stacks sampled by the wall-clock profiler",
    "obs_profiler_walk_latency": "Seconds per profiler frame-walk pass",
    "obs_profiler_duty_cycle": "Fraction of wall time the profiler spends walking",
    "obs_slo_ticks": "SLI recorder passes over the metrics registry",
    "obs_slo_tick_latency": "Seconds per SLI recorder pass",
    "slo_availability": "Availability SLI per operation class (fast window)",
    "slo_latency_sli": "Fraction of requests under the class latency threshold",
    "slo_burn_rate": "Error-budget burn rate per operation class and window",
    "slo_budget_remaining": "Fraction of the error budget left in the window",
    "usage_requests": "Requests accounted per principal and operation class",
    "usage_errors": "Failed requests accounted per principal and class",
    "usage_wall_time": "Handler wall seconds charged per principal and class",
    "usage_rows_examined": "DB rows examined charged per principal and class",
    "usage_wal_bytes": "WAL bytes appended charged per principal and class",
    "usage_bytes_in": "Request bytes received per principal (class net)",
    "usage_bytes_out": "Response bytes sent per principal (class net)",
}


def help_text(flat_name: str) -> str:
    """HELP string for one flattened metric name."""
    known = _METRIC_HELP.get(flat_name)
    if known is not None:
        return escape_help_text(known)
    return f"RLS metric {flat_name}"


class MetricsRegistry:
    """Thread-safe store of named, labelled instruments."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauge_fns: dict[str, Callable[[], float]] = {}

    # -- instrument factories (get-or-create) ---------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = metric_key(name, labels)
        counter = self._counters.get(key)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(key, Counter())
        return counter

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = metric_key(name, labels)
        gauge = self._gauges.get(key)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(key, Gauge())
        return gauge

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = metric_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(key, Histogram())
        return histogram

    def register_gauge_fn(
        self, name: str, fn: Callable[[], float], **labels: str
    ) -> None:
        """Register a callback sampled at snapshot time (e.g. a row count)."""
        with self._lock:
            self._gauge_fns[metric_key(name, labels)] = fn

    # -- output ----------------------------------------------------------

    def snapshot(self) -> "MetricsSnapshot":
        """Consistent-enough point-in-time copy of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            gauge_fns = dict(self._gauge_fns)
        gauge_values = {key: float(g.value) for key, g in gauges.items()}
        for key, fn in gauge_fns.items():
            try:
                gauge_values[key] = float(fn())
            except Exception:
                continue  # a failing callback must not break the snapshot
        return MetricsSnapshot(
            counters={key: c.value for key, c in counters.items()},
            gauges=gauge_values,
            histograms={key: h.snapshot() for key, h in histograms.items()},
        )

    def render_text(self) -> str:
        return self.snapshot().render_text()


@dataclass
class MetricsSnapshot:
    """Plain-data view of a registry: mergeable, subtractable, wire-safe."""

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Union of two snapshots: counters/gauges add, histograms merge."""
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value
        gauges = dict(self.gauges)
        for key, value in other.gauges.items():
            gauges[key] = gauges.get(key, 0.0) + value
        histograms = dict(self.histograms)
        for key, hist in other.histograms.items():
            mine = histograms.get(key)
            histograms[key] = hist if mine is None else mine.merge(hist)
        return MetricsSnapshot(counters, gauges, histograms)

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened since ``earlier``: counters subtract, histograms
        subtract bucket-wise, gauges keep their current values.

        Counter deltas clamp at zero: a counter lower than it was in
        ``earlier`` means the process restarted (counters are monotonic),
        and a negative "events since" would poison every rate computed
        from it downstream."""
        counters = {
            key: max(0, value - earlier.counters.get(key, 0))
            for key, value in self.counters.items()
        }
        histograms = {
            key: (
                hist.delta(earlier.histograms[key])
                if key in earlier.histograms
                else hist
            )
            for key, hist in self.histograms.items()
        }
        return MetricsSnapshot(counters, dict(self.gauges), histograms)

    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                key: h.to_dict() for key, h in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MetricsSnapshot":
        return cls(
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            histograms={
                key: HistogramSnapshot.from_dict(h)
                for key, h in data.get("histograms", {}).items()
            },
        )

    def render_text(self) -> str:
        """Prometheus text exposition (format 0.0.4).

        Dots/dashes in names become underscores; every metric gets one
        ``# HELP`` and one ``# TYPE`` line before its first sample; label
        values escape backslash, double-quote and newline as the format
        requires (``\\\\``, ``\\"``, ``\\n``).
        """
        lines: list[str] = []
        seen_headers: set[str] = set()

        def label_block(labels: dict[str, str]) -> str:
            if not labels:
                return ""
            inner = ",".join(
                f'{k}="{escape_label_value(str(labels[k]))}"'
                for k in sorted(labels)
            )
            return f"{{{inner}}}"

        def headers(flat: str, mtype: str) -> None:
            if flat in seen_headers:
                return
            seen_headers.add(flat)
            lines.append(f"# HELP {flat} {help_text(flat)}")
            lines.append(f"# TYPE {flat} {mtype}")

        def emit(key: str, value: float, suffix: str = "",
                 extra_labels: dict[str, str] | None = None,
                 mtype: str = "") -> None:
            name, labels = split_metric_key(key)
            flat = flatten_metric_name(name)
            if mtype:
                headers(flat, mtype)
            if extra_labels:
                labels = {**labels, **extra_labels}
            if isinstance(value, float) and not value.is_integer():
                rendered = f"{value:.9f}".rstrip("0").rstrip(".")
            else:
                rendered = str(int(value))
            lines.append(f"{flat}{suffix}{label_block(labels)} {rendered}")

        for key in sorted(self.counters):
            emit(key, self.counters[key], mtype="counter")
        for key in sorted(self.gauges):
            emit(key, self.gauges[key], mtype="gauge")
        for key in sorted(self.histograms):
            hist = self.histograms[key]
            name, labels = split_metric_key(key)
            for q in (50.0, 95.0, 99.0):
                emit(
                    key,
                    hist.percentile(q),
                    extra_labels={"quantile": f"{q / 100:g}"},
                    mtype="summary",
                )
            flat = flatten_metric_name(name)
            block = label_block(labels)
            lines.append(f"{flat}_count{block} {hist.count}")
            lines.append(f"{flat}_sum{block} {hist.sum:.9f}")
        return "\n".join(lines) + "\n"


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold many per-server snapshots into one deployment-wide view."""
    merged = MetricsSnapshot()
    for snapshot in snapshots:
        merged = merged.merge(snapshot)
    return merged
