"""Wall-clock sampling profiler and thread-state introspection.

The paper measures the RLS from the outside (rates vs. client threads);
PRs 1–4 added metrics, traces and per-statement profiles.  This module
answers the remaining production question — *where is every server thread
spending its time right now?* — without requiring the workload to be
re-run under a tracing harness:

* a **thread registry** maps thread idents to named roles
  (:func:`register_thread` is called by RPC worker threads, the update
  scheduler, the scraper, …; :func:`thread_role` temporarily re-labels a
  thread for the duration of a phase such as a WAL flush);
* :class:`SamplingProfiler` walks ``sys._current_frames()`` at
  ``ServerConfig.profile_hz`` and aggregates samples into a
  :class:`StackProfile` of folded-stack counts (the FlameGraph input
  format), attributed per role;
* :meth:`SamplingProfiler.thread_dump` is the point-in-time view: every
  thread's role, current span (from the tracer), and top frames;
* a **stuck-thread detector** (:func:`detect_stuck_threads` routed via
  :mod:`repro.obs.analyze`) fires when a thread shows the same non-idle
  top frame across ``STUCK_MIN_SAMPLES`` consecutive samples while RPC
  requests are in flight.

Everything is injectable — ``frames`` (the frame source) and ``clock`` —
so the profiler's aggregation, attribution and stuck detection are tested
deterministically with synthetic frames, no real threads involved.  The
profiler self-meters: its walk time and duty cycle land in
``obs.profiler.*`` metrics, and ``benchmarks/check_overhead.py`` gates
the duty cycle at 25 Hz and the disabled-path guard cost.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Callable, Mapping

from repro.obs.analyze import Detection, detect_stuck_threads
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

#: Frames whose top function is one of these are considered idle — parked
#: in a wait/IO primitive, not burning CPU.  The stuck-thread detector
#: ignores them (a worker blocked in ``recv`` between requests is normal).
IDLE_FRAME_NAMES = frozenset(
    {
        "wait",
        "accept",
        "select",
        "poll",
        "sleep",
        "recv",
        "recvfrom",
        "_recv_exact",
        "readinto",
        "get",
        "acquire",
        "join",
    }
)

#: Maximum frames folded per stack (deeper stacks are truncated at root).
MAX_STACK_DEPTH = 64


# ---------------------------------------------------------------------------
# Thread registry
# ---------------------------------------------------------------------------

_registry_lock = threading.Lock()
#: ident -> role stack (last entry is the effective role).
_thread_roles: dict[int, list[str]] = {}


def register_thread(role: str, ident: int | None = None) -> None:
    """Register the calling thread (or ``ident``) under a named role.

    Re-registering replaces the thread's base role.  Roles attribute
    profiler samples and label thread dumps; unregistered threads appear
    as ``"other"``.
    """
    if ident is None:
        ident = threading.get_ident()
    with _registry_lock:
        _thread_roles[ident] = [role]


def unregister_thread(ident: int | None = None) -> None:
    """Remove the calling thread (or ``ident``) from the registry."""
    if ident is None:
        ident = threading.get_ident()
    with _registry_lock:
        _thread_roles.pop(ident, None)


def current_role(ident: int) -> str:
    """Effective role of one thread (``"other"`` when unregistered)."""
    with _registry_lock:
        stack = _thread_roles.get(ident)
        return stack[-1] if stack else "other"


def registered_threads() -> dict[int, str]:
    """Snapshot of the registry: ident -> effective role."""
    with _registry_lock:
        return {
            ident: stack[-1] for ident, stack in _thread_roles.items() if stack
        }


class thread_role:
    """Temporarily override the calling thread's role (context manager).

    Used by phase-shaped work running on a borrowed thread — e.g. the WAL
    wraps its device sync in ``thread_role("wal.flush")`` so samples taken
    mid-flush are attributed to the flush, not to whichever RPC worker
    happened to trigger it.
    """

    __slots__ = ("role", "_ident")

    def __init__(self, role: str) -> None:
        self.role = role
        self._ident = 0

    def __enter__(self) -> "thread_role":
        self._ident = threading.get_ident()
        with _registry_lock:
            _thread_roles.setdefault(self._ident, ["other"]).append(self.role)
        return self

    def __exit__(self, *exc: object) -> None:
        with _registry_lock:
            stack = _thread_roles.get(self._ident)
            if stack and stack[-1] == self.role:
                stack.pop()
            # A thread that was never register_thread()ed reverts to
            # unregistered rather than lingering as "other".
            if stack == ["other"]:
                del _thread_roles[self._ident]


# ---------------------------------------------------------------------------
# Folded stacks
# ---------------------------------------------------------------------------


def frame_label(frame: Any) -> str:
    """``module:function`` label for one frame (FlameGraph convention)."""
    code = frame.f_code
    filename = code.co_filename
    # Trim to the module stem: ".../repro/db/wal.py" -> "wal".
    slash = max(filename.rfind("/"), filename.rfind("\\"))
    stem = filename[slash + 1 :]
    if stem.endswith(".py"):
        stem = stem[:-3]
    return f"{stem}:{code.co_name}"


def fold_stack(frame: Any, role: str, max_depth: int = MAX_STACK_DEPTH) -> str:
    """Semicolon-joined root→leaf stack, prefixed with the thread role."""
    labels: list[str] = []
    depth = 0
    while frame is not None and depth < max_depth:
        labels.append(frame_label(frame))
        frame = frame.f_back
        depth += 1
    labels.append(role)
    labels.reverse()
    return ";".join(labels)


class StackProfile:
    """Aggregated folded-stack sample counts, mergeable like a snapshot.

    ``stacks`` maps a folded stack (``role;mod:fn;mod:fn…``) to its sample
    count.  Profiles :meth:`merge` across servers and :meth:`delta`
    across time windows — the same algebra as
    :class:`~repro.obs.metrics.MetricsSnapshot` — so ``rls profile
    --seconds N`` can subtract two cumulative snapshots into a window.
    """

    __slots__ = ("stacks", "samples")

    def __init__(
        self, stacks: Mapping[str, int] | None = None, samples: int = 0
    ) -> None:
        self.stacks: dict[str, int] = dict(stacks or {})
        self.samples = samples

    def add(self, folded: str, count: int = 1) -> None:
        self.stacks[folded] = self.stacks.get(folded, 0) + count
        self.samples += count

    def merge(self, other: "StackProfile") -> "StackProfile":
        merged = StackProfile(self.stacks, self.samples)
        for folded, count in other.stacks.items():
            merged.stacks[folded] = merged.stacks.get(folded, 0) + count
        merged.samples += other.samples
        return merged

    def delta(self, earlier: "StackProfile") -> "StackProfile":
        """Samples accumulated since ``earlier`` (clamped at zero)."""
        out = StackProfile()
        for folded, count in self.stacks.items():
            diff = count - earlier.stacks.get(folded, 0)
            if diff > 0:
                out.stacks[folded] = diff
                out.samples += diff
        return out

    def by_role(self) -> dict[str, int]:
        """Sample counts aggregated by the role prefix of each stack."""
        roles: dict[str, int] = {}
        for folded, count in self.stacks.items():
            role = folded.split(";", 1)[0]
            roles[role] = roles.get(role, 0) + count
        return roles

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` hottest stacks, most-sampled first."""
        ranked = sorted(self.stacks.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def render_folded(self) -> str:
        """FlameGraph input: one ``stack count`` line per folded stack."""
        return "\n".join(
            f"{folded} {count}" for folded, count in sorted(self.stacks.items())
        )

    def to_dict(self) -> dict[str, Any]:
        return {"stacks": dict(self.stacks), "samples": self.samples}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StackProfile":
        return cls(
            {str(k): int(v) for k, v in data.get("stacks", {}).items()},
            samples=int(data.get("samples", 0)),
        )

    def __len__(self) -> int:
        return len(self.stacks)

    def __bool__(self) -> bool:
        return bool(self.stacks)


# ---------------------------------------------------------------------------
# The sampling profiler
# ---------------------------------------------------------------------------


class SamplingProfiler:
    """Background wall-clock sampler over ``sys._current_frames()``.

    Parameters
    ----------
    hz:
        Sampling rate; ``0`` (the default) disables the background thread
        entirely, so a server with ``profile_hz=0`` pays only an
        ``enabled`` attribute check (gated by ``check_overhead.py``).
    frames:
        Injectable frame source returning ``{ident: frame}``.  Tests pass
        synthetic frames to reproduce exact folded-stack counts without
        real threads.
    clock:
        Injectable monotonic clock for duty-cycle accounting.
    metrics:
        Registry for ``obs.profiler.*`` self-metering (samples taken,
        walk latency, duty cycle).
    inflight:
        Zero-argument callable returning the number of RPC requests
        currently in handlers; the stuck-thread detector only fires while
        this is positive.
    """

    def __init__(
        self,
        hz: float = 0.0,
        frames: Callable[[], Mapping[int, Any]] = sys._current_frames,
        clock: Callable[[], float] = time.perf_counter,
        metrics: MetricsRegistry | None = None,
        inflight: Callable[[], float] | None = None,
        max_depth: int = MAX_STACK_DEPTH,
    ) -> None:
        if hz < 0:
            raise ValueError("hz must be non-negative")
        self.hz = hz
        self.frames = frames
        self.clock = clock
        self.inflight = inflight
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._profile = StackProfile()
        #: ident -> (top frame label, consecutive identical samples, idle).
        self._top_runs: dict[int, tuple[str, int, bool]] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_samples = registry.counter("obs.profiler.samples")
        self._m_walk = registry.histogram("obs.profiler.walk_latency")
        self._m_duty = registry.gauge("obs.profiler.duty_cycle")
        self.last_walk_seconds = 0.0

    @property
    def enabled(self) -> bool:
        """True when configured to sample (``hz > 0``)."""
        return self.hz > 0

    @property
    def interval(self) -> float:
        return 1.0 / self.hz if self.hz > 0 else 0.0

    # -- sampling --------------------------------------------------------

    def sample_once(self) -> int:
        """Walk every thread's stack once; returns threads sampled.

        Synchronous and side-effect-complete: the background loop is just
        this on a timer, so deterministic tests drive it directly.
        """
        start = self.clock()
        own = threading.get_ident()
        snapshot = self.frames()
        sampled = 0
        with self._lock:
            for ident, frame in snapshot.items():
                if ident == own or frame is None:
                    continue
                role = current_role(ident)
                self._profile.add(fold_stack(frame, role, self.max_depth))
                top = frame_label(frame)
                prev = self._top_runs.get(ident)
                run = prev[1] + 1 if prev is not None and prev[0] == top else 1
                self._top_runs[ident] = (
                    top,
                    run,
                    frame.f_code.co_name in IDLE_FRAME_NAMES,
                )
                sampled += 1
            # Threads that exited since the last sample drop out of the
            # stuck-run bookkeeping.
            for ident in list(self._top_runs):
                if ident not in snapshot:
                    del self._top_runs[ident]
        walk = self.clock() - start
        self.last_walk_seconds = walk
        self._m_samples.inc(sampled)
        if not self._m_walk.noop:
            self._m_walk.observe(walk)
        if self.hz > 0:
            self._m_duty.set(min(1.0, walk * self.hz))
        return sampled

    def profile(self) -> StackProfile:
        """Copy of the cumulative profile accumulated so far."""
        with self._lock:
            return StackProfile(self._profile.stacks, self._profile.samples)

    def reset(self) -> None:
        with self._lock:
            self._profile = StackProfile()
            self._top_runs.clear()

    # -- thread-state introspection --------------------------------------

    def thread_dump(self, tracer: Any = None, top: int = 8) -> list[dict]:
        """Point-in-time dump: role, current span and top frames per thread.

        ``tracer`` defaults to the installed process-wide tracer; span
        context comes from its per-thread active-span map, so a dump taken
        from the admin RPC sees what *other* threads are doing.
        """
        if tracer is None:
            from repro.obs import tracing

            tracer = tracing.current_tracer()
        names = {t.ident: t.name for t in threading.enumerate()}
        own = threading.get_ident()
        dump: list[dict] = []
        with self._lock:
            runs = dict(self._top_runs)
        for ident, frame in sorted(self.frames().items()):
            if frame is None:
                continue
            labels: list[str] = []
            cursor = frame
            while cursor is not None and len(labels) < top:
                labels.append(frame_label(cursor))
                cursor = cursor.f_back
            context = (
                tracer.context_for_thread(ident) if tracer is not None else None
            )
            run = runs.get(ident)
            dump.append(
                {
                    "ident": ident,
                    "name": names.get(ident, ""),
                    "role": "profiler" if ident == own else current_role(ident),
                    "frames": labels,
                    "trace_id": context[0] if context else None,
                    "span_id": context[1] if context else None,
                    "idle": frame.f_code.co_name in IDLE_FRAME_NAMES,
                    "consecutive_top": run[1] if run else 0,
                }
            )
        return dump

    def thread_states(self) -> list[dict]:
        """Per-thread stuck-run bookkeeping, detector-input shaped."""
        with self._lock:
            runs = dict(self._top_runs)
        return [
            {
                "ident": ident,
                "role": current_role(ident),
                "top_frame": top,
                "consecutive": run,
                "idle": idle,
            }
            for ident, (top, run, idle) in sorted(runs.items())
        ]

    def detections(self) -> list[Detection]:
        """Stuck-thread detections from the accumulated sample runs."""
        inflight = float(self.inflight()) if self.inflight is not None else 0.0
        return detect_stuck_threads(self.thread_states(), inflight=inflight)

    # -- background operation --------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Sample every ``1/hz`` seconds on a daemon thread."""
        if not self.enabled:
            raise ValueError("cannot start a profiler with hz=0")
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        register_thread("profiler")
        try:
            while not self._stop.wait(self.interval):
                try:
                    self.sample_once()
                except Exception:
                    # A torn frame snapshot must not kill the sampler; the
                    # next tick retries.
                    continue
        finally:
            unregister_thread()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- exposure --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """``admin_profile`` payload (wire-safe)."""
        profile = self.profile()
        return {
            "enabled": self.enabled,
            "hz": self.hz,
            "samples": profile.samples,
            "duty_cycle": self._m_duty.value,
            "roles": profile.by_role(),
            "profile": profile.to_dict(),
        }
