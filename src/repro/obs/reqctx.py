"""Per-request cost context (thread-local, zero-cost when inactive).

The accounting layer needs one place where deep subsystems — the SQL
profiler, the WAL — can charge costs to *the request currently
executing* without threading a context object through every call
signature.  This module is that place: a thread-local
:class:`RequestCosts` record activated by the RPC server for the span of
one handler call and read back when the request completes.

Design constraints (mirroring :mod:`repro.obs.tracing`):

* **Bare paths stay bare.**  Code that merely *might* run under a
  request (``WriteAheadLog.log``, ``QueryProfiler.record``) guards with
  a single ``current()`` call — one thread-local attribute read — and
  pays nothing else when no context is active (embedded engines, tests,
  background threads).
* **Nesting is safe.**  ``activate`` saves the previous context and
  ``deactivate`` restores it, so a handler that locally re-enters the
  RPC layer (e.g. the combined client inside a server process) never
  corrupts its caller's attribution.
* **No locking.**  The context is thread-local by construction;
  transports run one request per connection thread at a time.
"""

from __future__ import annotations

import threading

_tls = threading.local()


class RequestCosts:
    """Mutable cost vector for one in-flight request."""

    __slots__ = ("principal", "rows_examined", "wal_bytes", "db_time")

    def __init__(self, principal: str = "anonymous") -> None:
        self.principal = principal
        self.rows_examined = 0
        self.wal_bytes = 0
        self.db_time = 0.0


def activate(principal: str) -> RequestCosts:
    """Install a fresh cost context for the current thread.

    Returns the new context; the caller must pair this with
    :func:`deactivate` (in a ``finally``) to restore the previous one.
    """
    ctx = RequestCosts(principal)
    ctx_prev = getattr(_tls, "ctx", None)
    _tls.prev = ctx_prev
    _tls.ctx = ctx
    return ctx


def deactivate() -> None:
    """Remove the active context, restoring any enclosing one."""
    _tls.ctx = getattr(_tls, "prev", None)
    _tls.prev = None


def current() -> RequestCosts | None:
    """The active context, or ``None`` outside any request."""
    return getattr(_tls, "ctx", None)


def principal() -> str | None:
    """Accounting principal of the active request, or ``None``."""
    ctx = getattr(_tls, "ctx", None)
    return ctx.principal if ctx is not None else None


def add_rows(n: int) -> None:
    """Charge ``n`` examined rows to the active request, if any."""
    ctx = getattr(_tls, "ctx", None)
    if ctx is not None:
        ctx.rows_examined += n


def add_wal_bytes(n: int) -> None:
    """Charge ``n`` WAL bytes to the active request, if any."""
    ctx = getattr(_tls, "ctx", None)
    if ctx is not None:
        ctx.wal_bytes += n


def add_db_time(seconds: float) -> None:
    """Charge profiled statement time to the active request, if any."""
    ctx = getattr(_tls, "ctx", None)
    if ctx is not None:
        ctx.db_time += seconds
