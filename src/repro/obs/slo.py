"""Service-level objectives: SLIs, multi-window burn rates, error budgets.

The paper's end-to-end claims (Figs. 4-6, 11-13) are statements about
operation rates and latency under load; this module turns the live metric
stream into the operational version of those statements — "is the cluster
meeting its targets per operation class right now, and how fast is it
spending its error budget?"

Two service-level indicators per **operation class** (``add``, ``query``,
``bulk``, ``wildcard``):

* **availability** — ``1 - errors/requests`` over a window, from the
  ``rpc.requests``/``rpc.errors`` counters;
* **latency** — the fraction of requests completing under the class
  threshold, from the ``rpc.latency`` histogram buckets (the threshold
  rounds up to the next bucket boundary, a conservative under-count of
  slow requests by at most one bucket).

Alerting follows the multi-window multi-burn-rate recipe: *burn rate* is
``(1 - SLI) / (1 - target)`` (1.0 = spending the budget exactly on
schedule), and an alert fires only when **both** a short and a long
window exceed the threshold — the short window for fast reaction, the
long window to suppress blips:

* **fast**: burn >= 14.4 over 5 m *and* 1 h (critical — a 30-day budget
  gone in ~2 days);
* **slow**: burn >= 1.0 over 6 h *and* 3 d (warning — on track to just
  exhaust the budget).

The :class:`SLITracker` is the windowed arithmetic over explicit
``(t, requests, errors, slow)`` records — directly usable on the
simulator's virtual clock.  The :class:`SLIRecorder` feeds trackers from
a :class:`~repro.obs.metrics.MetricsRegistry` by snapshot subtraction
(the Scraper idiom) and exports ``slo.*`` gauges back into the registry
so burn rates ride the existing scrape/collect/analyze pipeline.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    bucket_index,
    split_metric_key,
)

__all__ = [
    "BurnWindow",
    "DEFAULT_LATENCY_THRESHOLDS",
    "FAST_BURN_THRESHOLD",
    "OPERATION_CLASSES",
    "SLIRecorder",
    "SLITracker",
    "SLOW_BURN_THRESHOLD",
    "SLOPolicy",
    "classify_method",
]


# -- operation classes ------------------------------------------------------

_ADD_METHODS = frozenset(
    {
        "lrc_create_mapping",
        "lrc_add_mapping",
        "lrc_delete_mapping",
        "lrc_attr_define",
        "lrc_attr_undefine",
        "lrc_attr_add",
        "lrc_attr_modify",
        "lrc_attr_remove",
    }
)
_QUERY_METHODS = frozenset(
    {
        "lrc_get_mappings",
        "lrc_get_lfns",
        "lrc_exists",
        "lrc_lfn_count",
        "lrc_mapping_count",
        "lrc_attr_get",
        "rli_query",
        "rli_lrc_list",
    }
)
_BULK_METHODS = frozenset(
    {
        "lrc_bulk_create",
        "lrc_bulk_add",
        "lrc_bulk_delete",
        "lrc_bulk_query",
        "lrc_attr_bulk_add",
        "rli_bulk_query",
    }
)
_WILDCARD_METHODS = frozenset(
    {
        "lrc_query_wildcard",
        "rli_query_wildcard",
        "lrc_attr_query",
    }
)

#: The SLO-bearing operation classes, in display order.
OPERATION_CLASSES: tuple[str, ...] = ("add", "query", "bulk", "wildcard")

_CLASS_BY_METHOD: dict[str, str] = {}
for _m in _ADD_METHODS:
    _CLASS_BY_METHOD[_m] = "add"
for _m in _QUERY_METHODS:
    _CLASS_BY_METHOD[_m] = "query"
for _m in _BULK_METHODS:
    _CLASS_BY_METHOD[_m] = "bulk"
for _m in _WILDCARD_METHODS:
    _CLASS_BY_METHOD[_m] = "wildcard"


def classify_method(method: str) -> str | None:
    """Operation class of an RPC method, or ``None`` for non-SLO traffic
    (admin surfaces, mirror/RLI internal replication)."""
    cls = _CLASS_BY_METHOD.get(method)
    if cls is not None:
        return cls
    # Unlisted client-facing methods added later: classify by shape so a
    # new bulk/wildcard RPC lands in the right class without a table edit.
    if method.startswith(("admin_", "mirror_", "lrc_mirror", "lrc_rli", "rli_")):
        return None
    if "wildcard" in method:
        return "wildcard"
    if "bulk" in method:
        return "bulk"
    return None


# -- policy -----------------------------------------------------------------


@dataclass(frozen=True)
class BurnWindow:
    """One multi-window alert rule: fire when burn exceeds ``threshold``
    over **both** the ``short`` and ``long`` window."""

    name: str
    short: float
    long: float
    threshold: float
    severity: str


#: Fast burn: a 30-day budget consumed in ~2 days.
FAST_BURN_THRESHOLD = 14.4
#: Slow burn: budget being spent exactly on schedule.
SLOW_BURN_THRESHOLD = 1.0

FAST_WINDOW = BurnWindow(
    name="fast",
    short=300.0,
    long=3600.0,
    threshold=FAST_BURN_THRESHOLD,
    severity="critical",
)
SLOW_WINDOW = BurnWindow(
    name="slow",
    short=6 * 3600.0,
    long=3 * 86400.0,
    threshold=SLOW_BURN_THRESHOLD,
    severity="warning",
)

#: Per-class latency thresholds (seconds): bulk and wildcard operations
#: legitimately take longer than point reads/writes.
DEFAULT_LATENCY_THRESHOLDS: dict[str, float] = {
    "add": 0.050,
    "query": 0.050,
    "bulk": 1.0,
    "wildcard": 0.500,
}


@dataclass(frozen=True)
class SLOPolicy:
    """Targets and windows for one deployment."""

    availability_target: float = 0.999
    latency_target: float = 0.99
    #: Default latency threshold (seconds) for classes not overridden.
    latency_threshold: float = 0.050
    latency_thresholds: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_LATENCY_THRESHOLDS)
    )
    windows: tuple[BurnWindow, ...] = (FAST_WINDOW, SLOW_WINDOW)
    #: Error-budget accounting horizon (seconds).
    budget_window: float = 3 * 86400.0

    def threshold_for(self, op_class: str) -> float:
        return self.latency_thresholds.get(op_class, self.latency_threshold)

    def horizon(self) -> float:
        """Oldest record any window can still see."""
        spans = [w.long for w in self.windows] + [self.budget_window]
        return max(spans)

    def to_dict(self) -> dict[str, Any]:
        return {
            "availability_target": self.availability_target,
            "latency_target": self.latency_target,
            "latency_thresholds": {
                cls: self.threshold_for(cls) for cls in OPERATION_CLASSES
            },
            "windows": [
                {
                    "name": w.name,
                    "short": w.short,
                    "long": w.long,
                    "threshold": w.threshold,
                    "severity": w.severity,
                }
                for w in self.windows
            ],
            "budget_window": self.budget_window,
        }


# -- windowed SLI arithmetic ------------------------------------------------


class SLITracker:
    """Windowed SLI/burn-rate arithmetic for one operation class.

    Feed it ``record(t, requests, errors, slow)`` deltas on any clock
    (wall or simulated); query SLIs, burn rates, alerts and the error
    budget at any ``now``.  Windows with no traffic have an undefined SLI
    (``None``) and burn zero — silence is not an outage.
    """

    def __init__(self, policy: SLOPolicy | None = None) -> None:
        self.policy = policy if policy is not None else SLOPolicy()
        self._lock = threading.Lock()
        self._records: deque[tuple[float, int, int, int]] = deque()

    def record(
        self, t: float, requests: int, errors: int, slow: int = 0
    ) -> None:
        """Append one interval's delta, trimming beyond the horizon."""
        horizon = self.policy.horizon()
        with self._lock:
            self._records.append((t, requests, errors, slow))
            while self._records and self._records[0][0] < t - horizon:
                self._records.popleft()

    def _sums(self, window: float, now: float) -> tuple[int, int, int]:
        cutoff = now - window
        requests = errors = slow = 0
        with self._lock:
            for t, r, e, s in reversed(self._records):
                if t <= cutoff:
                    break
                requests += r
                errors += e
                slow += s
        return requests, errors, slow

    def availability(self, window: float, now: float) -> float | None:
        requests, errors, _ = self._sums(window, now)
        if requests == 0:
            return None
        return 1.0 - min(errors, requests) / requests

    def latency_sli(self, window: float, now: float) -> float | None:
        requests, _, slow = self._sums(window, now)
        if requests == 0:
            return None
        return 1.0 - min(slow, requests) / requests

    def burn_rate(self, window: float, now: float, kind: str) -> float:
        """Budget spend rate over a window; 0.0 when the SLI is undefined."""
        if kind == "availability":
            sli = self.availability(window, now)
            target = self.policy.availability_target
        else:
            sli = self.latency_sli(window, now)
            target = self.policy.latency_target
        if sli is None or target >= 1.0:
            return 0.0
        return (1.0 - sli) / (1.0 - target)

    def alerts(self, now: float) -> list[dict[str, Any]]:
        """Multi-window rules that currently fire (short AND long)."""
        out: list[dict[str, Any]] = []
        for window in self.policy.windows:
            for kind in ("availability", "latency"):
                short_burn = self.burn_rate(window.short, now, kind)
                long_burn = self.burn_rate(window.long, now, kind)
                if (
                    short_burn >= window.threshold
                    and long_burn >= window.threshold
                ):
                    out.append(
                        {
                            "window": window.name,
                            "kind": kind,
                            "severity": window.severity,
                            "threshold": window.threshold,
                            "burn_short": short_burn,
                            "burn_long": long_burn,
                        }
                    )
        return out

    def budget(self, now: float) -> dict[str, Any]:
        """Error-budget accounting over ``policy.budget_window``."""
        window = self.policy.budget_window
        requests, errors, slow = self._sums(window, now)
        allowed_err = (1.0 - self.policy.availability_target) * requests
        allowed_slow = (1.0 - self.policy.latency_target) * requests
        return {
            "window": window,
            "requests": requests,
            "errors": errors,
            "slow": slow,
            "availability_budget_remaining": (
                max(0.0, 1.0 - errors / allowed_err) if allowed_err > 0
                else 1.0
            ),
            "latency_budget_remaining": (
                max(0.0, 1.0 - slow / allowed_slow) if allowed_slow > 0
                else 1.0
            ),
        }

    def to_dict(self, now: float) -> dict[str, Any]:
        windows: dict[str, Any] = {}
        for window in self.policy.windows:
            for label, span in (("short", window.short), ("long", window.long)):
                key = f"{window.name}_{label}"
                requests, errors, slow = self._sums(span, now)
                windows[key] = {
                    "seconds": span,
                    "requests": requests,
                    "errors": errors,
                    "slow": slow,
                    "availability": self.availability(span, now),
                    "latency_sli": self.latency_sli(span, now),
                    "burn_availability": self.burn_rate(
                        span, now, "availability"
                    ),
                    "burn_latency": self.burn_rate(span, now, "latency"),
                }
        return {
            "windows": windows,
            "alerts": self.alerts(now),
            "budget": self.budget(now),
        }


def slow_observations(
    counts: Iterable[int], threshold: float
) -> int:
    """Observations *slower than* ``threshold`` in a histogram delta.

    Counts every bucket lying entirely above the threshold — a request
    finishing exactly at the threshold is on time.  Exact when the
    threshold sits on a bucket boundary (the log-2 grid starting at
    1 µs: 32.768 ms, 65.536 ms, ...); for mid-bucket thresholds — the
    50 ms default included — a conservative under-count by at most one
    bucket, so the latency SLI errs toward "meeting", never toward
    false alerts.
    """
    counts = tuple(counts)
    # counts[i] holds values in (BUCKET_BOUNDS[i-1], BUCKET_BOUNDS[i]];
    # bucket_index(threshold) is the bucket that contains the threshold
    # itself, which may also hold on-time values — skip it.
    return sum(counts[bucket_index(threshold) + 1:])


# -- registry-driven recorder -----------------------------------------------


class SLIRecorder:
    """Feeds per-class :class:`SLITracker`\\ s from a metrics registry.

    Each :meth:`tick` snapshots the registry, subtracts the previous
    snapshot (the Scraper idiom — the first tick only primes), classifies
    every ``rpc.requests{method=}`` delta into an operation class, counts
    slow observations from the ``rpc.latency{method=}`` bucket deltas
    above the class threshold, and exports the resulting burn rates and
    SLIs as ``slo.*`` gauges tagged ``class=``/``shard=``/``endpoint=``
    so they ride the existing scrape -> collect -> analyze pipeline.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        policy: SLOPolicy | None = None,
        shard: str = "",
        endpoint: str = "",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry
        self.policy = policy if policy is not None else SLOPolicy()
        self.shard = shard
        self.endpoint = endpoint
        self.clock = clock
        self.trackers: dict[str, SLITracker] = {
            cls: SLITracker(self.policy) for cls in OPERATION_CLASSES
        }
        self._lock = threading.Lock()
        self._last: MetricsSnapshot | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.ticks = 0
        # Self-metering, like the profiler and scraper: the recorder's
        # own cost must be visible to the overhead gate.
        self._m_ticks = registry.counter("obs.slo.ticks")
        self._m_tick_latency = registry.histogram("obs.slo.tick_latency")

    def _labels(self, **extra: str) -> dict[str, str]:
        labels = dict(extra)
        if self.shard:
            labels["shard"] = self.shard
        if self.endpoint:
            labels["endpoint"] = self.endpoint
        return labels

    def tick(self, now: float | None = None) -> None:
        """One recording pass.  Cheap enough for on-demand use: the
        default ``slo_tick_interval=0`` runs no thread and ticks at
        ``admin_slo`` time instead, with identical window arithmetic."""
        t0 = time.perf_counter()
        if now is None:
            now = self.clock()
        with self._lock:
            snapshot = self.registry.snapshot()
            last, self._last = self._last, snapshot
            if last is None:
                # Priming tick: no interval to attribute yet, but the
                # snapshot work still happened — meter it.
                self._m_ticks.inc()
                self._m_tick_latency.observe(time.perf_counter() - t0)
                return
            delta = snapshot.delta(last)
            per_class: dict[str, list[int]] = {
                cls: [0, 0, 0] for cls in OPERATION_CLASSES
            }
            for key, value in delta.counters.items():
                name, labels = split_metric_key(key)
                if name not in ("rpc.requests", "rpc.errors"):
                    continue
                cls = classify_method(labels.get("method", ""))
                if cls is None:
                    continue
                if name == "rpc.requests":
                    per_class[cls][0] += value
                else:
                    per_class[cls][1] += value
            for key, hist in delta.histograms.items():
                name, labels = split_metric_key(key)
                if name != "rpc.latency":
                    continue
                cls = classify_method(labels.get("method", ""))
                if cls is None:
                    continue
                per_class[cls][2] += slow_observations(
                    hist.counts, self.policy.threshold_for(cls)
                )
            for cls, (requests, errors, slow) in per_class.items():
                # rpc.requests counts successes only; the SLI denominator
                # is all attempts.
                self.trackers[cls].record(
                    now, requests + errors, errors, slow
                )
            self._export(now)
            self.ticks += 1
        self._m_ticks.inc()
        self._m_tick_latency.observe(time.perf_counter() - t0)

    def _export(self, now: float) -> None:
        for cls, tracker in self.trackers.items():
            labels = self._labels(**{"class": cls})
            avail = tracker.availability(FAST_WINDOW.short, now)
            self.registry.gauge("slo.availability", **labels).set(
                1.0 if avail is None else avail
            )
            lat = tracker.latency_sli(FAST_WINDOW.short, now)
            self.registry.gauge("slo.latency_sli", **labels).set(
                1.0 if lat is None else lat
            )
            budget = tracker.budget(now)
            self.registry.gauge("slo.budget_remaining", **labels).set(
                min(
                    budget["availability_budget_remaining"],
                    budget["latency_budget_remaining"],
                )
            )
            for window in self.policy.windows:
                burn = max(
                    tracker.burn_rate(window.short, now, "availability"),
                    tracker.burn_rate(window.short, now, "latency"),
                )
                self.registry.gauge(
                    "slo.burn_rate",
                    **self._labels(**{"class": cls, "window": window.name}),
                ).set(burn)

    def alerts(self, now: float | None = None) -> list[dict[str, Any]]:
        if now is None:
            now = self.clock()
        out: list[dict[str, Any]] = []
        for cls, tracker in self.trackers.items():
            for alert in tracker.alerts(now):
                alert["class"] = cls
                if self.shard:
                    alert["shard"] = self.shard
                if self.endpoint:
                    alert["endpoint"] = self.endpoint
                out.append(alert)
        return out

    def to_dict(self, now: float | None = None) -> dict[str, Any]:
        """The ``admin_slo`` payload."""
        if now is None:
            now = self.clock()
        return {
            "enabled": True,
            "shard": self.shard,
            "endpoint": self.endpoint,
            "ticks": self.ticks,
            "policy": self.policy.to_dict(),
            "classes": {
                cls: tracker.to_dict(now)
                for cls, tracker in self.trackers.items()
            },
            "alerts": self.alerts(now),
        }

    # -- optional background thread (Scraper lifecycle idiom) ------------

    def start(self, interval: float) -> "SLIRecorder":
        if self._thread is not None:
            return self
        self._stop.clear()

        def loop() -> None:
            from repro.obs.profile import thread_role

            with thread_role("slo"):
                while not self._stop.wait(interval):
                    try:
                        self.tick()
                    except Exception:
                        pass  # never let a tick kill the recorder

        self._thread = threading.Thread(
            target=loop, name="sli-recorder", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
