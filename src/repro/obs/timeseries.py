"""Bounded time-series storage and the snapshot-delta scraper.

PR 1's registry answers "what happened so far"; the paper's evaluation is
about *trajectories* — the VACUUM sawtooth (Fig. 8), soft-state staleness
between updates (§4.2), WAN update contention (Fig. 13).  This module adds
the time axis:

* :class:`TimeSeries` — a bounded ring buffer of ``(t, value)`` points;
* :class:`SeriesStore` — a thread-safe map of series keyed like metrics;
* :class:`Scraper` — periodically pulls :class:`MetricsSnapshot`\\ s from a
  source (an in-process registry or a remote ``admin_metrics`` RPC),
  subtracts consecutive snapshots, and records per-interval **rates** for
  counters, **values** for gauges, and **interval p95s** for histograms.

Series keys derive from metric keys: a counter ``rpc.requests{method=m}``
produces ``rpc.requests{method=m}:rate`` (per-second over the scrape
interval); a histogram produces ``<key>:p95`` and ``<key>:rate``; gauges
keep their key unchanged.  The scraper also folds every ``rpc.requests``
counter into one ``ops:rate`` series — the node's total operation
throughput, the quantity the paper plots on most of its y-axes.

The clock is injectable (``clock=lambda: sim.now`` drives the scraper in
virtual time from the discrete-event simulator); :meth:`Scraper.start`
spawns a real-time background thread for live deployments.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.obs.metrics import MetricsSnapshot, split_metric_key

#: Default number of points retained per series (ring buffer size).
DEFAULT_CAPACITY = 720

#: Default scrape period for background scrapers, seconds.
DEFAULT_INTERVAL = 1.0

#: Suffix conventions for series derived from one metric key.
RATE_SUFFIX = ":rate"
P95_SUFFIX = ":p95"

#: Series key for the node-wide operation throughput signal.
OPS_RATE_KEY = "ops:rate"


class TimeSeries:
    """Bounded sequence of ``(t, value)`` samples, oldest evicted first."""

    __slots__ = ("_points", "_lock")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._points: deque[tuple[float, float]] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._points.maxlen or 0

    def append(self, t: float, value: float) -> None:
        with self._lock:
            self._points.append((t, float(value)))

    def points(self) -> list[tuple[float, float]]:
        with self._lock:
            return list(self._points)

    def values(self) -> list[float]:
        with self._lock:
            return [v for _, v in self._points]

    def times(self) -> list[float]:
        with self._lock:
            return [t for t, _ in self._points]

    def latest(self) -> tuple[float, float] | None:
        with self._lock:
            return self._points[-1] if self._points else None

    def window(self, since: float) -> list[tuple[float, float]]:
        """Points with ``t >= since`` (the live tail of the series)."""
        with self._lock:
            return [(t, v) for t, v in self._points if t >= since]

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)

    def __bool__(self) -> bool:
        return len(self) > 0


class SeriesStore:
    """Thread-safe collection of named :class:`TimeSeries`.

    Keys follow the metric-key grammar (``name{label=value}`` plus a
    derivation suffix such as ``:rate``); :meth:`record` creates series on
    first use, so producers never pre-declare what they emit.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._series: dict[str, TimeSeries] = {}

    def series(self, key: str) -> TimeSeries:
        """Get-or-create the series for ``key``."""
        existing = self._series.get(key)
        if existing is None:
            with self._lock:
                existing = self._series.setdefault(
                    key, TimeSeries(self.capacity)
                )
        return existing

    def record(self, key: str, t: float, value: float) -> None:
        self.series(key).append(t, value)

    def get(self, key: str) -> TimeSeries | None:
        return self._series.get(key)

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def latest(self, key: str) -> float | None:
        series = self._series.get(key)
        if series is None:
            return None
        point = series.latest()
        return point[1] if point is not None else None

    def items(self) -> list[tuple[str, TimeSeries]]:
        with self._lock:
            return sorted(self._series.items())

    def to_dict(self) -> dict[str, list[list[float]]]:
        """JSON-safe dump: ``{key: [[t, value], ...]}`` (artifact schema)."""
        return {
            key: [[t, v] for t, v in series.points()]
            for key, series in self.items()
        }


@dataclass(frozen=True)
class ScrapeResult:
    """One scrape: the cumulative snapshot plus the interval delta."""

    t: float
    interval: float
    snapshot: MetricsSnapshot
    delta: MetricsSnapshot

    def counter_rate(self, key: str) -> float:
        """Per-second rate of one counter over this scrape interval."""
        if self.interval <= 0:
            return 0.0
        return self.delta.counters.get(key, 0) / self.interval

    def ops_rate(self) -> float:
        """Total RPC request rate (all methods) over this interval."""
        if self.interval <= 0:
            return 0.0
        total = sum(
            value
            for key, value in self.delta.counters.items()
            if split_metric_key(key)[0] == "rpc.requests"
        )
        return total / self.interval


class Scraper:
    """Turns a snapshot source into time series via snapshot subtraction.

    The first call to :meth:`scrape_once` primes the baseline and records
    nothing (there is no interval yet); every later call records derived
    series into ``store``.  ``source`` is any zero-argument callable
    returning a :class:`MetricsSnapshot` — a bound ``registry.snapshot``
    for in-process use, or a lambda wrapping the ``admin_metrics`` RPC for
    remote nodes.
    """

    def __init__(
        self,
        source: Callable[[], MetricsSnapshot],
        store: SeriesStore | None = None,
        interval: float = DEFAULT_INTERVAL,
        clock: Callable[[], float] = time.monotonic,
        on_scrape: Callable[[ScrapeResult], None] | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.source = source
        self.store = store if store is not None else SeriesStore()
        self.interval = interval
        self.clock = clock
        self.on_scrape = on_scrape
        self.scrapes = 0
        self._last: tuple[float, MetricsSnapshot] | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def last_snapshot(self) -> MetricsSnapshot | None:
        """The most recently scraped cumulative snapshot, if any."""
        return self._last[1] if self._last is not None else None

    # -- one scrape ------------------------------------------------------

    def scrape_once(self, now: float | None = None) -> ScrapeResult | None:
        """Pull one snapshot; returns ``None`` on the priming scrape.

        ``now`` overrides the clock (simulator integration and tests).
        """
        t = self.clock() if now is None else now
        snapshot = self.source()
        last = self._last
        self._last = (t, snapshot)
        self.scrapes += 1
        if last is None:
            return None
        last_t, last_snapshot = last
        interval = t - last_t
        if interval <= 0:
            return None  # clock did not advance; nothing to rate
        delta = snapshot.delta(last_snapshot)
        result = ScrapeResult(
            t=t, interval=interval, snapshot=snapshot, delta=delta
        )
        self._record(result)
        if self.on_scrape is not None:
            self.on_scrape(result)
        return result

    def _record(self, result: ScrapeResult) -> None:
        store, t, dt = self.store, result.t, result.interval
        ops_total = 0
        for key, value in result.delta.counters.items():
            store.record(f"{key}{RATE_SUFFIX}", t, value / dt)
            if split_metric_key(key)[0] == "rpc.requests":
                ops_total += value
        store.record(OPS_RATE_KEY, t, ops_total / dt)
        for key, value in result.delta.gauges.items():
            store.record(key, t, value)
        for key, hist in result.delta.histograms.items():
            if hist.count:
                store.record(f"{key}{P95_SUFFIX}", t, hist.percentile(95))
                store.record(f"{key}{RATE_SUFFIX}", t, hist.count / dt)

    # -- background operation -------------------------------------------

    def start(self) -> "Scraper":
        """Scrape every ``interval`` seconds on a daemon thread."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self.scrape_once()  # prime immediately so the first tick rates
        self._thread = threading.Thread(
            target=self._loop, name="obs-scraper", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        from repro.obs.profile import register_thread, unregister_thread

        register_thread("scraper")
        try:
            while not self._stop.wait(self.interval):
                try:
                    self.scrape_once()
                except Exception:
                    # A failing source (e.g. a node mid-restart) must not
                    # kill the scrape loop; the next tick retries.
                    continue
        finally:
            unregister_thread()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "Scraper":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


def rate_key(name: str, **labels: str) -> str:
    """Series key for a counter's rate (mirrors :func:`metric_key`)."""
    from repro.obs.metrics import metric_key

    return f"{metric_key(name, labels)}{RATE_SUFFIX}"


def merge_points(
    series_list: Iterable[TimeSeries],
) -> list[tuple[float, float]]:
    """Time-ordered union of points from several series (render helper)."""
    merged: list[tuple[float, float]] = []
    for series in series_list:
        merged.extend(series.points())
    merged.sort(key=lambda point: point[0])
    return merged


def summarize(series: TimeSeries) -> dict[str, Any]:
    """Plain-data summary of one series (used by CLI surfaces)."""
    values = series.values()
    if not values:
        return {"count": 0}
    return {
        "count": len(values),
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
        "last": values[-1],
    }
