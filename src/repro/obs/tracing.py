"""Lightweight tracing: spans, a tracer, and RPC context propagation.

One client request produces a *span tree* covering every layer it crosses:

    rpc.call:lrc_add_mapping          (client side)
      rpc.handle:lrc_add_mapping      (server dispatcher)
        acl.check                     (authorization)
        sql.execute                   (each statement the LRC issues)
        wal.flush                     (the commit durability barrier)

Propagation works two ways, matching the two transports:

* **In-process** (:class:`~repro.net.transport.LocalTransport`): the
  server handler runs in the caller's thread, so the tracer's thread-local
  span stack parents server-side spans under the client span directly.
* **TCP**: the client attaches ``(trace_id, span_id)`` to the
  :class:`~repro.net.messages.Request` (a backwards-compatible optional
  wire field) and the server-side span adopts it as an explicit parent.

No tracer is installed by default: :func:`span` then returns a shared
no-op context manager, so instrumentation sites cost one function call.
Install with :func:`install_tracer` (tests, debugging, the ``stats``
surfaces) and remove with ``install_tracer(None)``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterator

_ids = itertools.count(1)


def _next_id() -> str:
    return format(next(_ids), "x")


@dataclass
class Span:
    """One timed operation; ``parent_id`` links spans into a tree."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start: float = 0.0
    duration: float = 0.0
    tags: dict[str, Any] = field(default_factory=dict)
    error: str | None = None

    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value


class _NullSpan:
    """Shared do-nothing span for the tracer-absent fast path."""

    __slots__ = ()
    trace_id = ""
    span_id = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set_tag(self, key: str, value: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager that opens a span on entry and records it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    @property
    def trace_id(self) -> str:
        return self._span.trace_id

    @property
    def span_id(self) -> str:
        return self._span.span_id

    def set_tag(self, key: str, value: Any) -> None:
        self._span.tags[key] = value

    def __enter__(self) -> "_SpanHandle":
        self._tracer._push(self._span)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.error = exc_type.__name__
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects finished spans, retaining the most recent traces.

    Thread-safe: each thread keeps its own current-span stack; finished
    spans land in a bounded per-trace store (oldest traces evicted).
    """

    def __init__(self, max_traces: int = 256) -> None:
        self.max_traces = max_traces
        self._local = threading.local()
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, list[Span]]" = OrderedDict()

    # -- span lifecycle --------------------------------------------------

    def span(
        self,
        name: str,
        parent: tuple[str, str] | None = None,
        **tags: Any,
    ) -> _SpanHandle:
        """Open a child span of ``parent`` (explicit ``(trace_id, span_id)``
        wire context) or of the thread's current span, or a new root."""
        if parent is not None and parent[0]:
            trace_id, parent_id = parent[0], parent[1]
        else:
            current = self.current()
            if current is not None:
                trace_id, parent_id = current.trace_id, current.span_id
            else:
                trace_id, parent_id = _next_id(), None
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=_next_id(),
            parent_id=parent_id,
            start=time.perf_counter(),
            tags=dict(tags) if tags else {},
        )
        return _SpanHandle(self, span)

    def current(self) -> Span | None:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def context(self) -> tuple[str, str] | None:
        """Wire context ``(trace_id, span_id)`` of the current span."""
        current = self.current()
        if current is None:
            return None
        return (current.trace_id, current.span_id)

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(span)

    def _pop(self, span: Span) -> None:
        span.duration = time.perf_counter() - span.start
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            spans = self._traces.get(span.trace_id)
            if spans is None:
                self._traces[span.trace_id] = [span]
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
            else:
                spans.append(span)
                self._traces.move_to_end(span.trace_id)

    # -- inspection ------------------------------------------------------

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def spans(self, trace_id: str) -> list[Span]:
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def span_tree(self, trace_id: str) -> list[dict[str, Any]]:
        """Nested view of one trace: each node is ``{span, children}``.

        Roots are spans whose parent was never recorded locally (e.g. the
        client span of a request that arrived over TCP).
        """
        spans = self.spans(trace_id)
        nodes = {
            s.span_id: {"span": s, "children": []} for s in spans
        }
        roots: list[dict[str, Any]] = []
        for s in spans:
            node = nodes[s.span_id]
            parent = nodes.get(s.parent_id) if s.parent_id else None
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        return roots

    def find_spans(self, name: str) -> list[Span]:
        """Every finished span with ``name``, across retained traces."""
        with self._lock:
            return [
                s
                for spans in self._traces.values()
                for s in spans
                if s.name == name
            ]

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()


def walk_tree(tree: list[dict[str, Any]]) -> Iterator[tuple[int, Span]]:
    """Depth-first (depth, span) pairs over a :meth:`Tracer.span_tree`."""
    stack = [(0, node) for node in reversed(tree)]
    while stack:
        depth, node = stack.pop()
        yield depth, node["span"]
        for child in reversed(node["children"]):
            stack.append((depth + 1, child))


def format_tree(tree: list[dict[str, Any]]) -> str:
    """Human-readable indentation view of one trace."""
    lines = []
    for depth, s in walk_tree(tree):
        tags = (
            " " + " ".join(f"{k}={v}" for k, v in s.tags.items())
            if s.tags
            else ""
        )
        lines.append(f"{'  ' * depth}{s.name} {s.duration * 1e3:.3f}ms{tags}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Module-level installation point
# ---------------------------------------------------------------------------

_tracer: Tracer | None = None


def install_tracer(tracer: Tracer | None) -> None:
    """Install (or with ``None`` remove) the process-wide tracer."""
    global _tracer
    _tracer = tracer


def current_tracer() -> Tracer | None:
    return _tracer


def active() -> bool:
    return _tracer is not None


def span(name: str, parent: tuple[str, str] | None = None, **tags: Any):
    """Open a span on the installed tracer, or a shared no-op if none."""
    tracer = _tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, parent=parent, **tags)


def context() -> tuple[str, str] | None:
    """Current wire context for outbound propagation (None = no tracer)."""
    tracer = _tracer
    if tracer is None:
        return None
    return tracer.context()
