"""Lightweight tracing: spans, a tracer, and RPC context propagation.

One client request produces a *span tree* covering every layer it crosses:

    rpc.call:lrc_add_mapping          (client side)
      rpc.handle:lrc_add_mapping      (server dispatcher)
        acl.check                     (authorization)
        sql.execute                   (each statement the LRC issues)
        wal.flush                     (the commit durability barrier)

Propagation works two ways, matching the two transports:

* **In-process** (:class:`~repro.net.transport.LocalTransport`): the
  server handler runs in the caller's thread, so the tracer's thread-local
  span stack parents server-side spans under the client span directly.
* **TCP**: the client attaches ``(trace_id, span_id)`` to the
  :class:`~repro.net.messages.Request` (a backwards-compatible optional
  wire field) and the server-side span adopts it as an explicit parent.

No tracer is installed by default: :func:`span` then returns a shared
no-op context manager, so instrumentation sites cost one function call.
Install with :func:`install_tracer` (tests, debugging, the ``stats``
surfaces) and remove with ``install_tracer(None)``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterator

_ids = itertools.count(1)


def _next_id() -> str:
    return format(next(_ids), "x")


@dataclass
class Span:
    """One timed operation; ``parent_id`` links spans into a tree."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start: float = 0.0
    duration: float = 0.0
    tags: dict[str, Any] = field(default_factory=dict)
    error: str | None = None

    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def to_dict(self) -> dict[str, Any]:
        """Wire-safe form (the ``admin_traces`` RPC payload)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "tags": {k: str(v) for k, v in self.tags.items()},
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(
            name=data["name"],
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start=data.get("start", 0.0),
            duration=data.get("duration", 0.0),
            tags=dict(data.get("tags", {})),
            error=data.get("error"),
        )


#: Spans at or above this duration are always retained by a SpanSink.
DEFAULT_LATENCY_THRESHOLD = 0.050


class SpanSink:
    """Bounded retention with tail-based sampling.

    Head-based samplers decide at span *start* and therefore drop exactly
    the spans one wants to keep (the slow and the broken are not known to
    be slow or broken yet).  This sink decides at span *end*:

    * spans with an error, or with ``duration >= latency_threshold``, go
      to the **interesting** buffer (capacity ``capacity``);
    * every span also lands in a smaller **recent** ring (context for the
      interesting ones).

    Both rings evict their own oldest entries, so a flood of fast-and-fine
    spans can never push out a retained error or slow span — the property
    the overflow test asserts.
    """

    def __init__(
        self,
        capacity: int = 512,
        latency_threshold: float = DEFAULT_LATENCY_THRESHOLD,
        recent_capacity: int | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.latency_threshold = latency_threshold
        self.recent_capacity = (
            recent_capacity if recent_capacity is not None
            else max(16, capacity // 4)
        )
        self._lock = threading.Lock()
        self._interesting: "OrderedDict[str, Span]" = OrderedDict()
        self._recent: "OrderedDict[str, Span]" = OrderedDict()
        # Retention reason recorded at offer time, keyed by span_id.
        # Recomputing from span fields at read time loses history: a child
        # span retained as "slow" whose root trace was later evicted must
        # report "slow,orphan" so assemblers know the fragment is partial.
        self._reason: dict[str, str] = {}
        self.offered = 0
        self.retained = 0
        self.orphans = 0

    def interesting_reason(self, span: Span) -> str | None:
        """Why this span is tail-retained, or ``None`` if it is not."""
        if span.error is not None:
            return "error"
        if span.duration >= self.latency_threshold:
            return "slow"
        return None

    def offer(self, span: Span) -> None:
        """Consider one finished span for retention."""
        reason = self.interesting_reason(span)
        with self._lock:
            self.offered += 1
            self._recent[span.span_id] = span
            while len(self._recent) > self.recent_capacity:
                old_id, _ = self._recent.popitem(last=False)
                if old_id not in self._interesting:
                    self._reason.pop(old_id, None)
            if reason is not None:
                self.retained += 1
                self._reason[span.span_id] = reason
                self._interesting[span.span_id] = span
                while len(self._interesting) > self.capacity:
                    old_id, _ = self._interesting.popitem(last=False)
                    if old_id not in self._recent:
                        self._reason.pop(old_id, None)

    def retention_reason(self, span_id: str) -> str | None:
        """Recorded reason a span is retained ("error"/"slow", with an
        ``,orphan`` suffix once its trace was evicted from the tracer)."""
        with self._lock:
            return self._reason.get(span_id)

    def mark_orphaned(self, trace_id: str) -> None:
        """Flag retained spans of an evicted trace as orphan fragments.

        Called by the owning :class:`Tracer` when ``trace_id`` rolls out
        of its per-trace store.  The tail-retained children survive here
        with their original reason plus ``,orphan``, and stay fetchable
        by trace id via :meth:`trace` so cross-node assembly can still
        stitch partial trees around them.
        """
        with self._lock:
            for span_id, span in self._interesting.items():
                if span.trace_id != trace_id:
                    continue
                reason = self._reason.get(span_id, "slow")
                if "orphan" not in reason:
                    self._reason[span_id] = reason + ",orphan"
                    self.orphans += 1

    def trace(self, trace_id: str) -> list[Span]:
        """Every retained span of one trace (interesting plus recent).

        Orphan fragments — children whose root trace was evicted from the
        tracer — are still returned here, which is what lets a
        :class:`~repro.obs.assemble.TraceAssembler` fetch by trace id
        after partial eviction.
        """
        with self._lock:
            out: dict[str, Span] = {}
            for span in self._interesting.values():
                if span.trace_id == trace_id:
                    out[span.span_id] = span
            for span in self._recent.values():
                if span.trace_id == trace_id and span.span_id not in out:
                    out[span.span_id] = span
            return sorted(out.values(), key=lambda s: s.start)

    def interesting(self) -> list[Span]:
        """Tail-retained spans (errors and slow), oldest first."""
        with self._lock:
            return list(self._interesting.values())

    def recent(self) -> list[Span]:
        with self._lock:
            return list(self._recent.values())

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "offered": self.offered,
                "retained": self.retained,
                "interesting": len(self._interesting),
                "recent": len(self._recent),
                "capacity": self.capacity,
                "latency_threshold": self.latency_threshold,
                "orphans": self.orphans,
            }

    def to_dict(self, limit: int | None = None) -> dict[str, Any]:
        """RPC payload: stats plus the interesting spans (newest last).

        Each span dict carries a ``reason`` key (additive, so older
        clients ignore it) with the recorded retention reason — including
        the ``,orphan`` suffix for fragments whose trace was evicted.
        """
        spans = self.interesting()
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        out = []
        for span in spans:
            d = span.to_dict()
            d["reason"] = self.retention_reason(span.span_id)
            out.append(d)
        return {
            "stats": self.stats(),
            "spans": out,
        }

    def clear(self) -> None:
        with self._lock:
            self._interesting.clear()
            self._recent.clear()
            self._reason.clear()


class _NullSpan:
    """Shared do-nothing span for the tracer-absent fast path."""

    __slots__ = ()
    trace_id = ""
    span_id = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set_tag(self, key: str, value: Any) -> None:
        pass

    def set_error(self, error: str) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager that opens a span on entry and records it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    @property
    def trace_id(self) -> str:
        return self._span.trace_id

    @property
    def span_id(self) -> str:
        return self._span.span_id

    def set_tag(self, key: str, value: Any) -> None:
        self._span.tags[key] = value

    def set_error(self, error: str) -> None:
        """Mark the span failed without an exception escaping the ``with``
        (dispatchers that catch and convert errors into replies)."""
        self._span.error = error

    def __enter__(self) -> "_SpanHandle":
        self._tracer._push(self._span)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.error = exc_type.__name__
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects finished spans, retaining the most recent traces.

    Thread-safe: each thread keeps its own current-span stack; finished
    spans land in a bounded per-trace store (oldest traces evicted).
    """

    def __init__(
        self, max_traces: int = 256, sink: SpanSink | None = None
    ) -> None:
        self.max_traces = max_traces
        self.sink = sink
        self._local = threading.local()
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, list[Span]]" = OrderedDict()
        # Cross-thread view of each thread's innermost open span, for
        # thread dumps (the thread-local stack is invisible from the
        # admin RPC's thread).  Plain dict ops under the GIL; entries are
        # removed when a thread's stack empties.
        self._active_by_thread: dict[int, Span] = {}

    # -- span lifecycle --------------------------------------------------

    def span(
        self,
        name: str,
        parent: tuple[str, str] | None = None,
        **tags: Any,
    ) -> _SpanHandle:
        """Open a child span of ``parent`` (explicit ``(trace_id, span_id)``
        wire context) or of the thread's current span, or a new root."""
        if parent is not None and parent[0]:
            trace_id, parent_id = parent[0], parent[1]
        else:
            current = self.current()
            if current is not None:
                trace_id, parent_id = current.trace_id, current.span_id
            else:
                trace_id, parent_id = _next_id(), None
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=_next_id(),
            parent_id=parent_id,
            start=time.perf_counter(),
            tags=dict(tags) if tags else {},
        )
        return _SpanHandle(self, span)

    def current(self) -> Span | None:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def context(self) -> tuple[str, str] | None:
        """Wire context ``(trace_id, span_id)`` of the current span."""
        current = self.current()
        if current is None:
            return None
        return (current.trace_id, current.span_id)

    def context_for_thread(self, ident: int) -> tuple[str, str] | None:
        """Wire context of another thread's innermost open span, if any."""
        span = self._active_by_thread.get(ident)
        if span is None:
            return None
        return (span.trace_id, span.span_id)

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(span)
        self._active_by_thread[threading.get_ident()] = span

    def _pop(self, span: Span) -> None:
        span.duration = time.perf_counter() - span.start
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        ident = threading.get_ident()
        if stack:
            self._active_by_thread[ident] = stack[-1]
        else:
            self._active_by_thread.pop(ident, None)
        if self.sink is not None:
            self.sink.offer(span)
        evicted: list[str] = []
        with self._lock:
            spans = self._traces.get(span.trace_id)
            if spans is None:
                self._traces[span.trace_id] = [span]
                while len(self._traces) > self.max_traces:
                    old_tid, _ = self._traces.popitem(last=False)
                    evicted.append(old_tid)
            else:
                spans.append(span)
                self._traces.move_to_end(span.trace_id)
        # Outside the tracer lock: the sink takes its own lock and never
        # calls back into the tracer, but keeping the ordering one-way is
        # cheap insurance.  Tail-retained children of the evicted trace
        # stay fetchable by trace id through the sink (reason "…,orphan").
        if self.sink is not None:
            for old_tid in evicted:
                self.sink.mark_orphaned(old_tid)

    # -- inspection ------------------------------------------------------

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def spans(self, trace_id: str) -> list[Span]:
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def span_tree(self, trace_id: str) -> list[dict[str, Any]]:
        """Nested view of one trace: each node is ``{span, children}``.

        Roots are spans whose parent was never recorded locally (e.g. the
        client span of a request that arrived over TCP).
        """
        spans = self.spans(trace_id)
        nodes = {
            s.span_id: {"span": s, "children": []} for s in spans
        }
        roots: list[dict[str, Any]] = []
        for s in spans:
            node = nodes[s.span_id]
            parent = nodes.get(s.parent_id) if s.parent_id else None
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        return roots

    def resolve_trace(self, ref: str) -> str | None:
        """Map a trace id *or* a span id onto its trace id.

        Lets operators paste either column of ``rls slowlog`` / ``rls
        trace`` output into ``rls trace <id>``.  Scans the bounded trace
        store and, for orphaned fragments, the sink's retained spans.
        """
        with self._lock:
            if ref in self._traces:
                return ref
            for trace_id, spans in self._traces.items():
                for s in spans:
                    if s.span_id == ref:
                        return trace_id
        if self.sink is not None:
            for s in self.sink.interesting():
                if s.span_id == ref or s.trace_id == ref:
                    return s.trace_id
        return None

    def fragments(self, trace_id: str) -> list[Span]:
        """All locally-known spans of a trace: the per-trace store plus
        any sink-retained orphans, deduplicated by span id."""
        out: dict[str, Span] = {s.span_id: s for s in self.spans(trace_id)}
        if self.sink is not None:
            for s in self.sink.trace(trace_id):
                out.setdefault(s.span_id, s)
        return sorted(out.values(), key=lambda s: s.start)

    def find_spans(self, name: str) -> list[Span]:
        """Every finished span with ``name``, across retained traces."""
        with self._lock:
            return [
                s
                for spans in self._traces.values()
                for s in spans
                if s.name == name
            ]

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()


def walk_tree(tree: list[dict[str, Any]]) -> Iterator[tuple[int, Span]]:
    """Depth-first (depth, span) pairs over a :meth:`Tracer.span_tree`."""
    stack = [(0, node) for node in reversed(tree)]
    while stack:
        depth, node = stack.pop()
        yield depth, node["span"]
        for child in reversed(node["children"]):
            stack.append((depth + 1, child))


def format_tree(tree: list[dict[str, Any]]) -> str:
    """Human-readable indentation view of one trace."""
    lines = []
    for depth, s in walk_tree(tree):
        tags = (
            " " + " ".join(f"{k}={v}" for k, v in s.tags.items())
            if s.tags
            else ""
        )
        lines.append(f"{'  ' * depth}{s.name} {s.duration * 1e3:.3f}ms{tags}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Module-level installation point
# ---------------------------------------------------------------------------

_tracer: Tracer | None = None


def install_tracer(tracer: Tracer | None) -> None:
    """Install (or with ``None`` remove) the process-wide tracer."""
    global _tracer
    _tracer = tracer


def current_tracer() -> Tracer | None:
    return _tracer


def current_sink() -> SpanSink | None:
    """The installed tracer's span sink, if both exist."""
    tracer = _tracer
    return tracer.sink if tracer is not None else None


def active() -> bool:
    return _tracer is not None


def span(name: str, parent: tuple[str, str] | None = None, **tags: Any):
    """Open a span on the installed tracer, or a shared no-op if none."""
    tracer = _tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, parent=parent, **tags)


def context() -> tuple[str, str] | None:
    """Current wire context for outbound propagation (None = no tracer)."""
    tracer = _tracer
    if tracer is None:
        return None
    return tracer.context()
