"""Per-principal resource accounting and heavy-hitter sketches.

Multi-user catalogues need to answer *who* is consuming capacity, not
just *what* is slow (the gap every grid monitoring survey flags, and the
prerequisite for per-class admission control).  This module aggregates
the per-request cost vectors produced by the RPC layer:

* :class:`UsageAccountant` — exact per ``(principal, op_class)`` totals
  for a bounded set of principals (wall time, queue wait, rows examined,
  bytes in/out, WAL bytes, request/error counts), exported as
  ``usage.*`` metrics through the server registry so collectors and
  ``rls top`` see them like any other instrument.
* :class:`SpaceSavingSketch` — the Metwally et al. space-saving top-K
  structure, used twice: over principals (so heavy hitters survive even
  past the exact-table cap) and over LFN *prefixes* (namespace heat:
  which part of the catalogue is hot).  Memory is O(capacity); every
  reported count overestimates the true count by at most the entry's
  recorded ``error`` (bounded by N/capacity).

Both the accountant and the sketch produce plain-dict, mergeable
snapshots, mirroring :class:`repro.obs.metrics.MetricsSnapshot`, so
per-shard usage tables combine into a deployment view.

**Cardinality.**  Principals are client-influenced, so every labelled
surface is capped: at most ``max_principals`` distinct labels get exact
rows and their own metric label sets; later arrivals aggregate under
``OVERFLOW_PRINCIPAL`` (``<other>``), mirroring the bounded
``<unknown>`` rpc.errors label.  The sketches still track overflowed
principals individually (that is their job), in O(top_k) memory.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

from repro.obs.metrics import NULL_REGISTRY

#: Stable principal for unauthenticated or unmapped connections.
ANONYMOUS_PRINCIPAL = "anonymous"
#: Aggregate label once the exact-table principal cap is reached.
OVERFLOW_PRINCIPAL = "<other>"
#: Requests that classify to no operation class (admin/internal RPCs).
OTHER_CLASS = "other"
#: Transport-level byte costs (not attributable to one op class when
#: frames batch several requests).
NET_CLASS = "net"

#: Per-cell cost vector layout; order is the wire/meaning contract.
COST_FIELDS = (
    "requests",
    "errors",
    "wall_time",
    "queue_wait",
    "rows_examined",
    "bytes_in",
    "bytes_out",
    "wal_bytes",
)
_N_FIELDS = len(COST_FIELDS)
_I_REQUESTS = 0
_I_ERRORS = 1
_I_WALL = 2
_I_QUEUE = 3
_I_ROWS = 4
_I_BYTES_IN = 5
_I_BYTES_OUT = 6
_I_WAL = 7


def lfn_prefix(lfn: str) -> str:
    """Heat-map key for one logical file name.

    Path-style names keep their first two ``/``-separated segments
    (``/cms/run7/f001`` → ``/cms/run7``); flat names drop trailing
    digits (``lfn-000123`` → ``lfn-``), so serially-numbered families
    collapse into one bucket.
    """
    if "/" in lfn:
        parts = lfn.split("/")
        # A leading slash makes parts[0] == ""; keep two real segments.
        head = parts[:3] if parts[0] == "" else parts[:2]
        return "/".join(head) or "/"
    return lfn.rstrip("0123456789") or lfn


class SpaceSavingSketch:
    """Space-saving heavy-hitter sketch (Metwally, Agrawal, El Abbadi).

    Tracks at most ``capacity`` keys.  A new key arriving at capacity
    evicts the current minimum and inherits its count (recording that
    count as the new entry's ``error`` — the maximum overestimation).
    Any key whose true count exceeds N/capacity is guaranteed present.
    """

    __slots__ = ("capacity", "_counts", "_errors", "offered")

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("sketch capacity must be >= 1")
        self.capacity = capacity
        self._counts: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        #: Total weight offered (N in the error bound N/capacity).
        self.offered = 0

    def __len__(self) -> int:
        return len(self._counts)

    def offer(self, key: str, weight: int = 1) -> None:
        self.offered += weight
        counts = self._counts
        if key in counts:
            counts[key] += weight
            return
        if len(counts) < self.capacity:
            counts[key] = weight
            self._errors[key] = 0
            return
        victim = min(counts, key=counts.__getitem__)
        floor = counts.pop(victim)
        del self._errors[victim]
        counts[key] = floor + weight
        self._errors[key] = floor

    def top(self, n: int | None = None) -> list[tuple[str, int, int]]:
        """``(key, count, error)`` rows, largest count first.

        ``count`` overestimates the true count by at most ``error``.
        """
        rows = sorted(
            self._counts.items(), key=lambda kv: kv[1], reverse=True
        )
        if n is not None:
            rows = rows[:n]
        return [(key, count, self._errors[key]) for key, count in rows]

    def count(self, key: str) -> int:
        return self._counts.get(key, 0)

    def merge(self, other: "SpaceSavingSketch") -> "SpaceSavingSketch":
        """Combine two sketches (e.g. the same surface from two shards).

        Shared keys sum counts and errors; the union is then trimmed
        back to this sketch's capacity, keeping the largest counts.
        Surviving counts remain upper bounds on the true totals.
        """
        merged = SpaceSavingSketch(self.capacity)
        merged.offered = self.offered + other.offered
        union: dict[str, tuple[int, int]] = {}
        for sketch in (self, other):
            for key, count in sketch._counts.items():
                prev_count, prev_err = union.get(key, (0, 0))
                union[key] = (
                    prev_count + count,
                    prev_err + sketch._errors[key],
                )
        kept = sorted(
            union.items(), key=lambda kv: kv[1][0], reverse=True
        )[: self.capacity]
        for key, (count, error) in kept:
            merged._counts[key] = count
            merged._errors[key] = error
        return merged

    def to_dict(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "offered": self.offered,
            "entries": [
                {"key": key, "count": count, "error": error}
                for key, count, error in self.top()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpaceSavingSketch":
        sketch = cls(data["capacity"])
        sketch.offered = data.get("offered", 0)
        for row in data["entries"]:
            sketch._counts[row["key"]] = row["count"]
            sketch._errors[row["key"]] = row.get("error", 0)
        return sketch


class UsageSnapshot:
    """Plain-data view of an accountant: mergeable, wire-safe."""

    __slots__ = ("cells", "principals", "prefixes", "overflowed")

    def __init__(
        self,
        cells: dict[tuple[str, str], list[float]] | None = None,
        principals: SpaceSavingSketch | None = None,
        prefixes: SpaceSavingSketch | None = None,
        overflowed: int = 0,
    ) -> None:
        self.cells = cells or {}
        self.principals = principals or SpaceSavingSketch()
        self.prefixes = prefixes or SpaceSavingSketch()
        #: Requests folded under the overflow label since start.
        self.overflowed = overflowed

    def merge(self, other: "UsageSnapshot") -> "UsageSnapshot":
        cells: dict[tuple[str, str], list[float]] = {
            key: list(vec) for key, vec in self.cells.items()
        }
        for key, vec in other.cells.items():
            mine = cells.get(key)
            if mine is None:
                cells[key] = list(vec)
            else:
                for i, v in enumerate(vec):
                    mine[i] += v
        return UsageSnapshot(
            cells=cells,
            principals=self.principals.merge(other.principals),
            prefixes=self.prefixes.merge(other.prefixes),
            overflowed=self.overflowed + other.overflowed,
        )

    def principal_totals(self) -> dict[str, dict[str, float]]:
        """Cost vectors summed across op classes, keyed by principal."""
        totals: dict[str, dict[str, float]] = {}
        for (principal, _op_class), vec in self.cells.items():
            row = totals.setdefault(
                principal, dict.fromkeys(COST_FIELDS, 0.0)
            )
            for name, value in zip(COST_FIELDS, vec):
                row[name] += value
        return totals

    def to_dict(self) -> dict[str, Any]:
        principals: dict[str, dict[str, dict[str, float]]] = {}
        for (principal, op_class), vec in sorted(self.cells.items()):
            principals.setdefault(principal, {})[op_class] = dict(
                zip(COST_FIELDS, vec)
            )
        return {
            "fields": list(COST_FIELDS),
            "principals": principals,
            "top_principals": [
                {"principal": key, "count": count, "error": error}
                for key, count, error in self.principals.top()
            ],
            "top_prefixes": [
                {"prefix": key, "count": count, "error": error}
                for key, count, error in self.prefixes.top()
            ],
            "sketch": {
                "capacity": self.principals.capacity,
                "offered": self.principals.offered,
            },
            "overflowed": self.overflowed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "UsageSnapshot":
        cells: dict[tuple[str, str], list[float]] = {}
        for principal, classes in data.get("principals", {}).items():
            for op_class, row in classes.items():
                cells[(principal, op_class)] = [
                    float(row.get(name, 0.0)) for name in COST_FIELDS
                ]
        capacity = data.get("sketch", {}).get("capacity", 32)
        principals = SpaceSavingSketch(capacity)
        principals.offered = data.get("sketch", {}).get("offered", 0)
        for row in data.get("top_principals", ()):
            principals._counts[row["principal"]] = row["count"]
            principals._errors[row["principal"]] = row.get("error", 0)
        prefixes = SpaceSavingSketch(capacity)
        for row in data.get("top_prefixes", ()):
            prefixes._counts[row["prefix"]] = row["count"]
            prefixes._errors[row["prefix"]] = row.get("error", 0)
        return cls(
            cells=cells,
            principals=principals,
            prefixes=prefixes,
            overflowed=data.get("overflowed", 0),
        )


class UsageAccountant:
    """Attributes request cost vectors to ``(principal, op_class)``.

    One instance per server.  ``account`` runs once per RPC on the
    handler thread; its cost is a handful of dict operations, so the
    accounting path stays inside the benchmarked 5% overhead budget
    (``benchmarks/check_overhead.py::time_usage_account``).
    """

    def __init__(
        self,
        metrics: Any = None,
        top_k: int = 32,
        max_principals: int = 64,
    ) -> None:
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.top_k = top_k
        self.max_principals = max_principals
        self._lock = threading.Lock()
        self._cells: dict[tuple[str, str], list[float]] = {}
        self._instruments: dict[tuple[str, str], tuple] = {}
        self._principal_sketch = SpaceSavingSketch(top_k)
        self._prefix_sketch = SpaceSavingSketch(top_k)
        self._labels: dict[str, str] = {}
        self._overflowed = 0

    # -- label management ------------------------------------------------

    def label_for(self, principal: str) -> str:
        """Bounded metric label for ``principal`` (``<other>`` past cap)."""
        label = self._labels.get(principal)
        if label is not None:
            return label
        with self._lock:
            label = self._labels.get(principal)
            if label is None:
                if len(self._labels) < self.max_principals:
                    label = principal
                else:
                    label = OVERFLOW_PRINCIPAL
                self._labels[principal] = label
        return label

    def _cell(self, label: str, op_class: str) -> tuple[list[float], tuple]:
        key = (label, op_class)
        vec = self._cells.get(key)
        if vec is None:
            with self._lock:
                vec = self._cells.get(key)
                if vec is None:
                    vec = [0.0] * _N_FIELDS
                    self._cells[key] = vec
                    self._instruments[key] = (
                        self.metrics.counter(
                            "usage.requests", principal=label, **{"class": op_class}
                        ),
                        self.metrics.counter(
                            "usage.errors", principal=label, **{"class": op_class}
                        ),
                        self.metrics.counter(
                            "usage.wall_time", principal=label, **{"class": op_class}
                        ),
                        self.metrics.counter(
                            "usage.rows_examined",
                            principal=label,
                            **{"class": op_class},
                        ),
                        self.metrics.counter(
                            "usage.wal_bytes", principal=label, **{"class": op_class}
                        ),
                        self.metrics.counter(
                            "usage.bytes_in", principal=label, **{"class": op_class}
                        ),
                        self.metrics.counter(
                            "usage.bytes_out", principal=label, **{"class": op_class}
                        ),
                    )
        return vec, self._instruments[key]

    # -- the hot path ----------------------------------------------------

    def account(
        self,
        principal: str,
        op_class: str | None,
        wall_time: float = 0.0,
        queue_wait: float = 0.0,
        rows_examined: int = 0,
        wal_bytes: int = 0,
        error: bool = False,
        lfn: str | None = None,
    ) -> None:
        """Charge one completed request's cost vector."""
        label = self.label_for(principal)
        cls = op_class or OTHER_CLASS
        vec, instruments = self._cell(label, cls)
        if label == OVERFLOW_PRINCIPAL and principal != OVERFLOW_PRINCIPAL:
            self._overflowed += 1
        # Benign races (+= on floats) lose at most one sample's worth;
        # per-connection threads make same-cell contention rare.
        vec[_I_REQUESTS] += 1
        vec[_I_WALL] += wall_time
        instruments[0].inc()
        instruments[2].inc(wall_time)
        if error:
            vec[_I_ERRORS] += 1
            instruments[1].inc()
        if queue_wait:
            vec[_I_QUEUE] += queue_wait
        if rows_examined:
            vec[_I_ROWS] += rows_examined
            instruments[3].inc(rows_examined)
        if wal_bytes:
            vec[_I_WAL] += wal_bytes
            instruments[4].inc(wal_bytes)
        with self._lock:
            self._principal_sketch.offer(principal)
            if lfn is not None:
                self._prefix_sketch.offer(lfn_prefix(lfn))

    def record_bytes(
        self, principal: str, bytes_in: int = 0, bytes_out: int = 0
    ) -> None:
        """Charge transport bytes (class ``net`` — frames may batch ops)."""
        label = self.label_for(principal)
        vec, instruments = self._cell(label, NET_CLASS)
        if bytes_in:
            vec[_I_BYTES_IN] += bytes_in
            instruments[5].inc(bytes_in)
        if bytes_out:
            vec[_I_BYTES_OUT] += bytes_out
            instruments[6].inc(bytes_out)

    # -- read side -------------------------------------------------------

    def top_principals(self, n: int = 10) -> list[tuple[str, int, int]]:
        with self._lock:
            return self._principal_sketch.top(n)

    def top_prefixes(self, n: int = 10) -> list[tuple[str, int, int]]:
        with self._lock:
            return self._prefix_sketch.top(n)

    def snapshot(self) -> UsageSnapshot:
        with self._lock:
            cells = {key: list(vec) for key, vec in self._cells.items()}
            principals = self._principal_sketch.merge(
                SpaceSavingSketch(self._principal_sketch.capacity)
            )
            prefixes = self._prefix_sketch.merge(
                SpaceSavingSketch(self._prefix_sketch.capacity)
            )
            overflowed = self._overflowed
        return UsageSnapshot(
            cells=cells,
            principals=principals,
            prefixes=prefixes,
            overflowed=overflowed,
        )

    def to_dict(self) -> dict[str, Any]:
        data = self.snapshot().to_dict()
        data["enabled"] = True
        data["max_principals"] = self.max_principals
        data["principals_tracked"] = len(self._labels)
        return data


def merge_usage_dicts(dicts: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Merge several ``admin_usage`` payloads into one deployment view."""
    merged: UsageSnapshot | None = None
    for data in dicts:
        snap = UsageSnapshot.from_dict(data)
        merged = snap if merged is None else merged.merge(snap)
    result = (merged or UsageSnapshot()).to_dict()
    result["enabled"] = True
    return result
