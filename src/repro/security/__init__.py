"""GSI-like security substrate.

The Globus RLS authenticates clients with Grid Security Infrastructure
(X.509 certificates), maps Distinguished Names to local usernames through a
*gridmap* file, and authorizes operations against regex access-control
lists granting privileges such as ``lrc_read`` and ``lrc_write`` (§3.1).

This package reproduces that control flow with an HMAC-signed toy
certificate in place of X.509 (see DESIGN.md, substitutions).  The server
can also run completely open, like the paper's unauthenticated mode.
"""

from repro.security.credentials import (
    Certificate,
    CertificateAuthority,
    InvalidCertificateError,
)
from repro.security.gridmap import Gridmap
from repro.security.acl import AccessControlList, AclEntry, Privilege
from repro.security.authorizer import Authorizer, SecurityPolicy

__all__ = [
    "AccessControlList",
    "AclEntry",
    "Authorizer",
    "Certificate",
    "CertificateAuthority",
    "Gridmap",
    "InvalidCertificateError",
    "Privilege",
    "SecurityPolicy",
]
