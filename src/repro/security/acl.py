"""Regex access-control lists.

"Access control list entries are regular expressions that grant privileges
such as lrc_read and lrc_write access to users based on either the
Distinguished Name (DN) in the user's X.509 certificate or based on the
local username specified by the gridmap file." (§3.1)
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterable


class Privilege(enum.Enum):
    """Operations a principal may be granted."""

    LRC_READ = "lrc_read"
    LRC_WRITE = "lrc_write"
    RLI_READ = "rli_read"
    RLI_WRITE = "rli_write"  # soft-state updates from LRCs
    ADMIN = "admin"

    @classmethod
    def from_string(cls, text: str) -> "Privilege":
        for member in cls:
            if member.value == text:
                return member
        raise ValueError(f"unknown privilege {text!r}")


@dataclass(frozen=True)
class AclEntry:
    """One ACL rule: a subject regex plus the privileges it grants.

    ``match_dn`` selects whether the pattern is tested against the
    certificate DN (True) or the gridmap-mapped local username (False).
    The pattern must match the whole subject (fullmatch), as Globus does.
    """

    pattern: str
    privileges: frozenset[Privilege]
    match_dn: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "_compiled", re.compile(self.pattern))

    def matches(self, dn: str | None, local_user: str | None) -> bool:
        subject = dn if self.match_dn else local_user
        if subject is None:
            return False
        return self._compiled.fullmatch(subject) is not None  # type: ignore[attr-defined]


class AccessControlList:
    """Ordered collection of :class:`AclEntry` rules (grants are unioned)."""

    def __init__(self, entries: Iterable[AclEntry] = ()) -> None:
        self._entries: list[AclEntry] = list(entries)

    def add(
        self,
        pattern: str,
        privileges: Iterable[Privilege | str],
        match_dn: bool = True,
    ) -> None:
        privs = frozenset(
            p if isinstance(p, Privilege) else Privilege.from_string(p)
            for p in privileges
        )
        self._entries.append(AclEntry(pattern, privs, match_dn))

    def privileges_for(
        self, dn: str | None, local_user: str | None
    ) -> frozenset[Privilege]:
        """Union of privileges granted by every matching entry."""
        granted: set[Privilege] = set()
        for entry in self._entries:
            if entry.matches(dn, local_user):
                granted |= entry.privileges
        return frozenset(granted)

    def allows(
        self, privilege: Privilege, dn: str | None, local_user: str | None
    ) -> bool:
        return privilege in self.privileges_for(dn, local_user)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)
