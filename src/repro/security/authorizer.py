"""Authentication + authorization policy glue for the RLS server."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.errors import AuthenticationError, AuthorizationError
from repro.net.messages import Hello
from repro.security.acl import AccessControlList, Privilege
from repro.security.credentials import (
    Certificate,
    CertificateAuthority,
    InvalidCertificateError,
)
from repro.security.gridmap import Gridmap

#: Stable accounting label for unauthenticated or unmapped connections.
#: A raw DN (or a client-declared string) must never become a metric
#: label without a gridmap mapping — labels are bounded, DNs are not.
ANONYMOUS_PRINCIPAL = "anonymous"

#: Longest declared-principal label accepted before falling back to
#: ``anonymous`` (matches the bounded-cardinality rule for rpc labels).
_MAX_PRINCIPAL_LEN = 64

#: Characters with structural meaning in flattened metric keys.
_UNSAFE_CHARS = set(',={}"\n')


def sanitize_principal(declared: str | None) -> str:
    """Bounded, metric-safe form of a client-declared principal.

    Empty, oversized, or structurally unsafe declarations (characters
    that would corrupt a ``name{k=v}`` metric key) collapse to
    ``anonymous`` rather than being escaped — a declared identity is a
    courtesy label, not a credential, so there is nothing to preserve.
    """
    if (
        not declared
        or len(declared) > _MAX_PRINCIPAL_LEN
        or any(c in _UNSAFE_CHARS for c in declared)
    ):
        return ANONYMOUS_PRINCIPAL
    return declared


@dataclass
class SecurityPolicy:
    """Server security configuration.

    ``enabled=False`` reproduces the paper's open mode: "The RLS server can
    also be run without any authentication or authorization, allowing all
    users the ability to read and write RLS mappings."
    """

    enabled: bool = False
    ca: CertificateAuthority | None = None
    gridmap: Gridmap = field(default_factory=Gridmap)
    acl: AccessControlList = field(default_factory=AccessControlList)

    @classmethod
    def open(cls) -> "SecurityPolicy":
        return cls(enabled=False)


class Authorizer:
    """Performs the GSI-style handshake and per-operation privilege checks."""

    def __init__(self, policy: SecurityPolicy) -> None:
        self.policy = policy

    # -- authentication (once per connection) ---------------------------

    def authenticate(self, hello: Hello, peer: str) -> str | None:
        """Verify the handshake credential; returns the subject DN.

        With security disabled every connection is anonymous.  With it
        enabled, a missing or invalid certificate rejects the connection.
        """
        if not self.policy.enabled:
            return None
        if hello.credential is None:
            raise AuthenticationError("credential required")
        if self.policy.ca is None:
            raise AuthenticationError("server has no trusted CA configured")
        try:
            cert = Certificate.from_bytes(hello.credential)
            return self.policy.ca.verify(cert)
        except InvalidCertificateError as exc:
            raise AuthenticationError(str(exc)) from exc

    # -- authorization (per operation) -----------------------------------

    def check(self, privilege: Privilege, dn: str | None) -> None:
        """Raise :class:`AuthorizationError` unless ``dn`` holds ``privilege``."""
        if not self.policy.enabled:
            return
        local_user = (
            self.policy.gridmap.map_dn(dn) if dn is not None else None
        )
        if not self.policy.acl.allows(privilege, dn, local_user):
            raise AuthorizationError(
                f"{dn or '<anonymous>'} lacks privilege {privilege.value}"
            )

    def local_user(self, dn: str | None) -> str | None:
        if dn is None:
            return None
        return self.policy.gridmap.map_dn(dn)

    # -- accounting identity (per connection) -----------------------------

    def account_principal(
        self, dn: str | None, declared: str | None = None
    ) -> str:
        """Bounded usage-accounting principal for one connection.

        An authenticated DN maps through the gridmap to its local user;
        an unmapped DN becomes the stable ``anonymous`` label (never the
        raw DN — DN cardinality is unbounded).  Without a DN, a sanitized
        client-declared principal is accepted, else ``anonymous``.
        """
        if dn is not None:
            return self.policy.gridmap.map_dn(dn) or ANONYMOUS_PRINCIPAL
        return sanitize_principal(declared)
