"""Authentication + authorization policy glue for the RLS server."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.errors import AuthenticationError, AuthorizationError
from repro.net.messages import Hello
from repro.security.acl import AccessControlList, Privilege
from repro.security.credentials import (
    Certificate,
    CertificateAuthority,
    InvalidCertificateError,
)
from repro.security.gridmap import Gridmap


@dataclass
class SecurityPolicy:
    """Server security configuration.

    ``enabled=False`` reproduces the paper's open mode: "The RLS server can
    also be run without any authentication or authorization, allowing all
    users the ability to read and write RLS mappings."
    """

    enabled: bool = False
    ca: CertificateAuthority | None = None
    gridmap: Gridmap = field(default_factory=Gridmap)
    acl: AccessControlList = field(default_factory=AccessControlList)

    @classmethod
    def open(cls) -> "SecurityPolicy":
        return cls(enabled=False)


class Authorizer:
    """Performs the GSI-style handshake and per-operation privilege checks."""

    def __init__(self, policy: SecurityPolicy) -> None:
        self.policy = policy

    # -- authentication (once per connection) ---------------------------

    def authenticate(self, hello: Hello, peer: str) -> str | None:
        """Verify the handshake credential; returns the subject DN.

        With security disabled every connection is anonymous.  With it
        enabled, a missing or invalid certificate rejects the connection.
        """
        if not self.policy.enabled:
            return None
        if hello.credential is None:
            raise AuthenticationError("credential required")
        if self.policy.ca is None:
            raise AuthenticationError("server has no trusted CA configured")
        try:
            cert = Certificate.from_bytes(hello.credential)
            return self.policy.ca.verify(cert)
        except InvalidCertificateError as exc:
            raise AuthenticationError(str(exc)) from exc

    # -- authorization (per operation) -----------------------------------

    def check(self, privilege: Privilege, dn: str | None) -> None:
        """Raise :class:`AuthorizationError` unless ``dn`` holds ``privilege``."""
        if not self.policy.enabled:
            return
        local_user = (
            self.policy.gridmap.map_dn(dn) if dn is not None else None
        )
        if not self.policy.acl.allows(privilege, dn, local_user):
            raise AuthorizationError(
                f"{dn or '<anonymous>'} lacks privilege {privilege.value}"
            )

    def local_user(self, dn: str | None) -> str | None:
        if dn is None:
            return None
        return self.policy.gridmap.map_dn(dn)
