"""Toy X.509-like certificates signed by a certificate authority.

A :class:`Certificate` binds a subject Distinguished Name (DN) to an
issuer and a validity window, signed with HMAC-SHA256 under the CA's key.
This exercises the same authentication control flow as GSI — present a
credential, verify the signature chain, extract the DN — without OpenSSL.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import time
from dataclasses import dataclass

from repro.net.codec import decode, encode


class InvalidCertificateError(Exception):
    """Certificate failed verification (signature, expiry, or encoding)."""


@dataclass(frozen=True)
class Certificate:
    """A signed (subject DN, issuer, validity) tuple."""

    subject_dn: str
    issuer: str
    not_before: float
    not_after: float
    signature: bytes

    def to_bytes(self) -> bytes:
        return encode(
            [
                self.subject_dn,
                self.issuer,
                self.not_before,
                self.not_after,
                self.signature,
            ]
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Certificate":
        try:
            fields = decode(data)
            subject_dn, issuer, not_before, not_after, signature = fields
        except Exception as exc:
            raise InvalidCertificateError(f"malformed certificate: {exc}") from exc
        if not isinstance(subject_dn, str) or not isinstance(signature, bytes):
            raise InvalidCertificateError("malformed certificate fields")
        return cls(subject_dn, issuer, float(not_before), float(not_after), signature)

    def signing_payload(self) -> bytes:
        return encode([self.subject_dn, self.issuer, self.not_before, self.not_after])


class CertificateAuthority:
    """Issues and verifies certificates with an HMAC key."""

    def __init__(self, name: str = "RLS Test CA", key: bytes | None = None) -> None:
        self.name = name
        self._key = key if key is not None else os.urandom(32)

    def issue(
        self,
        subject_dn: str,
        lifetime: float = 12 * 3600.0,
        now: float | None = None,
    ) -> Certificate:
        """Issue a certificate for ``subject_dn`` valid for ``lifetime`` s."""
        issued_at = time.time() if now is None else now
        unsigned = Certificate(
            subject_dn=subject_dn,
            issuer=self.name,
            not_before=issued_at,
            not_after=issued_at + lifetime,
            signature=b"",
        )
        signature = hmac.new(
            self._key, unsigned.signing_payload(), hashlib.sha256
        ).digest()
        return Certificate(
            subject_dn, self.name, unsigned.not_before, unsigned.not_after, signature
        )

    def verify(self, cert: Certificate, now: float | None = None) -> str:
        """Verify ``cert``; returns the subject DN or raises."""
        current = time.time() if now is None else now
        if cert.issuer != self.name:
            raise InvalidCertificateError(
                f"unknown issuer {cert.issuer!r} (expected {self.name!r})"
            )
        expected = hmac.new(
            self._key, cert.signing_payload(), hashlib.sha256
        ).digest()
        if not hmac.compare_digest(expected, cert.signature):
            raise InvalidCertificateError("bad signature")
        if current < cert.not_before:
            raise InvalidCertificateError("certificate not yet valid")
        if current > cert.not_after:
            raise InvalidCertificateError("certificate expired")
        return cert.subject_dn
