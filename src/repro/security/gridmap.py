"""Gridmap file: mapping Distinguished Names to local usernames.

Format matches the Globus gridmap convention: one entry per line,
``"<DN>" localuser`` — the DN is double-quoted because DNs contain spaces.
Lines starting with ``#`` are comments.
"""

from __future__ import annotations

import re
from typing import Iterable

_LINE = re.compile(r'^\s*"(?P<dn>(?:[^"\\]|\\.)*)"\s+(?P<user>\S+)\s*$')


class Gridmap:
    """In-memory DN → local-username map with gridmap-file parsing."""

    def __init__(self, entries: dict[str, str] | None = None) -> None:
        self._entries: dict[str, str] = dict(entries or {})

    @classmethod
    def parse(cls, text: str) -> "Gridmap":
        """Parse gridmap-file text; malformed lines raise ``ValueError``."""
        entries: dict[str, str] = {}
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            match = _LINE.match(line)
            if match is None:
                raise ValueError(f"malformed gridmap line {lineno}: {raw!r}")
            dn = match.group("dn").replace('\\"', '"')
            entries[dn] = match.group("user")
        return cls(entries)

    @classmethod
    def load(cls, path: str) -> "Gridmap":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.parse(fh.read())

    def add(self, dn: str, local_user: str) -> None:
        self._entries[dn] = local_user

    def remove(self, dn: str) -> None:
        self._entries.pop(dn, None)

    def map_dn(self, dn: str) -> str | None:
        """Local username for ``dn``, or ``None`` if unmapped."""
        return self._entries.get(dn)

    def dns(self) -> Iterable[str]:
        return self._entries.keys()

    def __len__(self) -> int:
        return len(self._entries)

    def dump(self) -> str:
        """Serialize back to gridmap-file text."""
        lines = []
        for dn, user in sorted(self._entries.items()):
            escaped = dn.replace('"', '\\"')
            lines.append(f'"{escaped}" {user}')
        return "\n".join(lines) + ("\n" if lines else "")
