"""Discrete-event simulation substrate.

The paper's soft-state update experiments ran on a 100 Mb/s LAN and on a
Los Angeles → Chicago WAN path (63.8 ms mean RTT).  Neither testbed is
available here, so these experiments run on a deterministic discrete-event
simulator: a virtual clock (:mod:`repro.sim.kernel`), FIFO resources for
serialized RLI ingest (:mod:`repro.sim.resources`), a processor-sharing
bandwidth link with a TCP window throughput cap (:mod:`repro.sim.network`),
and the experiment models themselves (:mod:`repro.sim.models`).

Real compute costs that *are* measurable on this machine (Bloom filter
generation/compression times) are measured for real and fed into the
models — see :mod:`repro.sim.models`.
"""

from repro.sim.kernel import Process, Simulator, Timeout
from repro.sim.resources import Resource
from repro.sim.network import SharedLink, NetworkPath
from repro.sim.rls_sim import (
    RecoveryResult,
    StalenessResult,
    recovery_experiment,
    staleness_experiment,
)

__all__ = [
    "NetworkPath",
    "Process",
    "RecoveryResult",
    "Resource",
    "SharedLink",
    "Simulator",
    "StalenessResult",
    "Timeout",
    "recovery_experiment",
    "staleness_experiment",
]
