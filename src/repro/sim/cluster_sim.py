"""Sharded-cluster simulation in virtual time.

Models the cluster subsystem's two central claims on the deterministic
simulation kernel, free of wall-clock noise:

* **Scale-out** — each shard master (and each mirror) is one
  single-server queue (:class:`~repro.sim.resources.Resource` with a
  fixed service time, the §6 saturation model); clients hash queries onto
  shards and prefer mirrors, so aggregate throughput grows with the
  endpoint count until client concurrency is exhausted.
* **Mirror staleness** — masters push their replica stream every
  ``push_interval`` simulated seconds; a mirror's staleness age sawtooths
  under that interval while the feed is healthy and climbs linearly when
  the feed stalls.  The exported series uses the same
  ``mirror.staleness_age{shard=...}`` key the live
  :class:`~repro.cluster.mirror.MirrorIngest` gauges, so
  :func:`repro.obs.analyze.analyze_store` runs the staleness-burn
  detector on it unchanged.
* **SLO burn under faults** — a :class:`~repro.testing.faults.FailureSchedule`
  can fail queries against one shard (each failed query still consumes
  its service time — the server did the work, then errored).  A per-shard
  :class:`~repro.obs.slo.SLITracker` runs on the *virtual* clock and the
  resulting ``slo.burn_rate{class=query,shard=...,window=fast}`` series
  lands in ``result.store`` under the same key the live
  :class:`~repro.obs.slo.SLIRecorder` gauges, so
  :func:`repro.obs.analyze.analyze_store` runs the burn detector on it
  unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cluster.ring import HashRing
from repro.obs.slo import FAST_WINDOW, SLOPolicy, SLITracker
from repro.obs.timeseries import SeriesStore
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource
from repro.testing.faults import FailureSchedule


@dataclass
class ClusterResult:
    """Outcome of one :func:`cluster_experiment` run."""

    shards: int
    mirrors_per_shard: int
    duration: float
    queries_completed: int
    #: Queries served by a mirror vs the shard master.
    mirror_served: int
    master_served: int
    #: Mean time a query spent queued+in service.
    mean_latency: float
    #: Queries that consumed service time but failed (injected faults).
    queries_failed: int = 0
    #: Multi-window burn-rate alerts firing at end of run, per shard.
    slo_alerts: list[dict] = field(default_factory=list)
    #: Peak staleness age (seconds) observed per mirror feed.
    peak_staleness: dict[str, float] = field(default_factory=dict)
    #: Total queries issued per principal (multi-principal workloads only).
    usage_by_principal: dict[str, int] = field(default_factory=dict)
    store: SeriesStore = field(default_factory=SeriesStore)

    @property
    def rate(self) -> float:
        return self.queries_completed / self.duration if self.duration else 0.0


def cluster_experiment(
    num_shards: int,
    mirrors_per_shard: int = 0,
    num_clients: int = 32,
    service_time: float = 0.005,
    push_interval: float = 5.0,
    duration: float = 300.0,
    stall_feed_of: str | None = None,
    stall_at: float | None = None,
    faults: FailureSchedule | None = None,
    fault_shard: str | None = None,
    fault_after: float = 0.0,
    slo_policy: SLOPolicy | None = None,
    sli_sample_every: float = 15.0,
    principals: dict[str, float] | None = None,
    seed: int = 7,
) -> ClusterResult:
    """Drive closed-loop clients against a simulated sharded cluster.

    ``num_clients`` closed-loop clients each issue one query at a time:
    hash an LFN onto its owning shard, queue on the least-loaded mirror of
    that shard (the master when no mirror is up), and think 0 s between
    queries — so endpoint capacity is the only limiter, as in Figure 6's
    saturated region.

    ``stall_feed_of`` names a mirror whose master feed stops at
    ``stall_at`` (default: halfway); its ``mirror.staleness_age`` series
    then climbs linearly, which the staleness-burn detector must flag.

    ``faults`` fails queries on schedule once ``sim.now >= fault_after``
    (restricted to ``fault_shard`` when given; failed queries still
    occupy the endpoint for their full service time so a dying shard does
    not magically free capacity).  Per-shard SLI trackers sample every
    ``sli_sample_every`` virtual seconds and record fast-window burn
    rates into ``result.store``; the alerts firing at end of run land in
    ``result.slo_alerts``.

    ``principals`` maps principal names to traffic weights; clients are
    split across principals proportionally (largest remainder, so the
    split is deterministic) and each principal's queries go to its own
    LFN namespace ``/<principal>/data/...``.  Per-window request counts
    land in ``result.store`` under ``usage.requests{principal=...}`` —
    the same key shape the live :class:`~repro.obs.usage.UsageAccountant`
    exports — so :func:`repro.obs.analyze.detect_noisy_neighbor` can
    attribute any saturation/burn windows to the dominant consumer.
    """
    sim = Simulator()
    rng = random.Random(seed)
    shards = tuple(f"shard{i}" for i in range(num_shards))
    ring = HashRing(shards)
    masters = {s: Resource(sim, capacity=1) for s in shards}
    mirrors: dict[str, list[tuple[str, Resource]]] = {
        s: [
            (f"{s}-m{j}", Resource(sim, capacity=1))
            for j in range(mirrors_per_shard)
        ]
        for s in shards
    }
    result = ClusterResult(
        shards=num_shards,
        mirrors_per_shard=mirrors_per_shard,
        duration=duration,
        queries_completed=0,
        mirror_served=0,
        master_served=0,
        mean_latency=0.0,
    )
    latency_total = 0.0

    # --- mirror feeds: per-mirror last-delivery clock + sampled series ---
    last_push: dict[str, float] = {
        name: 0.0 for s in shards for name, _ in mirrors[s]
    }
    if stall_feed_of is not None and stall_feed_of not in last_push:
        raise ValueError(f"unknown mirror {stall_feed_of!r}")
    stall_time = (
        (duration / 2 if stall_at is None else stall_at)
        if stall_feed_of is not None
        else None
    )

    def feed_proc(shard: str, mirror_name: str):
        while True:
            yield sim.timeout(push_interval)
            if mirror_name == stall_feed_of and sim.now >= stall_time:
                continue  # the feed has stalled: deliveries stop arriving
            last_push[mirror_name] = sim.now

    def staleness_sampler(sample_every: float = 1.0):
        while True:
            yield sim.timeout(sample_every)
            for shard in shards:
                for mirror_name, _ in mirrors[shard]:
                    age = sim.now - last_push[mirror_name]
                    result.store.record(
                        f"mirror.staleness_age{{shard={shard},"
                        f"mirror={mirror_name}}}",
                        sim.now,
                        age,
                    )
                    peak = result.peak_staleness.get(mirror_name, 0.0)
                    if age > peak:
                        result.peak_staleness[mirror_name] = age

    for shard in shards:
        for mirror_name, _ in mirrors[shard]:
            sim.process(feed_proc(shard, mirror_name))
    if mirrors_per_shard:
        sim.process(staleness_sampler())

    # --- per-shard SLIs on the virtual clock ---
    if fault_shard is not None and fault_shard not in masters:
        raise ValueError(f"unknown shard {fault_shard!r}")
    trackers = {s: SLITracker(slo_policy or SLOPolicy()) for s in shards}
    window_counts = {s: [0, 0] for s in shards}  # [requests, errors]

    # --- weighted client->principal assignment (largest remainder) ---
    client_principal: list[str | None]
    if principals:
        names = list(principals)
        weights = [float(principals[name]) for name in names]
        total_weight = sum(weights)
        if total_weight <= 0:
            raise ValueError("principal weights must sum to > 0")
        quotas = [num_clients * w / total_weight for w in weights]
        shares = [int(q) for q in quotas]
        while sum(shares) < num_clients:
            i = max(range(len(names)), key=lambda j: quotas[j] - shares[j])
            shares[i] += 1
        client_principal = [
            name for name, n in zip(names, shares) for _ in range(n)
        ]
    else:
        client_principal = [None] * num_clients
    principal_window = {name: 0 for name in (principals or ())}

    def sli_sampler():
        while True:
            yield sim.timeout(sli_sample_every)
            for shard in shards:
                requests, errors = window_counts[shard]
                window_counts[shard] = [0, 0]
                trackers[shard].record(sim.now, requests, errors)
                burn = max(
                    trackers[shard].burn_rate(
                        FAST_WINDOW.short, sim.now, "availability"
                    ),
                    trackers[shard].burn_rate(
                        FAST_WINDOW.short, sim.now, "latency"
                    ),
                )
                result.store.record(
                    f"slo.burn_rate{{class=query,shard={shard},"
                    f"window=fast}}",
                    sim.now,
                    burn,
                )
                avail = trackers[shard].availability(
                    FAST_WINDOW.short, sim.now
                )
                result.store.record(
                    f"slo.availability{{class=query,shard={shard}}}",
                    sim.now,
                    1.0 if avail is None else avail,
                )
            for principal, issued in principal_window.items():
                result.store.record(
                    f"usage.requests{{principal={principal}}}",
                    sim.now,
                    issued,
                )
                result.usage_by_principal[principal] = (
                    result.usage_by_principal.get(principal, 0) + issued
                )
                principal_window[principal] = 0

    sim.process(sli_sampler())

    # --- closed-loop query clients ---
    def client_proc(client_id: int):
        nonlocal latency_total
        principal = client_principal[client_id]
        while True:
            if principal is None:
                lfn = f"lfn-{rng.randrange(1_000_000)}"
            else:
                lfn = f"/{principal}/data/f{rng.randrange(1_000_000)}"
            shard = ring.owner(lfn)
            candidates = mirrors[shard]
            if candidates:
                # Least-queued mirror: the combined client's per-client
                # shuffle approximates this spread in expectation.
                name, resource = min(
                    candidates, key=lambda nr: nr[1].queue_length
                )
                served_by_mirror = True
            else:
                resource = masters[shard]
                served_by_mirror = False
            fail = (
                faults is not None
                and sim.now >= fault_after
                and (fault_shard is None or shard == fault_shard)
                and faults.next_outcome()
            )
            start = sim.now
            # A failed query still holds the endpoint for its service
            # time — the server did the work, then errored.
            yield resource.use(service_time)
            latency_total += sim.now - start
            window_counts[shard][0] += 1
            if principal is not None:
                principal_window[principal] += 1
            if fail:
                window_counts[shard][1] += 1
                result.queries_failed += 1
                continue
            result.queries_completed += 1
            if served_by_mirror:
                result.mirror_served += 1
            else:
                result.master_served += 1

    for c in range(num_clients):
        sim.process(client_proc(c))
    sim.run(until=duration)
    if result.queries_completed or result.queries_failed:
        completed = result.queries_completed + result.queries_failed
        result.mean_latency = latency_total / completed
    for shard in shards:
        for alert in trackers[shard].alerts(sim.now):
            alert["shard"] = shard
            alert["class"] = "query"
            result.slo_alerts.append(alert)
    return result
