"""Discrete-event simulation kernel.

A small, dependency-free kernel in the SimPy style: *processes* are Python
generators that ``yield`` waitable events — :class:`Timeout`, resource
acquisitions, or other processes — and the :class:`Simulator` advances a
virtual clock through a binary heap of scheduled callbacks.

Determinism: events at equal times fire in schedule order (a monotonically
increasing sequence number breaks ties), so simulation results are exactly
reproducible — a property the benchmark harness relies on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* with an optional value; callbacks registered
    before triggering run when the simulator processes the event.
    """

    __slots__ = ("sim", "callbacks", "triggered", "value")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Any], None]] | None = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now (callbacks run via the event queue)."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        self.sim._schedule_at(self.sim.now, self._dispatch)
        return self

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self.value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        if self.callbacks is None:
            # Already dispatched: run immediately at the current time.
            self.sim._schedule_at(self.sim.now, lambda: callback(self.value))
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """Event that triggers ``delay`` seconds of virtual time in the future."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        super().__init__(sim)
        if delay < 0:
            raise ValueError("negative delay")
        self.triggered = True  # cannot be succeed()ed manually
        self.value = value
        sim._schedule_at(sim.now + delay, self._dispatch)


class Process(Event):
    """A running generator; itself an event that triggers on return.

    The generator may ``yield``:

    * a float/int — shorthand for ``Timeout(sim, value)``;
    * any :class:`Event` (including another :class:`Process`);

    and receives the event's value from ``yield``.  Exceptions raised by
    the generator propagate out of :meth:`Simulator.run`.  The generator's
    ``return`` value becomes the process's event value.
    """

    __slots__ = ("generator",)

    def __init__(self, sim: "Simulator", generator: Generator) -> None:
        super().__init__(sim)
        self.generator = generator
        sim._schedule_at(sim.now, lambda: self._resume(None))

    def _resume(self, value: Any) -> None:
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self.triggered = True
            self.value = stop.value
            self._dispatch()
            return
        if isinstance(target, (int, float)):
            target = Timeout(self.sim, float(target))
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {type(target).__name__}; expected Event or delay"
            )
        target.add_callback(self._resume)


class Simulator:
    """Virtual-time event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    # -- scheduling ------------------------------------------------------

    def _schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (when, self._seq, callback))
        self._seq += 1

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError("negative delay")
        self._schedule_at(self.now + delay, callback)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start a generator as a simulation process."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Event:
        """Event that triggers when every input event has triggered."""
        events = list(events)
        gate = Event(self)
        remaining = len(events)
        results: list[Any] = [None] * remaining
        if remaining == 0:
            gate.succeed([])
            return gate

        def make_callback(i: int):
            def callback(value: Any) -> None:
                nonlocal remaining
                results[i] = value
                remaining -= 1
                if remaining == 0:
                    gate.succeed(results)

            return callback

        for i, event in enumerate(events):
            event.add_callback(make_callback(i))
        return gate

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not self._heap:
            return False
        when, _seq, callback = heapq.heappop(self._heap)
        if when < self.now:
            raise RuntimeError("event scheduled in the past")
        self.now = when
        callback()
        return True

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, time ``until``, or an event triggers.

        Passing an :class:`Event` (e.g. a :class:`Process`) runs until it
        triggers and returns its value — the common "run this experiment"
        entry point.
        """
        if isinstance(until, Event):
            done = False
            result: Any = None

            def mark(value: Any) -> None:
                nonlocal done, result
                done = True
                result = value

            until.add_callback(mark)
            while not done:
                if not self.step():
                    raise RuntimeError(
                        "simulation deadlock: event never triggered"
                    )
            return result
        if until is None:
            while self.step():
                pass
            return None
        while self._heap and self._heap[0][0] <= until:
            self.step()
        self.now = max(self.now, float(until))
        return None
